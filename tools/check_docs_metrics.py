#!/usr/bin/env python
"""Docs-consistency check: the metric catalogs are not allowed to lie.

Extracts every backticked dotted metric name between the
``<!-- metric-catalog:start -->`` / ``<!-- metric-catalog:end -->``
markers in docs/observability.md, docs/runtime.md, docs/service.md and
docs/network.md (the ``runtime.*``, ``service.*`` and ``net.*`` scopes
are cataloged next to their subsystems), smoke-runs the simulator (a
CNI cluster, a standard cluster, two messaging microbenchmarks, a
run-farm cache round trip, and one run per fabric topology — the union
exercises every subsystem), and fails if

* any documented name was never registered (stale docs), or
* any registered name outside the run-dependent ``cluster.*`` mirror is
  missing from the catalog (undocumented instrumentation).

Per-node names compare with the node index normalized to ``node0`` —
the catalog documents the exemplar, the run registers all nodes.

Run directly (``python tools/check_docs_metrics.py``) or via pytest
(tests/test_docs_consistency.py).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_PATH = os.path.join(REPO_ROOT, "docs", "observability.md")
RUNTIME_DOC_PATH = os.path.join(REPO_ROOT, "docs", "runtime.md")
SERVICE_DOC_PATH = os.path.join(REPO_ROOT, "docs", "service.md")
NETWORK_DOC_PATH = os.path.join(REPO_ROOT, "docs", "network.md")
#: Every docs page carrying a marker-delimited metric catalog.
CATALOG_DOCS = (DOC_PATH, RUNTIME_DOC_PATH, SERVICE_DOC_PATH,
                NETWORK_DOC_PATH)
START = "<!-- metric-catalog:start -->"
END = "<!-- metric-catalog:end -->"

#: A dotted lower_snake_case path inside backticks; excludes Python
#: attribute references (``RunStats.metrics`` has uppercase) and
#: placeholders (``cluster.<key>`` has angle brackets).
_NAME_RE = re.compile(r"`[^`]*`")
_DOTTED_RE = re.compile(r"\b[a-z0-9_]+(?:\.[a-z0-9_]+)+\b")
_NODE_RE = re.compile(r"^node\d+\.")


def documented_names(doc_path: str = DOC_PATH) -> Set[str]:
    """Metric names promised by the catalog section of the docs."""
    with open(doc_path) as fh:
        text = fh.read()
    try:
        catalog = text.split(START, 1)[1].split(END, 1)[0]
    except IndexError:
        raise SystemExit(
            f"{doc_path}: metric-catalog markers missing or unbalanced")
    names: Set[str] = set()
    for span in _NAME_RE.findall(catalog):
        if "*" in span:
            continue  # a namespace prefix (`node0.nic.mcache.*`), not a metric
        names.update(_DOTTED_RE.findall(span))
    return {_NODE_RE.sub("node0.", n) for n in names}


def all_documented_names() -> Set[str]:
    """Union of every catalog-bearing docs page."""
    names: Set[str] = set()
    for doc in CATALOG_DOCS:
        names.update(documented_names(doc))
    return names


def registered_names() -> Set[str]:
    """Union of metric names a smoke-run of the simulator registers."""
    from repro.apps import JacobiConfig, PingPongConfig, run_jacobi, \
        run_pingpong
    from repro.harness import RunSpec, pool_metrics, run_map, shutdown_pool
    from repro.harness.experiments import one_way_latency_ns
    from repro.harness.export import GLOBAL_METRICS_LOG
    from repro.params import SimParams

    names: Set[str] = set()
    cfg = JacobiConfig(n=48, iterations=4)
    for interface in ("cni", "standard"):
        stats, _ = run_jacobi(
            SimParams().replace(num_processors=2), interface, cfg)
        names.update(stats.metrics)
    # One rendezvous-sized ping-pong so the runtime.* scope is exercised,
    # not merely registered.
    stats, _ = run_pingpong(
        SimParams().replace(num_processors=2), "cni",
        PingPongConfig(rounds=2, message_bytes=8192))
    names.update(stats.metrics)
    GLOBAL_METRICS_LOG.clear()
    one_way_latency_ns(1024, "cni", SimParams())
    names.update(GLOBAL_METRICS_LOG.entries[-1]["metrics"])
    GLOBAL_METRICS_LOG.clear()
    # One two-point parallel dispatch so the executor's harness.pool.*
    # lifecycle metrics are exercised, not merely registered at import
    # (REPRO_POOL_FORCE bypasses the cpu-aware clamp on 1-core boxes).
    tiny = JacobiConfig(n=16, iterations=1)
    forced_before = os.environ.get("REPRO_POOL_FORCE")
    os.environ["REPRO_POOL_FORCE"] = "1"
    try:
        run_map([RunSpec("jacobi", SimParams().replace(num_processors=1),
                         "cni", tiny) for _ in range(2)],
                jobs=2, record=False)
    finally:
        shutdown_pool()
        if forced_before is None:
            del os.environ["REPRO_POOL_FORCE"]
        else:
            os.environ["REPRO_POOL_FORCE"] = forced_before
    names.update(pool_metrics())
    # One run-farm cache round trip (miss -> execute -> hit) so the
    # service.* scope is exercised, not merely registered at import.
    import tempfile

    from repro.service import RunFarm, service_metrics

    with tempfile.TemporaryDirectory(prefix="repro-docscheck-") as root:
        with RunFarm(store=root, workers=1, autostart=False) as farm:
            spec = RunSpec("jacobi",
                           SimParams().replace(num_processors=1),
                           "cni", tiny)
            for _ in range(2):
                farm.submit(spec)
                farm.step()
    names.update(service_metrics())
    # One run per fabric so the net.* scope is exercised on every
    # topology family (the scope only registers when a topology is
    # selected — the default machine's digests are frozen without it).
    for topology, nprocs in (("banyan:8", 2), ("fattree:k=4", 4),
                             ("torus:2x2:adaptive", 4)):
        stats, _ = run_jacobi(
            SimParams().replace(num_processors=nprocs, topology=topology),
            "cni", tiny)
        names.update(stats.metrics)
    return {_NODE_RE.sub("node0.", n) for n in names}


def check() -> Tuple[Set[str], Set[str]]:
    """Returns (documented-but-never-registered, registered-but-undocumented)."""
    documented = all_documented_names()
    registered = registered_names()
    stale = documented - registered
    undocumented = {n for n in registered - documented
                    if not n.startswith("cluster.")}
    return stale, undocumented


def main() -> int:
    stale, undocumented = check()
    if stale:
        print("documented but never registered by the smoke run:")
        for name in sorted(stale):
            print(f"  {name}")
    if undocumented:
        print("registered but missing from the docs metric catalogs "
              "(docs/observability.md, docs/runtime.md, docs/service.md, "
              "docs/network.md):")
        for name in sorted(undocumented):
            print(f"  {name}")
    if stale or undocumented:
        return 1
    print(f"ok: {len(all_documented_names())} documented metric names all "
          f"registered; no undocumented instrumentation")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    raise SystemExit(main())
