#!/usr/bin/env python
"""Profile one simulation run under cProfile and print the hot path.

The perf work in this repo is profile-guided: every optimisation PR
starts by running this tool on a pinned :class:`~repro.harness.RunSpec`
and attacking the top of the list, and ends by re-running it to show the
cost moved (tools/bench.py then demonstrates the win end to end).

Builds the same workload shapes the bench harness pins, so profile
output and bench numbers describe the same code path::

    python tools/profile.py                       # default: bench's jacobi arm
    python tools/profile.py --app water --n 48    # water, 48 molecules
    python tools/profile.py --app cholesky
    python tools/profile.py --sort tottime --limit 40
    python tools/profile.py --callers repro       # who calls into repro.*
    python tools/profile.py --dump /tmp/run.prof  # for snakeviz/pstats

Profiles through :func:`repro.harness.execute_run`, i.e. exactly the
pool-worker body the parallel executor runs, so what this measures is
what ``--jobs N`` sweeps pay per point.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

# This file is named profile.py, which would shadow the stdlib `profile`
# module that cProfile imports — drop the script's directory from the
# module search path before touching the profiler machinery.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [p for p in sys.path
               if os.path.abspath(p or os.getcwd()) != _HERE]
sys.path.insert(0, os.path.join(_HERE, "..", "src"))

import cProfile  # noqa: E402
import pstats  # noqa: E402


def build_spec(app: str, n: Optional[int], iters: Optional[int],
               procs: int, interface: str):
    """A RunSpec mirroring tools/bench.py's pinned workloads."""
    from repro.harness import RunSpec
    from repro.params import SimParams

    params = SimParams().replace(num_processors=procs)
    if app == "jacobi":
        from repro.apps import JacobiConfig

        cfg = JacobiConfig(n=n or 96, iterations=iters or 5)
    elif app == "water":
        from repro.apps import WaterConfig

        cfg = WaterConfig(n_molecules=n or 48, steps=iters or 2)
    elif app == "cholesky":
        from repro.apps import CholeskyConfig, bcsstk14_like

        cfg = CholeskyConfig(matrix=bcsstk14_like(scale=0.06), supernode=4)
    elif app == "collbench":
        from repro.collectives import CollBenchConfig

        cfg = CollBenchConfig(op="barrier", rounds=iters or 16)
    else:
        raise SystemExit(f"unknown app {app!r}")
    return RunSpec(app, params, interface, cfg)


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--app", default="jacobi",
                    choices=("jacobi", "water", "cholesky", "collbench"))
    ap.add_argument("--n", type=int, default=None,
                    help="problem size (grid n / molecules); app default "
                         "mirrors tools/bench.py")
    ap.add_argument("--iters", type=int, default=None,
                    help="iterations / steps / rounds")
    ap.add_argument("--procs", type=int, default=4,
                    help="simulated processor count (default 4)")
    ap.add_argument("--interface", default="cni",
                    choices=("cni", "standard"))
    ap.add_argument("--sort", default="cumulative",
                    help="pstats sort key (default cumulative; try tottime)")
    ap.add_argument("--limit", type=int, default=30,
                    help="rows to print (default 30)")
    ap.add_argument("--callers", default=None, metavar="PATTERN",
                    help="also print callers of functions matching PATTERN")
    ap.add_argument("--dump", default=None, metavar="FILE",
                    help="write raw cProfile stats to FILE")
    args = ap.parse_args(argv)

    from repro.harness import execute_run

    spec = build_spec(args.app, args.n, args.iters, args.procs,
                      args.interface)
    execute_run(spec)  # warm-up: imports, numpy, allocator
    prof = cProfile.Profile()
    prof.enable()
    stats = execute_run(spec)
    prof.disable()

    events = float(stats.metrics.get("engine.events_processed", 0.0))
    print(f"[profile] {spec.describe()}: {events:,.0f} events, "
          f"digest {stats.digest()[:12]}")
    ps = pstats.Stats(prof, stream=sys.stdout)
    ps.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.callers:
        ps.print_callers(args.callers)
    if args.dump:
        prof.dump_stats(args.dump)
        print(f"[profile] wrote {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
