#!/bin/sh
# Run the chaos suite: full workloads under seeded fault plans.
#
# These tests exercise the reliable transport end to end (lossy Jacobi
# and barrier workloads, duplicate suppression, Message-Cache hits on
# retransmission, retry-budget failures) and are marked `chaos` so they
# can be invoked separately from the unit suite:
#
#   tools/run_chaos.sh            # just the chaos tests
#   tools/run_chaos.sh -x -vv     # extra pytest flags pass through
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m chaos "$@"
