#!/usr/bin/env python
"""Perf-regression benchmark harness: time pinned workloads, emit JSON.

Measures three things on a fixed, pinned workload set:

* **engine events/sec** — raw discrete-event kernel throughput on one
  in-process Jacobi run (the hot loop everything else multiplies);
* **wall-clock per experiment** — seconds to regenerate a fixed set of
  quick-scale experiments end to end;
* **parallel speedup** — wall-clock of a fixed 8-point sweep at
  ``--jobs N`` vs ``--jobs 1`` (same grid, same digests; the parallel
  executor's whole point).  The warm pool is spun up before timing, so
  the arm measures dispatch, not worker spawn; the arm records
  ``effective_cores`` and the gate is cpu-aware — on a 1-core machine
  the speedup number is informational, never gated;
* **dispatch overhead** — per-point cost of routing trivial runs through
  the warm pool vs executing them inline (the executor tax the warm
  pool + chunked dispatch exist to shrink);
* **collective throughput** — simulated barrier crossings/sec on the
  NIC-resident and host-based collective engines (one pinned barrier
  workload each);
* **messaging throughput** — simulated messages/sec through the
  messaging runtime's eager path (one pinned ping-pong workload,
  docs/runtime.md);
* **heartbeat overhead** — the pinned Jacobi run with the failure
  detector's heartbeats off vs on; the off arm is regression-gated so
  the reliability stack stays free when disabled (docs/reliability.md);
* **service cache throughput** — a pinned batch submitted to the run
  farm twice against a fresh store: cold jobs/sec (simulate + store)
  vs warm-hit jobs/sec (digest + index + JSON decode only); the warm
  path is regression-gated — it is what makes re-running a sweep cheap
  (docs/service.md);
* **topology crossings/sec** — one pinned all-reduce per fabric
  (banyan, fat-tree, torus at 64 nodes in full mode) timing switch
  crossings/sec through the pluggable topology layer
  (docs/network.md); the banyan arm is regression-gated since it is
  the paper's machine behind the new interface.

Results land in ``BENCH_<date>.json`` at the repo root, establishing a
perf trajectory across PRs.  ``--check OLD.json`` compares the current
run against a previous file and exits non-zero on regression beyond
``--threshold`` (default 20%), which is what a CI gate calls.

Usage::

    python tools/bench.py                      # full pinned set
    python tools/bench.py --smoke              # tiny set for CI (~seconds)
    python tools/bench.py --jobs 8             # pin the parallel arm
    python tools/bench.py --out bench/         # write elsewhere
    python tools/bench.py --check BENCH_2026-08-06.json --threshold 0.25

The JSON schema is documented in docs/parallel_runs.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

SCHEMA_VERSION = 1

#: Metrics compared by --check, as (dotted key, higher_is_better).
CHECKED_METRICS = (
    ("engine.events_per_sec", True),
    ("experiments.total_s", False),
    ("messaging.msgs_per_sec", True),
    ("heartbeat.off_events_per_sec", True),
    ("service.warm_hits_per_sec", True),
    ("topologies.banyan.crossings_per_sec", True),
)

#: Absolute floor for ``parallel.speedup`` when >= 2 effective cores are
#: available (the 0.84x regression this gate exists to catch shipped
#: silently because nothing gated the arm).  Deliberately below the
#: ~1.5x a quiet 2-core box delivers, to absorb shared-runner noise.
SPEEDUP_FLOOR = 1.2


def _effective_cores() -> int:
    """Cores actually usable by this process (scheduler affinity where
    available) — the executor's own notion, so the arm annotates the
    same number the cpu-aware worker clamp acts on."""
    from repro.harness import effective_cores

    return effective_cores()


def _time_events_per_sec(smoke: bool) -> Dict[str, Any]:
    """One in-process Jacobi run; events/sec of the simulation kernel."""
    from repro.apps import JacobiConfig
    from repro.harness import RunSpec, execute_run
    from repro.params import SimParams

    cfg = JacobiConfig(n=32, iterations=2) if smoke \
        else JacobiConfig(n=96, iterations=5)
    spec = RunSpec("jacobi", SimParams().replace(num_processors=4),
                   "cni", cfg)
    execute_run(spec)  # warm-up: imports, numpy, allocator
    t0 = time.perf_counter()
    stats = execute_run(spec)
    dt = time.perf_counter() - t0
    events = float(stats.metrics["engine.events_processed"])
    return {
        "workload": f"jacobi n={cfg.n} iters={cfg.iterations} p4 cni",
        "events": events,
        "wall_s": dt,
        "events_per_sec": events / dt if dt > 0 else 0.0,
    }


def _time_experiments(smoke: bool) -> Dict[str, Any]:
    """Wall-clock to regenerate pinned experiments at quick scale."""
    from repro.harness import QUICK, run_experiment
    from repro.harness.export import GLOBAL_METRICS_LOG

    exp_ids = ["table1", "fig14"] if smoke else ["fig2", "fig5", "table2",
                                                 "fig13", "fig14", "faults"]
    per_exp: Dict[str, float] = {}
    for exp_id in exp_ids:
        GLOBAL_METRICS_LOG.clear()
        t0 = time.perf_counter()
        run_experiment(exp_id, QUICK)
        per_exp[exp_id] = time.perf_counter() - t0
    GLOBAL_METRICS_LOG.clear()
    return {"per_experiment_s": per_exp,
            "total_s": sum(per_exp.values())}


def _sweep_specs(smoke: bool) -> List[Any]:
    """The pinned 8-point sweep the speedup arm times (one RunSpec per
    point: 4 processor counts x 2 interfaces)."""
    from repro.apps import JacobiConfig
    from repro.harness import RunSpec
    from repro.params import SimParams

    cfg = JacobiConfig(n=32, iterations=2) if smoke \
        else JacobiConfig(n=64, iterations=5)
    return [RunSpec("jacobi", SimParams().replace(num_processors=p),
                    iface, cfg)
            for p in (1, 2, 4, 8) for iface in ("cni", "standard")]


def _time_parallel_speedup(jobs: int, smoke: bool) -> Dict[str, Any]:
    """The 8-point sweep at --jobs 1 vs --jobs N, digests compared.

    Both arms are warm: the in-process path via one throwaway run, the
    pool path via a warm-up ``run_map`` that spawns and primes the
    workers — so the timed numbers compare dispatch strategies, not a
    cold interpreter against a hot one.  ``effective_cores`` is recorded
    so a 1-core box's ~1x reads as what it is (and --check skips the
    speedup gate there).
    """
    from repro.harness import pool_metrics, run_map

    specs = _sweep_specs(smoke)
    run_map(specs[:1], jobs=1, record=False)      # warm-up: in-process path
    run_map(specs[:jobs], jobs=jobs, record=False)  # warm-up: spawn the pool
    t0 = time.perf_counter()
    serial = run_map(specs, jobs=1, record=False)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_map(specs, jobs=jobs, record=False)
    parallel_s = time.perf_counter() - t0
    digests_match = ([s.digest() for s in serial]
                     == [s.digest() for s in parallel])
    cores = _effective_cores()
    pm = pool_metrics()
    return {
        "points": len(specs),
        "jobs": jobs,
        "effective_cores": cores,
        "clamped": cores < jobs,
        "gate": "gated" if cores >= 2 else "informational",
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "digests_match": digests_match,
        "pool": {
            "spawns": pm["harness.pool.spawns"],
            "warm_hits": pm["harness.pool.warm_hits"],
        },
    }


def _time_dispatch_overhead(jobs: int, smoke: bool) -> Dict[str, Any]:
    """Per-point dispatch overhead of the warm pool on trivial runs.

    A batch of near-zero-work specs goes through the warm pool and then
    inline; the wall-clock difference divided by the batch size is the
    executor tax per point — what a fresh-pool-per-call executor made
    ruinous (spawn + import per sweep) and the warm pool amortizes.
    ``REPRO_POOL_FORCE`` bypasses the cpu-aware clamp so the tax is
    measured for real even on a 1-core machine.
    """
    from repro.apps import JacobiConfig
    from repro.harness import RunSpec, pool_metrics, run_map
    from repro.params import SimParams

    points = 8 if smoke else 16
    cfg = JacobiConfig(n=8, iterations=1)
    specs = [RunSpec("jacobi", SimParams().replace(num_processors=1),
                     "cni", cfg) for _ in range(points)]
    forced_before = os.environ.get("REPRO_POOL_FORCE")
    os.environ["REPRO_POOL_FORCE"] = "1"
    try:
        run_map(specs[:jobs], jobs=jobs, record=False)  # warm the pool
        run_map(specs[:1], jobs=1, record=False)        # warm the inline path
        t0 = time.perf_counter()
        run_map(specs, jobs=1, record=False)
        inline_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_map(specs, jobs=jobs, record=False)
        pool_s = time.perf_counter() - t0
    finally:
        if forced_before is None:
            del os.environ["REPRO_POOL_FORCE"]
        else:
            os.environ["REPRO_POOL_FORCE"] = forced_before
    overhead = pool_s - inline_s
    hist = pool_metrics()["harness.pool.dispatch_overhead_ns"]
    return {
        "workload": f"jacobi n=8 iters=1 p1 cni x{points}",
        "points": points,
        "jobs": jobs,
        "inline_s": inline_s,
        "pool_s": pool_s,
        "overhead_per_point_ms": overhead * 1e3 / points,
        "measured_overhead_mean_ms": (hist["sum"] / hist["count"] / 1e6
                                      if hist["count"] else 0.0),
        "points_per_sec": points / pool_s if pool_s > 0 else 0.0,
    }


def _time_collectives(smoke: bool) -> Dict[str, Any]:
    """Pinned barrier workload on both collective engines: simulator
    wall-clock and barrier crossings/sec for each."""
    from repro.collectives import CollBenchConfig, run_collective_bench
    from repro.params import SimParams

    rounds = 16 if smoke else 64
    cfg = CollBenchConfig(op="barrier", rounds=rounds)
    params = SimParams().replace(num_processors=4)
    out: Dict[str, Any] = {"workload": f"barrier rounds={rounds} p4"}
    for engine, interface in (("nic", "cni"), ("host", "standard")):
        p = params.replace(collectives=engine)
        run_collective_bench(p, interface, cfg)  # warm-up
        t0 = time.perf_counter()
        stats, _ = run_collective_bench(p, interface, cfg)
        dt = time.perf_counter() - t0
        crossings = float(stats.counters.get("dsm_barriers")) / 4
        out[engine] = {
            "interface": interface,
            "crossings": crossings,
            "wall_s": dt,
            "crossings_per_sec": crossings / dt if dt > 0 else 0.0,
        }
    return out


def _time_messaging(smoke: bool) -> Dict[str, Any]:
    """Pinned eager ping-pong; simulated messages/sec of the messaging
    runtime's hot path (protocol engine + NIC receive dispatch)."""
    from repro.apps import PingPongConfig
    from repro.harness import RunSpec, execute_run
    from repro.params import SimParams

    rounds = 64 if smoke else 256
    cfg = PingPongConfig(rounds=rounds, message_bytes=1024)
    spec = RunSpec("pingpong", SimParams().replace(num_processors=2),
                   "cni", cfg)
    execute_run(spec)  # warm-up
    t0 = time.perf_counter()
    execute_run(spec)
    dt = time.perf_counter() - t0
    msgs = 2.0 * rounds
    return {
        "workload": f"pingpong rounds={rounds} 1024B p2 cni",
        "messages": msgs,
        "wall_s": dt,
        "msgs_per_sec": msgs / dt if dt > 0 else 0.0,
    }


def _time_heartbeat_overhead(smoke: bool) -> Dict[str, Any]:
    """Failure-detector cost: the pinned Jacobi run with heartbeats off
    vs on (500 us interval).  The off arm is the regression-gated
    baseline — detector machinery must stay free when disabled (the
    reliability stack's <2% overhead budget, docs/reliability.md)."""
    from repro.apps import JacobiConfig
    from repro.harness import RunSpec, execute_run
    from repro.params import SimParams

    cfg = JacobiConfig(n=32, iterations=2) if smoke \
        else JacobiConfig(n=96, iterations=5)
    out: Dict[str, Any] = {
        "workload": f"jacobi n={cfg.n} iters={cfg.iterations} p4 cni",
    }
    for arm, interval_ns in (("off", 0.0), ("on", 500_000.0)):
        spec = RunSpec(
            "jacobi",
            SimParams().replace(num_processors=4,
                                heartbeat_interval_ns=interval_ns),
            "cni", cfg)
        execute_run(spec)  # warm-up
        t0 = time.perf_counter()
        stats = execute_run(spec)
        dt = time.perf_counter() - t0
        events = float(stats.metrics["engine.events_processed"])
        out[f"{arm}_events"] = events
        out[f"{arm}_wall_s"] = dt
        out[f"{arm}_events_per_sec"] = events / dt if dt > 0 else 0.0
    off, on = out["off_events_per_sec"], out["on_events_per_sec"]
    out["on_vs_off_ratio"] = on / off if off > 0 else 0.0
    return out


def _time_service_cache(smoke: bool) -> Dict[str, Any]:
    """Cold vs warm-cache throughput of the run farm (docs/service.md).

    A pinned batch goes into a farm over a fresh temp store twice: the
    cold pass simulates and stores, the warm passes must be pure store
    hits.  The warm pass repeats a few times so the per-hit cost
    (digest lookup + index bump + JSON decode) is timed over enough
    work to be stable; ``all_hits`` is asserted, so the arm doubles as
    the cache-correctness smoke."""
    import tempfile

    from repro.apps import JacobiConfig
    from repro.harness import RunSpec
    from repro.params import SimParams
    from repro.service import RunFarm

    points, warm_rounds = (4, 3) if smoke else (8, 5)
    cfg = JacobiConfig(n=16, iterations=1) if smoke \
        else JacobiConfig(n=32, iterations=2)
    specs = [RunSpec("jacobi", SimParams().replace(num_processors=p),
                     iface, cfg)
             for p in (1, 2, 4, 8)[:max(1, points // 2)]
             for iface in ("cni", "standard")][:points]
    with tempfile.TemporaryDirectory(prefix="repro-bench-farm-") as root:
        with RunFarm(store=root, workers=1, autostart=False) as farm:
            ids = farm.submit_batch(specs)
            t0 = time.perf_counter()
            farm.step()
            cold_s = time.perf_counter() - t0
            warm_ids: List[str] = []
            t0 = time.perf_counter()
            for _ in range(warm_rounds):
                warm_ids.extend(farm.submit_batch(specs))
                farm.step()
            warm_s = time.perf_counter() - t0
            all_hits = all(farm.status(i)["from_cache"]
                           for i in warm_ids)
            digests_match = all(
                farm.result(w).digest() == farm.result(c).digest()
                for w, c in zip(warm_ids, ids * warm_rounds))
    warm_jobs = len(warm_ids)
    return {
        "workload": f"jacobi n={cfg.n} iters={cfg.iterations} "
                    f"x{points} points",
        "points": points,
        "warm_jobs": warm_jobs,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_jobs_per_sec": points / cold_s if cold_s > 0 else 0.0,
        "warm_hits_per_sec": warm_jobs / warm_s if warm_s > 0 else 0.0,
        "all_hits": all_hits,
        "digests_match": digests_match,
    }


def _time_topologies(smoke: bool) -> Dict[str, Any]:
    """One pinned all-reduce per fabric; switch crossings/sec through
    the topology layer (docs/network.md).

    Full mode runs the acceptance-scale machines — 64 nodes on a
    ``fattree:k=8`` and a ``torus:4x4x4`` — next to a 64-port banyan;
    smoke shrinks everything to 8 nodes.  ``net.crossings`` counts every
    switch element a train traverses, so crossings/sec is the hot-loop
    throughput of the fabric walk itself, comparable across fabrics.
    """
    from repro.apps import CollBenchConfig
    from repro.harness import RunSpec, execute_run
    from repro.params import SimParams

    if smoke:
        nodes, rounds = 8, 2
        fabrics = (("banyan", "banyan:8"), ("fattree", "fattree:k=4"),
                   ("torus", "torus:2x2x2"))
    else:
        nodes, rounds = 64, 3
        fabrics = (("banyan", "banyan:64"), ("fattree", "fattree:k=8"),
                   ("torus", "torus:4x4x4"))
    cfg = CollBenchConfig(op="allreduce", rounds=rounds)
    out: Dict[str, Any] = {
        "workload": f"allreduce rounds={rounds} p{nodes} cni",
        "nodes": nodes,
    }
    for name, topology in fabrics:
        spec = RunSpec(
            "collbench",
            SimParams().replace(num_processors=nodes, topology=topology),
            "cni", cfg)
        execute_run(spec)  # warm-up
        t0 = time.perf_counter()
        stats = execute_run(spec)
        dt = time.perf_counter() - t0
        crossings = float(stats.metrics["net.crossings"])
        out[name] = {
            "topology": topology,
            "crossings": crossings,
            "link_hops": float(stats.metrics["net.link_hops"]),
            "hol_blocks": float(stats.metrics["net.hol_blocks"]),
            "simulated_ns": stats.elapsed_ns,
            "wall_s": dt,
            "crossings_per_sec": crossings / dt if dt > 0 else 0.0,
        }
    return out


def run_bench(jobs: Optional[int], smoke: bool) -> Dict[str, Any]:
    """Run every arm; return the BENCH document (sans date stamp)."""
    jobs = jobs or (os.cpu_count() or 1)
    doc: Dict[str, Any] = {
        "kind": "bench",
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    print(f"[bench] engine events/sec ({'smoke' if smoke else 'full'}) ...")
    doc["engine"] = _time_events_per_sec(smoke)
    print(f"[bench]   {doc['engine']['events_per_sec']:,.0f} events/s")
    print("[bench] experiment wall-clock (quick scale) ...")
    doc["experiments"] = _time_experiments(smoke)
    print(f"[bench]   {doc['experiments']['total_s']:.2f} s total")
    print("[bench] collective barrier crossings/sec ...")
    doc["collectives"] = _time_collectives(smoke)
    for engine in ("nic", "host"):
        c = doc["collectives"][engine]
        print(f"[bench]   {engine}: {c['crossings_per_sec']:,.0f} "
              f"crossings/s ({c['interface']})")
    print("[bench] messaging-runtime messages/sec ...")
    doc["messaging"] = _time_messaging(smoke)
    print(f"[bench]   {doc['messaging']['msgs_per_sec']:,.0f} msgs/s "
          f"({doc['messaging']['workload']})")
    print("[bench] failure-detector heartbeat overhead ...")
    doc["heartbeat"] = _time_heartbeat_overhead(smoke)
    hb = doc["heartbeat"]
    print(f"[bench]   off: {hb['off_events_per_sec']:,.0f} events/s, "
          f"on: {hb['on_events_per_sec']:,.0f} events/s "
          f"(ratio {hb['on_vs_off_ratio']:.2f})")
    print("[bench] per-topology fabric crossings/sec ...")
    doc["topologies"] = _time_topologies(smoke)
    for name in ("banyan", "fattree", "torus"):
        t = doc["topologies"][name]
        print(f"[bench]   {t['topology']}: "
              f"{t['crossings_per_sec']:,.0f} crossings/s "
              f"(hol_blocks={t['hol_blocks']:.0f})")
    print(f"[bench] parallel speedup at --jobs {jobs} vs 1 ...")
    doc["parallel"] = _time_parallel_speedup(jobs, smoke)
    p = doc["parallel"]
    print(f"[bench]   {p['serial_s']:.2f} s -> {p['parallel_s']:.2f} s "
          f"({p['speedup']:.2f}x on {p['effective_cores']} cores "
          f"[{p['gate']}], digests_match={p['digests_match']})")
    if not p["digests_match"]:
        raise SystemExit("[bench] FATAL: parallel digests diverge from serial")
    print(f"[bench] warm-pool dispatch overhead at --jobs {jobs} ...")
    doc["dispatch"] = _time_dispatch_overhead(jobs, smoke)
    d = doc["dispatch"]
    print(f"[bench]   {d['overhead_per_point_ms']:.2f} ms/point "
          f"({d['points_per_sec']:,.0f} points/s through the pool)")
    print("[bench] service cache: cold vs warm-hit jobs/sec ...")
    doc["service"] = _time_service_cache(smoke)
    s = doc["service"]
    print(f"[bench]   cold {s['cold_jobs_per_sec']:,.1f} jobs/s -> warm "
          f"{s['warm_hits_per_sec']:,.0f} hits/s "
          f"(all_hits={s['all_hits']}, "
          f"digests_match={s['digests_match']})")
    if not (s["all_hits"] and s["digests_match"]):
        raise SystemExit("[bench] FATAL: warm farm pass was not served "
                         "bit-identically from the store")
    from repro.harness import shutdown_pool
    shutdown_pool()
    return doc


def _lookup(doc: Dict[str, Any], dotted: str) -> float:
    node: Any = doc
    for part in dotted.split("."):
        node = node[part]
    return float(node)


def check_regression(current: Dict[str, Any], old_path: str,
                     threshold: float) -> int:
    """Compare against a previous BENCH file; 0 = within threshold."""
    with open(old_path) as fh:
        old = json.load(fh)
    if old.get("smoke") != current.get("smoke"):
        print(f"[bench] check: {old_path} ran "
              f"{'smoke' if old.get('smoke') else 'full'}, this run is "
              f"{'smoke' if current.get('smoke') else 'full'} — not comparable")
        return 0
    failures = 0
    for key, higher_is_better in CHECKED_METRICS:
        try:
            before, now = _lookup(old, key), _lookup(current, key)
        except KeyError:
            continue
        if before <= 0:
            continue
        change = (now - before) / before
        regressed = (change < -threshold if higher_is_better
                     else change > threshold)
        marker = "REGRESSION" if regressed else "ok"
        print(f"[bench] check {key}: {before:,.2f} -> {now:,.2f} "
              f"({change:+.1%}) {marker}")
        failures += regressed
    failures += _check_speedup(current, old, threshold)
    return 1 if failures else 0


def _check_speedup(current: Dict[str, Any], old: Dict[str, Any],
                   threshold: float) -> int:
    """CPU-aware gate on ``parallel.speedup``; returns failure count.

    On < 2 effective cores the number is physics, not a regression, so
    the gate only annotates.  With >= 2 cores it enforces the absolute
    :data:`SPEEDUP_FLOOR`, plus the relative check when the baseline
    also ran multi-core (a 1-core baseline's speedup is meaningless as a
    reference — exactly how the 0.84x pessimization went unnoticed).
    """
    arm = current.get("parallel") or {}
    if "speedup" not in arm:
        return 0
    now = float(arm["speedup"])
    cores = int(arm.get("effective_cores")
                or current.get("cpu_count") or 1)
    if cores < 2:
        print(f"[bench] check parallel.speedup: {now:.2f}x on {cores} core "
              f"— informational (gate needs >= 2 effective cores)")
        return 0
    failures = 0
    if now < SPEEDUP_FLOOR:
        print(f"[bench] check parallel.speedup: {now:.2f}x < floor "
              f"{SPEEDUP_FLOOR}x on {cores} cores REGRESSION")
        failures += 1
    else:
        print(f"[bench] check parallel.speedup: {now:.2f}x >= floor "
              f"{SPEEDUP_FLOOR}x on {cores} cores ok")
    old_arm = old.get("parallel") or {}
    old_cores = int(old_arm.get("effective_cores")
                    or old.get("cpu_count") or 1)
    before = float(old_arm.get("speedup", 0.0))
    if old_cores >= 2 and before > 0:
        change = (now - before) / before
        regressed = change < -threshold
        marker = "REGRESSION" if regressed else "ok"
        print(f"[bench] check parallel.speedup vs baseline: "
              f"{before:,.2f} -> {now:,.2f} ({change:+.1%}) {marker}")
        failures += regressed
    else:
        print("[bench] check parallel.speedup vs baseline: skipped "
              f"(baseline ran on {old_cores} core(s))")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker count for the speedup arm "
                         "(default: all cores)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny workloads for CI (seconds, not minutes)")
    ap.add_argument("--out", default=".",
                    help="directory for BENCH_<date>.json (default: repo root)")
    ap.add_argument("--date", default=None,
                    help="override the date stamp (default: today, UTC)")
    ap.add_argument("--check", default=None, metavar="OLD.json",
                    help="compare against a previous BENCH file; exit 1 on "
                         "regression")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative regression tolerance for --check "
                         "(default 0.20)")
    args = ap.parse_args(argv)

    doc = run_bench(args.jobs, args.smoke)
    stamp = args.date or time.strftime("%Y-%m-%d", time.gmtime())
    doc["date"] = stamp
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"BENCH_{stamp}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"[bench] wrote {path}")
    if args.check:
        return check_regression(doc, args.check, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
