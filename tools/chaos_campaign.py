#!/usr/bin/env python
"""Chaos campaign: every registered workload under seeded fault plans.

Sweeps crash / link-down / cell-loss plans across the full workload
registry (:data:`repro.apps.WORKLOADS`) and asserts the crash-stop
fault-tolerance contract end to end (see docs/reliability.md):

* every run **terminates** — either successfully or with one of the
  *typed* errors (``RuntimeTimeout``, ``PeerDead``, ``CollectiveError``,
  ``DeliveryFailed``).  A ``StuckError`` (the engine watchdog's
  deadlock report) or any untyped exception is a campaign failure: it
  means a blocked wait escaped the deadline/detector machinery;
* the sweep is **deterministic at any worker count** — every point's
  digest (``RunStats.digest`` for successes, ``RunFailure.digest`` for
  typed failures) is bit-identical between ``--jobs 1`` and
  ``--jobs N``.

Usage:
    tools/chaos_campaign.py            # full campaign (~7 workloads x 6 plans)
    tools/chaos_campaign.py --smoke    # CI subset (3 workloads x 3 plans)
    tools/chaos_campaign.py --jobs 4   # parallel worker count (default 2)

Exit status 0 when every run passed the contract, 1 otherwise.
"""

import argparse
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

#: Error types that count as a *pass* under a fault plan: the typed,
#: documented outcomes of the reliability stack.  Everything else —
#: notably ``StuckError`` — is a no-hang-guarantee violation.
TYPED_OK = frozenset({
    "RuntimeTimeout",
    "PeerDead",
    "CollectiveError",
    "DeliveryFailed",
})

#: Base seed every plan derives from, mixed with the plan's position so
#: reruns of the campaign are reproducible end to end.
CAMPAIGN_SEED = 20260808


def _workload_configs(smoke: bool) -> List[Tuple[str, Any, int]]:
    """``(app, config, nprocs)`` for every registered workload.

    Configs are deliberately tiny — the campaign's job is coverage of
    the failure paths, not throughput — and pinned explicitly so the
    digests are stable against registry default changes.
    """
    from repro.apps import (CholeskyConfig, CollBenchConfig, HaloConfig,
                            JacobiConfig, PingPongConfig, TransposeConfig,
                            WaterConfig, WORKLOADS, synthetic_fem_spd)

    table: List[Tuple[str, Any, int]] = [
        ("jacobi", JacobiConfig(n=32, iterations=2), 4),
        ("collbench", CollBenchConfig(op="allreduce", rounds=4,
                                      compute_cycles=500), 4),
        ("pingpong", PingPongConfig(rounds=4, message_bytes=1024), 2),
        ("halo", HaloConfig(iters=2, halo_bytes=512, compute_cycles=1000), 4),
        ("transpose", TransposeConfig(rounds=1, block_bytes=4096), 4),
        ("water", WaterConfig(n_molecules=24, steps=1, seed=42), 4),
        ("cholesky", CholeskyConfig(matrix=synthetic_fem_spd(32, 4),
                                    supernode=8), 4),
    ]
    covered = {app for app, _cfg, _p in table}
    missing = sorted(set(WORKLOADS) - covered)
    if missing:
        raise SystemExit(f"[chaos] FATAL: workloads not covered by the "
                         f"campaign: {missing} — add configs above")
    if smoke:
        keep = {"jacobi", "collbench", "pingpong"}
        table = [row for row in table if row[0] in keep]
    return table


def _fault_plans(smoke: bool, nprocs: int) -> List[Tuple[str, Any]]:
    """``(name, FaultPlan | None)`` schedule matrix for one workload."""
    from repro.faults import CellLoss, FaultPlan, LinkDown, NodeCrash

    plans: List[Tuple[str, Any]] = [
        ("clean", None),
        ("crash-early", FaultPlan(seed=CAMPAIGN_SEED + 1, schedules=(
            NodeCrash(node=nprocs - 1, at_ns=200_000.0),))),
        ("loss", FaultPlan(seed=CAMPAIGN_SEED + 2, schedules=(
            CellLoss(rate=0.005),))),
    ]
    if not smoke:
        plans += [
            ("crash-mid", FaultPlan(seed=CAMPAIGN_SEED + 3, schedules=(
                NodeCrash(node=1 % nprocs, at_ns=2_000_000.0),))),
            ("linkdown", FaultPlan(seed=CAMPAIGN_SEED + 4, schedules=(
                LinkDown(src=0, dst=nprocs - 1, from_ns=0.0,
                         to_ns=400_000.0),))),
            ("crash+loss", FaultPlan(seed=CAMPAIGN_SEED + 5, schedules=(
                NodeCrash(node=nprocs - 1, at_ns=500_000.0),
                CellLoss(rate=0.005)))),
        ]
    return plans


def build_specs(smoke: bool) -> List[Tuple[str, Any]]:
    """The full campaign grid as ``(label, RunSpec)`` pairs."""
    from repro.harness import RunSpec
    from repro.params import SimParams

    base = SimParams().replace(
        reliable_transport=True,
        reliab_timeout_ns=300_000.0,
        reliab_max_attempts=5,
        op_deadline_ns=20_000_000.0,
        heartbeat_interval_ns=500_000.0,
        heartbeat_miss_budget=4,
        runtime_send_retries=1,
    )
    grid: List[Tuple[str, Any]] = []
    for app, cfg, nprocs in _workload_configs(smoke):
        params = base.replace(num_processors=nprocs)
        for plan_name, plan in _fault_plans(smoke, nprocs):
            grid.append((
                f"{app}/{plan_name}",
                RunSpec(app, params.replace(fault_plan=plan), "cni", cfg),
            ))
    return grid


def _digest(result: Any) -> str:
    return result.digest()


def run_campaign(jobs: int, smoke: bool) -> int:
    from repro.harness import RunFailure, run_map

    grid = build_specs(smoke)
    labels = [label for label, _spec in grid]
    specs = [spec for _label, spec in grid]
    mode = "smoke" if smoke else "full"
    print(f"[chaos] campaign ({mode}): {len(specs)} runs, "
          f"jobs 1 vs jobs {jobs}")

    t0 = time.perf_counter()
    serial = run_map(specs, jobs=1, record=False, on_error="record")
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_map(specs, jobs=jobs, record=False, on_error="record")
    parallel_s = time.perf_counter() - t0

    failures = 0
    outcome_counts: Dict[str, int] = {}
    for label, s_res, p_res in zip(labels, serial, parallel):
        problems = []
        if _digest(s_res) != _digest(p_res):
            problems.append(f"digest mismatch at jobs {jobs}")
        if isinstance(s_res, RunFailure):
            outcome = s_res.error_type
            if s_res.error_type not in TYPED_OK:
                problems.append(
                    f"untyped outcome {s_res.error_type}: {s_res.message}")
        else:
            outcome = "ok"
        outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
        status = "FAIL " + "; ".join(problems) if problems else outcome
        print(f"[chaos]   {label:<24} {status}")
        failures += bool(problems)

    summary = ", ".join(f"{k}={v}" for k, v in sorted(outcome_counts.items()))
    print(f"[chaos] outcomes: {summary}")
    print(f"[chaos] wall: serial {serial_s:.1f}s, jobs {jobs} "
          f"{parallel_s:.1f}s")
    if failures:
        print(f"[chaos] FAILED: {failures}/{len(specs)} runs broke the "
              f"contract (hang, untyped error, or nondeterminism)")
        return 1
    print(f"[chaos] PASSED: all {len(specs)} runs terminated with success "
          f"or a typed error; digests identical at jobs 1 and {jobs}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI subset: 3 workloads x 3 plans")
    ap.add_argument("--jobs", type=int, default=2,
                    help="parallel worker count to compare against "
                         "jobs 1 (default 2)")
    args = ap.parse_args(argv)
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")
    return run_campaign(args.jobs, args.smoke)


if __name__ == "__main__":
    sys.exit(main())
