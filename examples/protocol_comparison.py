#!/usr/bin/env python
"""Why the paper chose *lazy* release consistency.

Section 3: "An invalidate protocol was chosen because it has been shown
that invalidate protocols work best in low overhead environments."  The
library ships both the paper's lazy protocol and the classical eager
alternative (push invalidations at every release, block for acks), so
the choice can be measured rather than taken on faith — on both network
interfaces, since the protocols' costs interact with where protocol
code runs (AIH on the board vs. interrupt handlers on the host).

Run:  python examples/protocol_comparison.py
"""

from repro.apps import JacobiConfig, build_jacobi, jacobi_kernel
from repro.params import SimParams
from repro.runtime import Cluster


def run(interface: str, protocol: str):
    cfg = JacobiConfig(n=96, iterations=6)
    params = SimParams().replace(num_processors=8)
    cluster = Cluster(params, interface=interface, home_scheme="block",
                      protocol=protocol)
    grids = build_jacobi(cluster, cfg)
    return cluster.run(lambda ctx: jacobi_kernel(ctx, cfg, grids))


def main() -> None:
    print("Jacobi 96x96, 6 iterations, 8 workstations\n")
    print(f"{'interface':>10} {'protocol':>8} {'time (ms)':>10} "
          f"{'packets':>8} {'slowdown':>9}")
    for interface in ("cni", "standard"):
        base = None
        for protocol in ("lazy", "eager"):
            stats = run(interface, protocol)
            ms = stats.elapsed_ns / 1e6
            if base is None:
                base = ms
            print(f"{interface:>10} {protocol:>8} {ms:>10.3f} "
                  f"{stats.counters['nic_packets_sent']:>8} "
                  f"{ms / base:>8.2f}x")
    print(
        "\nEager RC multiplies protocol messages (a broadcast + acks per"
        "\nwriting release) and stalls releasers.  Note the slowdown is"
        "\nworse on the *standard* interface, where every extra protocol"
        "\nmessage interrupts a host CPU — exactly the sense in which"
        "\ninvalidate/lazy protocols 'work best in low overhead"
        "\nenvironments', and the CNI is the low-overhead environment."
    )


if __name__ == "__main__":
    main()
