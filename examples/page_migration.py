#!/usr/bin/env python
"""Watching the Message Cache work: a page migrating around a ring.

Section 3.1 singles out Cholesky because "pages tend to move from the
releaser to the acquirer"; receive caching means a node that just
received a page can forward it onward without touching host memory.
This example builds that pattern directly — one shared page hops around
the cluster several times — and prints the Message Cache's internals
(hits, insertions, snoop activity) for three configurations: full CNI,
CNI without snooping, and CNI without receive caching.

Run:  python examples/page_migration.py
"""

from repro.params import SimParams
from repro.runtime import Cluster


def run_ring(label: str, laps: int = 4, nprocs: int = 4, **flags):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=16, **flags
    )
    cluster = Cluster(params, interface="cni")
    arr = cluster.alloc_shared((512,))  # exactly one shared page
    base = arr.base_vaddr

    def kernel(ctx):
        token = 0
        for lap in range(laps):
            for holder in range(ctx.nprocs):
                if ctx.rank == holder:
                    # read the token, bump it, pass it on
                    yield from ctx.read_runs([(base, 8)])
                    token = arr.data[0]
                    yield from ctx.write_runs([(base, 4096)])
                    arr.data[:] = token + 1
                yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert arr.data[0] == laps * nprocs

    mc0 = cluster.nodes[0].nic.message_cache
    print(f"--- {label} ---")
    print(f"  execution time        : {stats.elapsed_ns / 1e6:7.3f} ms")
    print(f"  page transmissions    : {stats.counters['dsm_pages_served']}")
    print(f"  network cache hit rate: "
          f"{100 * stats.network_cache_hit_ratio:6.1f} %")
    print(f"  node0 buffer-map      : {mc0.insertions} insertions, "
          f"{mc0.evictions} evictions, {mc0.snoop_updates} snoop updates")
    print()
    return stats


def main() -> None:
    full = run_ring("full CNI (transmit+receive caching, snooping)")
    run_ring("snooping disabled", snoop_enabled=False)
    no_rc = run_ring("receive caching disabled", receive_caching=False)

    speed = 100 * (1 - full.elapsed_ns / no_rc.elapsed_ns)
    print(f"receive caching alone is worth {speed:.1f}% on this "
          f"migration-heavy pattern — the effect the paper credits for "
          f"Cholesky's gains")


if __name__ == "__main__":
    main()
