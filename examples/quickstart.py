#!/usr/bin/env python
"""Quickstart: simulate a CNI workstation cluster and run Jacobi on it.

This is the five-minute tour: build the two cluster configurations the
paper compares (the CNI and a standard interrupt-driven interface), run
the same distributed-shared-memory application on both, and look at the
numbers the paper reports — execution time, the overhead breakdown of
Tables 2-4, and the network cache hit ratio.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import JacobiConfig, jacobi_reference, run_jacobi
from repro.params import SimParams


def main() -> None:
    cfg = JacobiConfig(n=96, iterations=6)
    params = SimParams().replace(num_processors=8)

    print(f"Jacobi {cfg.n}x{cfg.n}, {cfg.iterations} iterations, "
          f"{params.num_processors} workstations\n")

    results = {}
    for interface in ("cni", "standard"):
        stats, grid = run_jacobi(params, interface, cfg)
        results[interface] = stats

        # the simulation is execution-driven: the result is real
        assert np.allclose(grid, jacobi_reference(cfg))

        table = stats.overhead_table(params.cpu_freq_hz)
        print(f"--- {interface} interface ---")
        print(f"  execution time      : {stats.elapsed_ns / 1e6:8.3f} ms")
        print(f"  computation         : {table['computation'] / 1e6:8.2f} Mcycles")
        print(f"  synch overhead      : {table['synch_overhead'] / 1e6:8.2f} Mcycles")
        print(f"  synch delay         : {table['synch_delay'] / 1e6:8.2f} Mcycles")
        if interface == "cni":
            print(f"  network cache hits  : "
                  f"{100 * stats.network_cache_hit_ratio:8.2f} %")
        print()

    cni, std = results["cni"], results["standard"]
    gain = 100.0 * (1 - cni.elapsed_ns / std.elapsed_ns)
    print(f"CNI finishes {gain:.1f}% faster than the standard interface")
    print("(numerical results of both runs match the sequential reference)")


if __name__ == "__main__":
    main()
