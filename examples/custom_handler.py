#!/usr/bin/env python
"""Installing a *custom* Application Interrupt Handler.

Section 2.3: applications "can install customized protocols in the
network adaptor board"; a barrier, for instance, "can be handled within
the network adaptor board, eliminating the overhead of the application
protocol stack".  This example does exactly that — it implements a
board-resident atomic fetch-and-add service: the counter lives in the
board's handler memory on node 0, remote increments are classified by
the PATHFINDER straight into the handler, and the host CPUs of both
nodes never see an interrupt.

The same service is then run "the old way" (a DSM counter under a lock)
for comparison.

Run:  python examples/custom_handler.py
"""

from repro.network import Packet, PacketKind
from repro.params import SimParams
from repro.runtime import Cluster

FNA_KEY = 0x200         # PATHFINDER handler key for our service
FNA_REPLY_KEY = 0x201
INCREMENTS = 16


def run_board_counter():
    """Clients on nodes 1..3 hammer the board-resident counter."""
    params = SimParams().replace(num_processors=4, dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    server = cluster.nodes[0]
    state = {"counter": 0}

    # Replace the DSM sink's view for our keys by installing handlers on
    # every node: the server increments; clients complete their waiters.
    pending = {n.node_id: [] for n in cluster.nodes}

    def handler(packet: Packet, on_board: bool):
        node = cluster.nodes[packet.dst_node]
        yield node.params.ni_cycles_ns(node.params.ni_aih_protocol_cycles)
        if packet.handler_key == FNA_KEY:
            state["counter"] += 1
            node.nic.board_send(Packet(
                kind=PacketKind.DSM_PROTOCOL, src_node=packet.dst_node,
                dst_node=packet.src_node, channel_id=packet.channel_id,
                handler_key=FNA_REPLY_KEY, payload_bytes=16,
                payload=state["counter"],
            ))
        else:
            waiters = pending[packet.dst_node]
            if waiters:
                waiters.pop(0).trigger(packet.payload)

    for node in cluster.nodes:
        node.nic.install_protocol_handler(FNA_KEY, handler, 1024)
        node.nic.install_protocol_handler(FNA_REPLY_KEY, handler, 1024)
        # our keys must reach our handler, not the DSM/collective
        # engines: wrap the node's protocol dispatcher
        engine_sink = node.dispatch_protocol_packet

        def sink(packet, on_board, _engine=engine_sink):
            if packet.handler_key in (FNA_KEY, FNA_REPLY_KEY):
                yield from handler(packet, on_board)
            else:
                yield from _engine(packet, on_board)

        node.nic.set_protocol_sink(sink)

    from repro.core.adc import TransmitDescriptor

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.barrier()
            return
        for _ in range(INCREMENTS):
            ev = ctx.sim.event()
            pending[ctx.rank].append(ev)
            yield from ctx.node.nic.host_send(TransmitDescriptor(
                dst_node=0, vaddr=None, length=16, handler_key=FNA_KEY,
                channel_id=ctx.node.dsm_channel_id,
            ))
            yield ev
            yield ctx.node.nic.rx_wake_overhead_ns()
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert state["counter"] == 3 * INCREMENTS
    return stats


def run_dsm_counter():
    """The conventional version: a shared counter under a DSM lock."""
    params = SimParams().replace(num_processors=4, dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    arr = cluster.alloc_shared((8,))
    base = arr.base_vaddr

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.barrier()
            return
        for _ in range(INCREMENTS):
            yield from ctx.acquire(9)
            yield from ctx.read_runs([(base, 8)])
            v = arr.data[0]
            yield from ctx.write_runs([(base, 8)])
            arr.data[0] = v + 1
            yield from ctx.release(9)
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert arr.data[0] == 3 * INCREMENTS
    return stats


def main() -> None:
    board = run_board_counter()
    dsm = run_dsm_counter()
    print(f"{3 * INCREMENTS} remote atomic increments from 3 clients\n")
    print(f"  board-resident AIH service : {board.elapsed_ns / 1e6:7.3f} ms")
    print(f"  DSM counter under a lock   : {dsm.elapsed_ns / 1e6:7.3f} ms")
    print(f"\ncustomized on-board protocol is "
          f"{dsm.elapsed_ns / board.elapsed_ns:.1f}x faster — the class of "
          f"win Section 2.3 claims for synchronization primitives")


if __name__ == "__main__":
    main()
