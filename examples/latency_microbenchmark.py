#!/usr/bin/env python
"""Figure 14 at home: node-to-node latency over the two interfaces.

The second programming paradigm the CNI supports is plain user-level
message passing over Application Device Channels.  This example measures
one-way latency for a range of message sizes after warming the Message
Cache (the paper's "assuming a 100% network cache hit ratio" condition)
and shows where the CNI's advantage comes from by decomposing a 4 KB
transfer.

Run:  python examples/latency_microbenchmark.py
"""

from repro.harness import latency_microbenchmark, one_way_latency_ns
from repro.params import SimParams


def main() -> None:
    sizes = [0, 256, 512, 1024, 2048, 4096]
    result = latency_microbenchmark(sizes)

    print("one-way node-to-node latency (Message Cache warm)\n")
    print(f"{'bytes':>8} {'CNI (us)':>10} {'standard (us)':>14} {'saving':>8}")
    for i, size in enumerate(sizes):
        c = result.get("cni_latency_us")[i]
        s = result.get("standard_latency_us")[i]
        print(f"{int(size):>8} {c:>10.2f} {s:>14.2f} {100 * (1 - c / s):>7.1f}%")

    # ---- where does the 4 KB difference come from? ----------------------
    p = SimParams()
    print("\ncomponents of a 4 KB transfer:")
    print(f"  host->board DMA (skipped by a Message Cache hit) "
          f": {p.dma_time_ns(4096) / 1000:6.2f} us")
    print(f"  ATM segmentation+wire, {p.cells_for_packet(4096 + 16)} cells "
          f": {p.train_wire_time_ns(4096 + 16) / 1000:6.2f} us")
    print(f"  board->host DMA (paid by both interfaces)        "
          f": {p.dma_time_ns(4096) / 1000:6.2f} us")
    print(f"  host interrupt (standard receive path)           "
          f": {p.interrupt_latency_ns / 1000:6.2f} us")
    print(f"  ADC polling slack (CNI receive path)             "
          f": {p.poll_interval_ns / 2000:6.2f} us")

    # the paper's headline claim
    c4 = one_way_latency_ns(4096, "cni", SimParams())
    s4 = one_way_latency_ns(4096, "standard", SimParams())
    print(f"\n4 KB page transfer: CNI is {100 * (1 - c4 / s4):.0f}% faster "
          f"(paper: 'as much as 33%')")


if __name__ == "__main__":
    main()
