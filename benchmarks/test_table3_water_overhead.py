"""Table 3 — Water overhead breakdown (8 processors).

Paper shape: "lower synchronization overheads and delays for the CNI
configuration"; identical computation; lower total.
"""

import pytest

from repro.harness import run_experiment


def test_table3_water_overhead_breakdown(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", scale), rounds=1, iterations=1
    )
    show(result)
    cni = {r: result.cell(r, "time_cni_cycles") for r in result.rows}
    std = {r: result.cell(r, "time_standard_cycles") for r in result.rows}

    assert cni["synch_overhead"] < std["synch_overhead"]
    assert cni["synch_delay"] < std["synch_delay"]
    assert cni["computation"] == pytest.approx(std["computation"], rel=0.02)
    assert cni["total"] < std["total"]
    # Water is medium-grained: synchronization (delay + overhead) is a
    # large share of the total, unlike Jacobi (Table 2 vs Table 3).
    assert (cni["synch_delay"] + cni["synch_overhead"]) > 0.1 * cni["total"]
