"""Figures 2-4 — Jacobi speedup and network cache hit ratio vs
processor count, three matrix sizes, CNI vs standard interface.

Paper shapes asserted: CNI speedup >= standard at every point; hit
ratios high and non-degrading with processor count; bigger matrices
scale better; with the small matrix and the largest processor count
both configurations degrade but the CNI degrades less (Section 3.1).
"""

import pytest

from repro.harness import run_experiment


@pytest.mark.parametrize("exp_id", ["fig2", "fig3", "fig4"])
def test_jacobi_speedup_figures(benchmark, scale, show, exp_id):
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    hits = result.get("network_cache_hit_ratio")

    # CNI never loses to the standard interface.
    for c, s in zip(cni, std):
        assert c >= s * 0.98  # small tolerance for 1-proc baselines

    # Parallelism helps: best speedup well above one processor's.
    assert max(cni) > 1.2
    # Hit ratio is high once there is communication at all and does not
    # collapse as processors are added (Figure 2's rising curve).
    assert hits[-1] >= 50.0
    assert hits[-1] >= hits[1] - 5.0


def test_bigger_jacobi_scales_better(benchmark, scale, show):
    small = run_experiment("fig2", scale)
    large = benchmark.pedantic(
        lambda: run_experiment("fig4", scale), rounds=1, iterations=1
    )
    show(large)
    # the large matrix achieves a better peak speedup (Figures 2 vs 4)
    assert max(large.get("cni_speedup")) >= max(small.get("cni_speedup"))
