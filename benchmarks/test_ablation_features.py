"""Ablations — which CNI mechanism buys what (DESIGN.md section 9).

Not a paper table; these benches isolate the three mechanisms the paper
composes: Message Cache (with its snooping), Application Interrupt
Handlers, and the ADC fast path, on a fixed page-migration-heavy
workload.
"""

import pytest

from repro.apps import CholeskyConfig, bcsstk14_like, run_cholesky
from repro.params import SimParams
from repro.runtime import Cluster


def run_variant(scale, **flags):
    cfg = CholeskyConfig(
        matrix=bcsstk14_like(scale=scale.cholesky_scale14),
        supernode=scale.supernode,
    )
    params = SimParams().replace(num_processors=scale.nprocs_fixed, **flags)
    return run_cholesky(params, "cni", cfg)[0]


def run_migration_ring(laps=6, nprocs=4, **flags):
    """A page hopping around the cluster: the workload transmit/receive
    caching exists for (Section 2.2's page-migration scenario)."""
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=16, **flags
    )
    cluster = Cluster(params, interface="cni")
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        for lap in range(laps):
            for holder in range(ctx.nprocs):
                if ctx.rank == holder:
                    yield from ctx.read_runs([(base, 8)])
                    v = arr.data[0]
                    yield from ctx.write_runs([(base, 4096)])
                    arr.data[:] = v + 1
                yield from ctx.barrier()

    return cluster.run(kernel)


def test_ablation_message_cache(benchmark, scale, show):
    full = run_migration_ring()
    no_mc = benchmark.pedantic(
        lambda: run_migration_ring(
            use_message_cache=False,
            transmit_caching=False, receive_caching=False,
        ),
        rounds=1, iterations=1,
    )
    print(f"\nfull-CNI {full.elapsed_ns/1e6:.3f} ms vs "
          f"no-message-cache {no_mc.elapsed_ns/1e6:.3f} ms")
    assert full.elapsed_ns < no_mc.elapsed_ns
    assert full.network_cache_hit_ratio > no_mc.network_cache_hit_ratio


def test_ablation_aih(benchmark, scale, show):
    full = run_variant(scale)
    no_aih = benchmark.pedantic(
        lambda: run_variant(scale, use_aih=False), rounds=1, iterations=1
    )
    print(f"\nfull-CNI {full.elapsed_ns/1e6:.3f} ms vs "
          f"no-AIH {no_aih.elapsed_ns/1e6:.3f} ms")
    # protocol on the host costs interrupts: slower
    assert full.elapsed_ns < no_aih.elapsed_ns


def test_ablation_snooping(benchmark, scale, show):
    full = run_variant(scale)
    no_snoop = benchmark.pedantic(
        lambda: run_variant(scale, snoop_enabled=False), rounds=1, iterations=1
    )
    print(f"\nfull-CNI hit {full.network_cache_hit_ratio:.3f} vs "
          f"no-snoop hit {no_snoop.network_cache_hit_ratio:.3f}")
    assert full.network_cache_hit_ratio >= no_snoop.network_cache_hit_ratio


def test_ablation_receive_caching(benchmark, scale, show):
    """Receive caching is what accelerates page *migration* (the
    Cholesky pattern the paper singles out)."""
    full = run_variant(scale)
    no_rc = benchmark.pedantic(
        lambda: run_variant(scale, receive_caching=False),
        rounds=1, iterations=1,
    )
    print(f"\nfull-CNI hit {full.network_cache_hit_ratio:.3f} vs "
          f"no-receive-caching hit {no_rc.network_cache_hit_ratio:.3f}")
    assert full.network_cache_hit_ratio >= no_rc.network_cache_hit_ratio
