"""Figure 9 — Water page-size sensitivity (8 processors, medium input).

Paper shape: "The CNI is also less sensitive to page size ... even
though there is some false sharing with larger page sizes."
"""

import pytest

from repro.harness import run_experiment


def spread(ys):
    return (max(ys) - min(ys)) / max(ys)


def test_fig9_water_page_size_sensitivity(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    for c, s in zip(cni, std):
        assert c >= s * 0.98
    assert spread(cni) <= spread(std) + 0.05
