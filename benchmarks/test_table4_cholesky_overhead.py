"""Table 4 — Cholesky overhead breakdown (8 processors, bcsstk14).

Paper shape: synchronization delay dominates the fine-grained
application's execution; the CNI's totals are lower.
"""

import pytest

from repro.harness import run_experiment


def test_table4_cholesky_overhead_breakdown(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", scale), rounds=1, iterations=1
    )
    show(result)
    cni = {r: result.cell(r, "time_cni_cycles") for r in result.rows}
    std = {r: result.cell(r, "time_standard_cycles") for r in result.rows}

    assert cni["synch_delay"] <= std["synch_delay"]
    assert cni["computation"] == pytest.approx(std["computation"], rel=0.05)
    assert cni["total"] < std["total"]
    # Fine granularity: synch delay is the dominant cost (Table 4 has
    # 61.8 of 85.7 total in delay).
    assert cni["synch_delay"] > cni["computation"] * 0.3
