"""Figure 13 — network cache hit ratio vs Message Cache size.

Paper shapes: hit ratios are non-decreasing in cache size; Jacobi and
Water saturate at small caches ("a slight increase ... beyond 32KB
brings the ... ratio to its optimal limit"); Cholesky needs a much
larger cache to saturate ("saturate[s] at 90% for ... 512 KB").
"""

import pytest

from repro.harness import run_experiment


def test_fig13_hit_ratio_vs_message_cache_size(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13", scale), rounds=1, iterations=1
    )
    show(result)
    for app in ("jacobi", "water", "cholesky"):
        ys = result.get(app)
        # allow tiny non-monotonic wiggles from eviction order
        for a, b in zip(ys, ys[1:]):
            assert b >= a - 3.0
        assert ys[-1] >= ys[0]
    # Saturation: for every app the top half of the sweep moves less
    # than the bottom half (Figure 13's flattening curves).  At quick
    # scale the shrunken working sets saturate earlier than the paper's;
    # at paper scale Cholesky is the late saturator (512 KB).
    for app in ("jacobi", "water", "cholesky"):
        ys = result.get(app)
        half = len(ys) // 2
        early_gain = ys[half] - ys[0]
        late_gain = ys[-1] - ys[half]
        assert late_gain <= early_gain + 3.0
