"""Figure 14 — best-case node-to-node latency vs message size.

Paper shapes: both curves are essentially linear in message size; the
CNI is uniformly faster; "for a 4KB page size transfer, the
communication latency is lower for the CNI architecture by as much as
33%".
"""

import pytest

from repro.harness import run_experiment


def test_fig14_node_to_node_latency(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig14", scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_latency_us")
    std = result.get("standard_latency_us")

    # monotone in message size, CNI uniformly faster
    for xs in (cni, std):
        for a, b in zip(xs, xs[1:]):
            assert b >= a
    for c, s in zip(cni, std):
        assert c < s

    # the paper's headline: ~33% lower latency at the 4 KB point
    reduction = 1.0 - cni[-1] / std[-1]
    assert 0.15 <= reduction <= 0.55, f"4KB reduction {reduction:.0%}"

    # rough linearity: the per-byte slope at the top half is within 3x
    # of the bottom half (no blow-up, no plateau)
    half = len(cni) // 2
    lo_slope = (cni[half] - cni[0]) / max(result.xs[half] - result.xs[0], 1)
    hi_slope = (cni[-1] - cni[half]) / max(result.xs[-1] - result.xs[half], 1)
    assert hi_slope < 3 * lo_slope + 1e-6
