"""Ablation — lazy vs eager release consistency.

Section 3: "An invalidate protocol was chosen because it has been shown
that invalidate protocols work best in low overhead environments" and
the protocol is *lazy*.  This bench quantifies that design decision:
eager RC broadcasts invalidations at every release and blocks for acks;
lazy defers them to the next causally-related acquire.
"""

import pytest

from repro.apps import JacobiConfig, jacobi_kernel, build_jacobi
from repro.params import SimParams
from repro.runtime import Cluster


def run_jacobi_proto(scale, protocol, iface="cni"):
    cfg = scale.jacobi_small
    params = SimParams().replace(num_processors=scale.nprocs_fixed)
    cluster = Cluster(params, interface=iface, home_scheme="block",
                      protocol=protocol)
    grids = build_jacobi(cluster, cfg)
    return cluster.run(lambda ctx: jacobi_kernel(ctx, cfg, grids))


def test_lazy_beats_eager_on_messages(benchmark, scale, show):
    lazy = run_jacobi_proto(scale, "lazy")
    eager = benchmark.pedantic(
        lambda: run_jacobi_proto(scale, "eager"), rounds=1, iterations=1
    )
    print(f"\nlazy  : {lazy.elapsed_ns/1e6:8.3f} ms, "
          f"{lazy.counters['nic_packets_sent']} packets")
    print(f"eager : {eager.elapsed_ns/1e6:8.3f} ms, "
          f"{eager.counters['nic_packets_sent']} packets")
    assert eager.counters["nic_packets_sent"] > \
        lazy.counters["nic_packets_sent"]
    assert lazy.elapsed_ns <= eager.elapsed_ns * 1.02


def test_protocol_gap_larger_on_standard_interface(benchmark, scale, show):
    """The paper's phrasing cuts both ways: invalidate/lazy wins *most*
    where overheads are high.  The eager/lazy gap should not shrink when
    protocol actions get expensive (host interrupts instead of AIH)."""
    gaps = {}
    for iface in ("cni", "standard"):
        lazy = run_jacobi_proto(scale, "lazy", iface)
        eager = run_jacobi_proto(scale, "eager", iface)
        gaps[iface] = eager.elapsed_ns / lazy.elapsed_ns
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\neager/lazy slowdown: cni {gaps['cni']:.3f}, "
          f"standard {gaps['standard']:.3f}")
    assert gaps["standard"] >= gaps["cni"] * 0.9
