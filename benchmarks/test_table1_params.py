"""Table 1 — simulation parameters.

Regenerates the parameter table and checks it against the paper's
values (with the two OCR resolutions documented in DESIGN.md).
"""

import pytest

from repro.harness import run_experiment


def test_table1_simulation_parameters(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", scale), rounds=1, iterations=1
    )
    show(result)
    assert result.cell("cpu_frequency_mhz", "value") == 166.0
    assert result.cell("l1_size_kb", "value") == 32.0
    assert result.cell("l2_size_kb", "value") == 1024.0
    assert result.cell("l1_access_cycles", "value") == 1
    assert result.cell("l2_access_cycles", "value") == 10
    assert result.cell("memory_latency_cycles", "value") == 20
    assert result.cell("bus_acquisition_cycles", "value") == 4
    assert result.cell("bus_cycles_per_word", "value") == 2
    assert result.cell("bus_frequency_mhz", "value") == 25.0
    assert result.cell("switch_latency_ns", "value") == 500.0
    assert result.cell("ni_frequency_mhz", "value") == 33.0
    assert result.cell("message_cache_kb", "value") == 32.0
