"""Figures 6-8 — Water speedup and hit ratio, three molecule counts.

Paper shapes: CNI >= standard; "the network cache hit ratio is
sensitive to the number of processors because of the nature of data
sharing"; the CNI "show[s] improved scalability with large number of
processors".
"""

import pytest

from repro.harness import run_experiment


@pytest.mark.parametrize("exp_id", ["fig6", "fig7", "fig8"])
def test_water_speedup_figures(benchmark, scale, show, exp_id):
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    hits = result.get("network_cache_hit_ratio")

    for c, s in zip(cni, std):
        assert c >= s * 0.98
    # hit ratio moves with processor count (it is *sensitive*, unlike
    # Jacobi's flat curve): the spread across processor counts is real.
    active = hits[1:]  # skip the no-communication 1-proc point
    assert max(active) - min(active) >= 1.0 or min(active) > 90.0
    # the largest processor count still communicates mostly from cache
    assert hits[-1] > 30.0


def test_water_cni_gap_grows_with_processors(benchmark, scale, show):
    """The paper credits the CNI with better scalability: the CNI/std
    ratio at the largest processor count is at least what it is at the
    smallest parallel point."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    first = cni[1] / std[1]
    last = cni[-1] / std[-1]
    assert last >= first * 0.9
