"""Table 2 — Jacobi overhead breakdown (8 processors).

Paper shape: "the CNI scheme has a lower synchronization overhead as
well as substantially less synchronization delay"; computation is
essentially identical; totals favour the CNI.
"""

import pytest

from repro.harness import run_experiment


def test_table2_jacobi_overhead_breakdown(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", scale), rounds=1, iterations=1
    )
    show(result)
    cni = {r: result.cell(r, "time_cni_cycles") for r in result.rows}
    std = {r: result.cell(r, "time_standard_cycles") for r in result.rows}

    assert cni["synch_overhead"] < std["synch_overhead"]
    assert cni["synch_delay"] < std["synch_delay"]
    # computation is the same program on the same data
    assert cni["computation"] == pytest.approx(std["computation"], rel=0.02)
    assert cni["total"] < std["total"]
