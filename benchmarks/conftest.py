"""Shared fixtures for the table/figure regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper at the
``quick`` scale (REPRO_FULL=1 switches to the paper-sized sweeps),
prints the regenerated rows/series, and asserts the *shape* claims the
paper makes (who wins, monotonicity, crossovers) — absolute numbers are
simulator-dependent and are recorded in EXPERIMENTS.md instead.
"""

import pytest

from repro.harness import active_scale
from repro.harness.report import format_series, format_table


@pytest.fixture(scope="session")
def scale():
    return active_scale()


@pytest.fixture
def show():
    """Print a result under pytest -s / captured output."""
    def _show(result):
        from repro.harness.results import SeriesResult
        text = (format_series(result) if isinstance(result, SeriesResult)
                else format_table(result))
        print("\n" + text)
        return result
    return _show
