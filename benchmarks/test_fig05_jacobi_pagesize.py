"""Figure 5 — Jacobi page-size sensitivity (8 processors, large grid).

Paper shape: the CNI is *less sensitive* to shared-page size than the
standard interface "because of the lower cost of page transfers".
"""

import pytest

from repro.harness import run_experiment


def spread(ys):
    return (max(ys) - min(ys)) / max(ys)


def test_fig5_jacobi_page_size_sensitivity(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    # CNI wins at every page size.
    for c, s in zip(cni, std):
        assert c >= s * 0.98
    # CNI's speedup varies less across page sizes than the standard's.
    assert spread(cni) <= spread(std) + 0.05
