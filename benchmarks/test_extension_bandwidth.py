"""Extension — application-to-application bandwidth vs message size.

Not a paper figure: the paper's predecessors (OSIRIS) demonstrated high
*bandwidth*; the claim implicit in CNI is that latency optimizations do
not cost bandwidth.  Shapes asserted: bandwidth grows with message size
(per-message costs amortize), the CNI sustains at least the standard
interface's bandwidth, and large messages reach a respectable fraction
of the 622 Mbps line rate.
"""

import pytest

from repro.harness import bandwidth_microbenchmark


def test_bandwidth_vs_message_size(benchmark, scale, show):
    sizes = [512, 1024, 2048, 4096]
    result = benchmark.pedantic(
        lambda: bandwidth_microbenchmark(sizes, messages_per_burst=16),
        rounds=1, iterations=1,
    )
    show(result)
    cni = result.get("cni_mbps")
    std = result.get("standard_mbps")

    # bandwidth grows with message size for both interfaces
    for xs in (cni, std):
        assert xs[-1] > xs[0]
    # the CNI never sacrifices bandwidth
    for c, s in zip(cni, std):
        assert c >= s * 0.95
    # large transfers achieve a useful fraction of the 622 Mbps line
    assert cni[-1] > 0.3 * 622
