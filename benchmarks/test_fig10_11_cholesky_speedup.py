"""Figures 10-11 — Cholesky speedup and hit ratio, bcsstk14/bcsstk15.

Paper shapes: CNI >= standard; "caching receive buffers helped
performance a great deal" (migratory pages); "the bcsstk15 matrix shows
better speedup performance because of the larger size of the matrix".
"""

import pytest

from repro.harness import run_experiment


@pytest.mark.parametrize("exp_id", ["fig10", "fig11"])
def test_cholesky_speedup_figures(benchmark, scale, show, exp_id):
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    for c, s in zip(cni, std):
        assert c >= s * 0.95
    # Fine granularity: at the quick scale the tiny per-task work is
    # dominated by distributed locking (real small-input DSM behaviour)
    # and absolute speedup can dip below one; the paper's claim we hold
    # everywhere is the CNI-vs-standard gap.  At paper scale, demand
    # some parallelism too.
    if scale.name == "paper":
        assert max(cni) > 1.0
    # the CNI's advantage is visible at the largest processor count
    assert cni[-1] >= std[-1]


def test_bcsstk15_scales_better_than_bcsstk14(benchmark, scale, show):
    small = run_experiment("fig10", scale)
    large = benchmark.pedantic(
        lambda: run_experiment("fig11", scale), rounds=1, iterations=1
    )
    show(large)
    assert max(large.get("cni_speedup")) >= max(small.get("cni_speedup")) * 0.9
