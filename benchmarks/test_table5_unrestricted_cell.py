"""Table 5 — performance improvement with unrestricted ATM cell size.

Paper shape: removing the 53-byte cell's segmentation-and-reassembly
overhead improves every application, and the communication-bound
applications gain more than the coarse-grained one ("the ATM cell size
is a major detriment in trying to reduce communication overhead").
"""

import pytest

from repro.harness import run_experiment


def test_table5_unrestricted_cell_size(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", scale), rounds=1, iterations=1
    )
    show(result)
    jac = result.cell("jacobi", "pct_improvement")
    wat = result.cell("water", "pct_improvement")
    cho = result.cell("cholesky", "pct_improvement")

    # every application improves measurably
    for v in (jac, wat, cho):
        assert v > 0.5
    # the finer-grained, communication-heavier applications gain at
    # least as much as coarse-grained Jacobi (paper: 5.69 / 13.31 /
    # 25.29 percent)
    assert max(wat, cho) >= jac * 0.8
