"""Extension — sensitivity to NI-processor speed.

Not a paper figure, but the paper's own forward-looking argument:
"as network interface processors are getting more and more powerful,
substantial overhead can be reduced if protocol processing can be done
in the network interface" (Section 2.2->2.3 transition).  Sweeping the
33 MHz NI clock shows that the CNI (whose protocol runs *on* that
processor) benefits from faster NI silicon while the standard interface
(protocol on the host) barely moves — the CNI is positioned to ride the
NI-processor curve.
"""

import pytest

from repro.apps import CholeskyConfig, bcsstk14_like
from repro.harness import sweep_param


def test_ni_speed_sweep(benchmark, scale, show):
    cfg = CholeskyConfig(
        matrix=bcsstk14_like(scale=scale.cholesky_scale14),
        supernode=scale.supernode,
    )
    speeds = [16.5e6, 33e6, 66e6, 132e6]
    result = benchmark.pedantic(
        lambda: sweep_param("cholesky", cfg, "ni_freq_hz", speeds,
                            nprocs=scale.nprocs_fixed),
        rounds=1, iterations=1,
    )
    show(result)
    cni = result.get("cni_elapsed_ms")
    std = result.get("standard_elapsed_ms")
    # faster NI silicon helps the CNI...
    assert cni[-1] < cni[0]
    # ...and helps it more than the standard interface (relative gain)
    cni_gain = 1 - cni[-1] / cni[0]
    std_gain = 1 - std[-1] / std[0]
    assert cni_gain >= std_gain
