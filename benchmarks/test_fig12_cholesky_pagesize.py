"""Figure 12 — Cholesky page-size sensitivity (8 processors, bcsstk14).

Paper shape: "The application is very sensitive to the size of the
shared memory page because of large page migration overhead ...
However, this overhead is reduced a lot in CNI due to transmit and
receive caching thus leading to considerable lesser sensitivity."
"""

import pytest

from repro.harness import run_experiment


def spread(ys):
    return (max(ys) - min(ys)) / max(ys)


def test_fig12_cholesky_page_size_sensitivity(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: run_experiment("fig12", scale), rounds=1, iterations=1
    )
    show(result)
    cni = result.get("cni_speedup")
    std = result.get("standard_speedup")
    for c, s in zip(cni, std):
        assert c >= s * 0.95
    assert spread(cni) <= spread(std) + 0.08
