"""repro.service — the digest-cached simulation run farm.

The reproduction's runs are repetitive: sweeps re-request the same
(app, params, interface, workload) points across figures, CI re-runs
the same gates per push, and a RunSpec is deterministic by construction
(the chaos suite's digest tests prove it).  So the service treats
results the way the CNI treats transmit pages — cache by content and
serve repeats from the cache:

* :class:`~repro.service.farm.RunFarm` — the in-process job API
  (``submit`` / ``submit_batch`` / ``submit_sweep`` / ``status`` /
  ``result`` / ``cancel``) over a priority queue, dispatching misses
  through the warm-pool :func:`~repro.harness.run_map` executor;
* :class:`~repro.service.store.RunStore` — the persistent
  content-addressed result store (atomic JSON records, LRU index,
  size cap);
* :mod:`~repro.service.http` / :class:`~repro.service.client.FarmClient`
  — a stdlib HTTP front end and client, plus the
  ``python -m repro.service`` CLI (serve / submit / status / fetch /
  stats).

See docs/service.md for the API, the store layout, the
failure-semantics table and the ``service.*`` metric catalog.
"""

from .client import FarmClient, FarmError
from .farm import JobState, RunFarm
from .metrics import SERVICE_METRICS, service_metrics
from .store import RunStore

__all__ = [
    "FarmClient",
    "FarmError",
    "JobState",
    "RunFarm",
    "RunStore",
    "SERVICE_METRICS",
    "service_metrics",
]
