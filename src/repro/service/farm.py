"""The run farm: a job API over a priority queue, a digest-keyed store
and the warm-pool parallel executor.

:class:`RunFarm` is the in-process form of the service (the HTTP front
end in :mod:`repro.service.http` is a thin adapter over it).  The job
lifecycle::

    submit(RunSpec) ──> queued ──> running ──> done     (RunStats)
                          │                └─> failed   (RunFailure /
                          └──> cancelled                 executor error)

A dispatcher thread drains the priority queue in batches: pop every
pending job (highest priority first, FIFO within a priority), coalesce
jobs whose specs share a content digest into one execution, answer
digests the :class:`~repro.service.store.RunStore` already holds from
cache, and fan the remaining misses across worker processes through the
existing warm-pool :func:`~repro.harness.run_map` executor with
``on_error="record"`` — so a typed simulation error (timeout, dead
peer, delivery failure; the PR 7 crash-stop semantics) becomes a stored
:class:`~repro.harness.RunFailure` record served from cache like any
other result, never a hang and never a dead farm.

Determinism: the farm pins every executed spec's worker-RNG seed to the
sweep-position-0 seed (a spec's position in a *service* queue is
scheduling noise, not part of its identity), so the stored
:class:`~repro.engine.RunStats` digest for a spec is bit-identical to
``run_map([spec])`` at any ``--jobs`` value — the cache can never
launder a subtly different result.  tests/service/test_farm.py asserts
it.

See docs/service.md for the API table and failure semantics.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import tempfile
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..harness.parallel import _SEED_BASE, RunFailure, RunSpec, run_map
from ..params import SimParams
from .metrics import (
    m_batches,
    m_cancelled,
    m_coalesced,
    m_completed,
    m_failed,
    m_queue_depth,
    m_submitted,
    service_metrics,
)
from .store import RunStore

__all__ = ["JobState", "RunFarm"]


class JobState:
    """Job lifecycle states (plain strings — they travel in JSON)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclasses.dataclass
class _Job:
    """One submitted job (internal; ``status()`` returns plain data)."""

    job_id: str
    spec: RunSpec
    digest: str
    priority: int
    seq: int
    state: str = JobState.QUEUED
    from_cache: bool = False
    coalesced: bool = False
    result: Any = None          # RunStats | RunFailure once resolved
    error: Optional[str] = None  # untyped executor error / cancellation
    done: threading.Event = dataclasses.field(
        default_factory=threading.Event)

    def status_doc(self) -> Dict[str, Any]:
        doc = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec.describe(),
            "digest": self.digest,
            "priority": self.priority,
            "from_cache": self.from_cache,
            "coalesced": self.coalesced,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result_kind"] = ("run_failure"
                                  if isinstance(self.result, RunFailure)
                                  else "run_stats")
            doc["result_digest"] = self.result.digest()
        return doc


def _pin_seed(spec: RunSpec) -> RunSpec:
    """A spec's executable form: worker-RNG seed fixed to the
    position-0 value, so results are independent of batch composition
    and identical to ``run_map([spec])`` (see the module docstring)."""
    if spec.seed is not None:
        return spec
    return dataclasses.replace(spec, seed=_SEED_BASE)


class RunFarm:
    """The in-process simulation run farm (job API + store + pool).

    ``store`` is a :class:`~repro.service.store.RunStore`, a directory
    path for one, or None for an ephemeral store in a temp directory.
    ``workers`` is the ``jobs=`` fan-out each dispatch batch hands to
    :func:`~repro.harness.run_map` (1 executes in-process).  With
    ``autostart=False`` no dispatcher thread runs and queued jobs only
    execute on explicit :meth:`step` calls — the deterministic mode the
    tests and the in-process smoke gate use.
    """

    def __init__(self, store: Union[RunStore, str, None] = None,
                 workers: int = 1,
                 capacity_bytes: Optional[int] = None,
                 autostart: bool = True) -> None:
        if workers < 1:
            raise ValueError(f"workers={workers} must be >= 1")
        if isinstance(store, RunStore):
            if capacity_bytes is not None:
                raise ValueError("pass capacity_bytes to RunStore, not "
                                 "to RunFarm, when handing over a store")
            self.store = store
        else:
            if store is None:
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-farm-")
                store = self._tmpdir.name
            self.store = RunStore(store, capacity_bytes=capacity_bytes)
        self.workers = workers
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}
        self._heap: List[Any] = []  # (-priority, seq, job_id)
        self._seq = itertools.count()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-farm-dispatch",
                daemon=True)
            self._thread.start()

    # -- the job API ------------------------------------------------------------

    def submit(self, spec: RunSpec, priority: int = 0) -> str:
        """Enqueue one run; returns its job id.

        Higher ``priority`` dispatches first; equal priorities dispatch
        in submission order.  The spec is digested immediately, so a
        malformed spec fails here, not in a worker.
        """
        if not isinstance(spec, RunSpec):
            raise ValueError(f"submit needs a RunSpec, got "
                             f"{type(spec).__name__}")
        digest = spec.digest()
        with self._cond:
            if self._closed:
                raise RuntimeError("farm is closed")
            seq = next(self._seq)
            job = _Job(job_id=f"job-{seq:06d}", spec=spec, digest=digest,
                       priority=priority, seq=seq)
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, (-priority, seq, job.job_id))
            m_submitted.inc()
            m_queue_depth.set(len(self._heap))
            self._cond.notify_all()
        return job.job_id

    def submit_batch(self, specs: Iterable[RunSpec],
                     priority: int = 0) -> List[str]:
        """Enqueue several runs; returns their job ids in order."""
        return [self.submit(spec, priority=priority) for spec in specs]

    def submit_sweep(self, app: str, values: Sequence[Any],
                     param: str = "num_processors",
                     base_params: Optional[SimParams] = None,
                     interface: str = "cni", workload: Any = None,
                     priority: int = 0) -> List[str]:
        """Enqueue a one-parameter sweep: one job per value of
        ``param`` (a :class:`~repro.params.SimParams` field) applied to
        ``base_params``.  The sweep endpoint of the HTTP API."""
        if not values:
            raise ValueError("submit_sweep needs at least one value")
        base = base_params if base_params is not None else SimParams()
        specs = [RunSpec(app, base.replace(**{param: value}), interface,
                         workload=workload)
                 for value in values]
        return self.submit_batch(specs, priority=priority)

    def status(self, job_id: str) -> Dict[str, Any]:
        """Plain-data status of one job (KeyError for unknown ids)."""
        with self._lock:
            return self._jobs[job_id].status_doc()

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> Any:
        """Block until ``job_id`` resolves; return its
        :class:`~repro.engine.RunStats` or
        :class:`~repro.harness.RunFailure`.

        Raises KeyError for unknown ids, TimeoutError when ``timeout``
        seconds pass first, and RuntimeError for jobs that ended with
        no stored record (cancelled, or an untyped executor error).
        """
        with self._lock:
            job = self._jobs[job_id]
        if not job.done.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.state} after "
                               f"{timeout}s")
        if job.result is not None:
            return job.result
        raise RuntimeError(f"{job_id} {job.state}: "
                           f"{job.error or 'no result'}")

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; returns whether it was cancelled
        (running and finished jobs are not cancellable)."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state != JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.error = "cancelled"
            m_cancelled.inc()
            job.done.set()
        return True

    def stats(self) -> Dict[str, Any]:
        """Farm-wide summary: job-state counts, queue depth, store
        occupancy and the full ``service.*`` metrics snapshot."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            depth = len(self._heap)
        return {
            "workers": self.workers,
            "queue_depth": depth,
            "jobs": states,
            "store": self.store.stats(),
            "metrics": service_metrics(),
        }

    # -- dispatch ---------------------------------------------------------------

    def step(self, max_jobs: Optional[int] = None) -> List[str]:
        """Synchronously dispatch one batch of queued jobs; returns the
        processed job ids in pop (priority) order.

        This is the dispatcher thread's body, exposed so an
        ``autostart=False`` farm is stepped deterministically.
        """
        with self._lock:
            batch = self._pop_batch(max_jobs)
        if batch:
            self._process(batch)
        return [job.job_id for job in batch]

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every currently submitted job has resolved."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.done.wait(timeout):
                raise TimeoutError(f"{job.job_id} still {job.state} "
                                   f"after {timeout}s")

    def _pop_batch(self, max_jobs: Optional[int]) -> List[_Job]:
        """Pop up to ``max_jobs`` live jobs in priority order (caller
        holds the lock); cancelled entries are discarded lazily."""
        batch: List[_Job] = []
        while self._heap and (max_jobs is None or len(batch) < max_jobs):
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state != JobState.QUEUED:
                continue  # cancelled while queued
            job.state = JobState.RUNNING
            batch.append(job)
        m_queue_depth.set(len(self._heap))
        if batch:
            m_batches.inc()
        return batch

    def _process(self, batch: List[_Job]) -> None:
        """Coalesce → cache-lookup → execute misses → store → resolve."""
        groups: "Dict[str, List[_Job]]" = {}
        for job in batch:
            group = groups.setdefault(job.digest, [])
            if group:  # an identical spec is already in this batch
                job.coalesced = True
                m_coalesced.inc()
            group.append(job)

        misses: List[_Job] = []
        for digest, group in groups.items():
            cached = self.store.get(digest)
            if cached is not None:
                self._resolve(group, cached, from_cache=True)
            else:
                misses.append(group[0])
        if not misses:
            return

        specs = [_pin_seed(job.spec) for job in misses]
        try:
            results = run_map(specs, jobs=self.workers, record=False,
                              on_error="record")
        except Exception as exc:  # untyped executor error: fail the
            # batch's jobs but keep the farm serving (nothing stored —
            # an untyped error is a bug, not a deterministic result)
            for job in misses:
                self._fail_untyped(groups[job.digest], exc)
            return
        for job, result in zip(misses, results):
            self.store.put(job.digest, result)
            self._resolve(groups[job.digest], result, from_cache=False)

    def _resolve(self, group: List[_Job], result: Any,
                 from_cache: bool) -> None:
        failed = isinstance(result, RunFailure)
        for job in group:
            job.result = result
            job.from_cache = from_cache
            job.state = JobState.FAILED if failed else JobState.DONE
            (m_failed if failed else m_completed).inc()
            job.done.set()

    def _fail_untyped(self, group: List[_Job], exc: Exception) -> None:
        for job in group:
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            m_failed.inc()
            job.done.set()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if self._closed and not self._heap:
                    return
            self.step()

    # -- lifecycle --------------------------------------------------------------

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting jobs, let the dispatcher drain the queue,
        join it.  Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "RunFarm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
