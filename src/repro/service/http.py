"""Stdlib HTTP front end for the run farm.

A thin JSON adapter over :class:`~repro.service.farm.RunFarm` on
``http.server`` (threading; no framework, no new dependencies), serving
the same five operations the in-process API exposes::

    POST /api/v1/jobs              {"spec": <run_spec doc>, "priority": 0}
    POST /api/v1/batch             {"specs": [<run_spec doc>, ...], ...}
    POST /api/v1/sweep             {"app", "param", "values", ...}
    GET  /api/v1/jobs/<id>         job status
    GET  /api/v1/jobs/<id>/result  200 result / 202 still pending
    POST /api/v1/jobs/<id>/cancel  {"cancelled": bool}
    GET  /api/v1/stats             farm + store + service.* metrics
    GET  /api/v1/health            {"ok": true}

Specs travel as the versioned ``run_spec`` documents of
:meth:`~repro.harness.RunSpec.to_json`; results come back as
``run_stats`` / ``run_failure`` documents.  Malformed documents (bad
schema version, unknown params fields, unknown workload types) answer
``400`` with the validation error — they never reach a worker.  See
docs/service.md for the full API table and
:mod:`repro.service.client` / ``python -m repro.service`` for the
matching client.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..harness.parallel import RunSpec
from ..params import SimParams
from .farm import RunFarm

__all__ = ["FarmRequestHandler", "make_server", "serve"]

_JOB_RE = re.compile(r"^/api/v1/jobs/([a-z0-9-]+)(/result|/cancel)?$")


class FarmServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the farm it fronts."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], farm: RunFarm,
                 verbose: bool = False) -> None:
        super().__init__(address, FarmRequestHandler)
        self.farm = farm
        self.verbose = verbose


class FarmRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`RunFarm`."""

    server_version = "repro-farm/1"
    protocol_version = "HTTP/1.1"

    @property
    def farm(self) -> RunFarm:
        return self.server.farm  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing ---------------------------------------------------------------

    def _send(self, code: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        doc = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        try:
            if self.path == "/api/v1/health":
                return self._send(200, {"ok": True})
            if self.path == "/api/v1/stats":
                return self._send(200, self.farm.stats())
            m = _JOB_RE.match(self.path)
            if m and m.group(2) in (None, "/result"):
                return self._job_get(m.group(1),
                                     want_result=bool(m.group(2)))
            self._error(404, f"no route {self.path!r}")
        except KeyError as exc:
            self._error(404, f"unknown job {exc.args[0]!r}")
        except ValueError as exc:
            self._error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        try:
            if self.path == "/api/v1/jobs":
                return self._submit_one()
            if self.path == "/api/v1/batch":
                return self._submit_batch()
            if self.path == "/api/v1/sweep":
                return self._submit_sweep()
            m = _JOB_RE.match(self.path)
            if m and m.group(2) == "/cancel":
                return self._send(
                    200, {"job_id": m.group(1),
                          "cancelled": self.farm.cancel(m.group(1))})
            self._error(404, f"no route {self.path!r}")
        except KeyError as exc:
            self._error(404, f"unknown job {exc.args[0]!r}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))

    def _job_get(self, job_id: str, want_result: bool) -> None:
        status = self.farm.status(job_id)
        if not want_result:
            return self._send(200, status)
        if status["state"] in ("queued", "running"):
            return self._send(202, status)  # accepted, come back later
        if "result_kind" not in status:
            # cancelled / untyped executor error: terminal, no record
            return self._send(410, status)
        result = self.farm.result(job_id, timeout=0)
        self._send(200, {"status": status,
                         "result": json.loads(result.to_json())})

    def _submit_one(self) -> None:
        doc = self._read_json()
        spec = RunSpec.from_json(doc.get("spec"))
        job_id = self.farm.submit(spec,
                                  priority=int(doc.get("priority", 0)))
        self._send(201, {"job_id": job_id})

    def _submit_batch(self) -> None:
        doc = self._read_json()
        specs_doc = doc.get("specs")
        if not isinstance(specs_doc, list) or not specs_doc:
            raise ValueError("batch needs a non-empty 'specs' list")
        specs = [RunSpec.from_json(d) for d in specs_doc]
        ids = self.farm.submit_batch(specs,
                                     priority=int(doc.get("priority", 0)))
        self._send(201, {"job_ids": ids})

    def _submit_sweep(self) -> None:
        from ..harness.serde import decode_params, decode_workload

        doc = self._read_json()
        app = doc.get("app")
        values = doc.get("values")
        if not app or not isinstance(values, list) or not values:
            raise ValueError("sweep needs 'app' and a non-empty 'values' "
                             "list")
        base = (decode_params(doc["params"]) if doc.get("params")
                else SimParams())
        ids = self.farm.submit_sweep(
            app, values,
            param=doc.get("param", "num_processors"),
            base_params=base,
            interface=doc.get("interface", "cni"),
            workload=decode_workload(doc.get("workload")),
            priority=int(doc.get("priority", 0)))
        self._send(201, {"job_ids": ids})


def make_server(farm: RunFarm, host: str = "127.0.0.1", port: int = 0,
                verbose: bool = False) -> FarmServer:
    """A bound (not yet serving) farm server; ``port=0`` picks a free
    port (``server.server_address`` has the real one)."""
    return FarmServer((host, port), farm, verbose=verbose)


def serve(farm: RunFarm, host: str = "127.0.0.1", port: int = 8642,
          verbose: bool = True) -> None:
    """Serve ``farm`` until interrupted (the CLI's ``serve`` command)."""
    server = make_server(farm, host, port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        farm.close()
