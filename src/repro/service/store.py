"""The persistent run store: content-addressed results on disk.

This is the service's Message Cache.  The CNI puts a cache of pages in
front of the host-memory DMA because transmit traffic is repetitive;
the run farm puts a cache of *results* in front of the simulator
because request traffic is repetitive (Jain's destination-locality
observation, PAPERS.md): a :class:`~repro.harness.RunSpec` is hashed to
its content digest (:meth:`RunSpec.digest` — everything that determines
the result, nothing that doesn't), and an identical spec submitted
again is answered with the stored, bit-identical
:class:`~repro.engine.RunStats` instead of being re-simulated.

Layout under the store root::

    <root>/index.json                 # versioned LRU index (atomic)
    <root>/objects/<dd>/<digest>.json # one versioned record per result

Records are the ``run_stats`` / ``run_failure`` JSON documents
(:meth:`RunStats.to_json` / :meth:`RunFailure.to_json`) — failures are
first-class cache entries: a spec that deterministically dies with a
typed error is served its :class:`~repro.harness.RunFailure` from cache
exactly like a healthy run is served its stats.

Guarantees:

* **atomic writes** — every file (records and the index) is written to
  a temp name in the same directory and ``os.replace``d into place, so
  a killed process never leaves a torn record;
* **size-capped LRU** — ``capacity_bytes`` bounds the payload bytes;
  inserting past the cap evicts least-recently-*used* records (a hit
  refreshes recency).  The newest record itself is never evicted;
* **versioned** — the index and every record carry a
  ``schema_version``; any unknown version raises :class:`ValueError`
  instead of being misread;
* **thread-safe** — one lock around index mutation; the farm's
  dispatcher and the HTTP front end's request threads share a store.

See docs/service.md for the failure-semantics table and the
``service.store.*`` metric catalog.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Union

from ..engine import RunStats
from ..harness.parallel import RunFailure
from .metrics import (
    m_store_bytes,
    m_store_entries,
    m_store_evictions,
    m_store_hits,
    m_store_misses,
    m_store_puts,
)

__all__ = ["RunStore"]

#: Format version of ``index.json``.
INDEX_SCHEMA_VERSION = 1

StoredResult = Union[RunStats, RunFailure]


def _atomic_write(path: str, text: str) -> int:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace`` (atomic on POSIX); returns the byte count."""
    data = text.encode("utf-8")
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    return len(data)


class RunStore:
    """Digest-keyed persistent cache of run results (LRU, size-capped).

    ``capacity_bytes=None`` (default) means unbounded; the farm's CLI
    exposes it as ``--capacity-mb``.  All mutation updates the
    ``service.store.*`` metrics (docs/service.md).
    """

    def __init__(self, root: str,
                 capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(f"capacity_bytes={capacity_bytes} must be "
                             f">= 1 (or None for unbounded)")
        self.root = root
        self.capacity_bytes = capacity_bytes
        self._lock = threading.RLock()
        #: digest -> record size in bytes; ordered least- to
        #: most-recently used.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        os.makedirs(os.path.join(root, "objects"), exist_ok=True)
        self._load_index()
        self._publish_gauges()

    # -- the index --------------------------------------------------------------

    @property
    def _index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.root, "objects", digest[:2],
                            f"{digest}.json")

    def _load_index(self) -> None:
        try:
            with open(self._index_path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return
        if (not isinstance(doc, dict)
                or doc.get("kind") != "run_store_index"):
            raise ValueError(f"{self._index_path}: not a run_store_index "
                             "document")
        version = doc.get("schema_version")
        if version != INDEX_SCHEMA_VERSION:
            raise ValueError(
                f"{self._index_path}: unsupported schema_version "
                f"{version!r}; this build reads version "
                f"{INDEX_SCHEMA_VERSION}")
        for digest, nbytes in doc.get("entries", []):
            self._index[digest] = int(nbytes)

    def _save_index(self) -> None:
        doc = {
            "kind": "run_store_index",
            "schema_version": INDEX_SCHEMA_VERSION,
            "entries": [[d, n] for d, n in self._index.items()],
        }
        _atomic_write(self._index_path, json.dumps(doc))

    def _publish_gauges(self) -> None:
        m_store_bytes.set(sum(self._index.values()))
        m_store_entries.set(len(self._index))

    # -- cache operations -------------------------------------------------------

    def get(self, digest: str) -> Optional[StoredResult]:
        """The stored result for ``digest``, or None (counts a miss).

        A hit refreshes the record's LRU recency.  A record the index
        promises but the filesystem lost (manual deletion) degrades to
        a miss and is dropped from the index.
        """
        with self._lock:
            if digest not in self._index:
                m_store_misses.inc()
                return None
            try:
                with open(self._object_path(digest)) as fh:
                    doc = json.load(fh)
            except (FileNotFoundError, json.JSONDecodeError):
                del self._index[digest]
                self._save_index()
                self._publish_gauges()
                m_store_misses.inc()
                return None
            self._index.move_to_end(digest)
            self._save_index()
            m_store_hits.inc()
        return self._decode(digest, doc)

    @staticmethod
    def _decode(digest: str, doc: Any) -> StoredResult:
        kind = doc.get("kind") if isinstance(doc, dict) else None
        if kind == "run_stats":
            return RunStats.from_json(doc)
        if kind == "run_failure":
            return RunFailure.from_json(doc)
        raise ValueError(f"store record {digest}: unknown document "
                         f"kind {kind!r}")

    def put(self, digest: str, result: StoredResult) -> None:
        """Store ``result`` under ``digest`` (idempotent), then evict
        least-recently-used records past ``capacity_bytes``."""
        if not isinstance(result, (RunStats, RunFailure)):
            raise ValueError(f"cannot store a {type(result).__name__}; "
                             "expected RunStats or RunFailure")
        text = result.to_json()
        with self._lock:
            path = self._object_path(digest)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            nbytes = _atomic_write(path, text)
            self._index[digest] = nbytes
            self._index.move_to_end(digest)
            m_store_puts.inc()
            self._evict_over_capacity()
            self._save_index()
            self._publish_gauges()

    def _evict_over_capacity(self) -> None:
        if self.capacity_bytes is None:
            return
        while (len(self._index) > 1
               and sum(self._index.values()) > self.capacity_bytes):
            victim, _ = next(iter(self._index.items()))
            del self._index[victim]
            try:
                os.remove(self._object_path(victim))
            except FileNotFoundError:
                pass
            m_store_evictions.inc()

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Payload bytes currently stored (index file excluded)."""
        with self._lock:
            return sum(self._index.values())

    def digests(self) -> Tuple[str, ...]:
        """Stored digests, least- to most-recently used."""
        with self._lock:
            return tuple(self._index)

    def stats(self) -> Dict[str, Any]:
        """Plain-data summary for the ``stats`` endpoints."""
        with self._lock:
            return {
                "root": self.root,
                "entries": len(self._index),
                "bytes": sum(self._index.values()),
                "capacity_bytes": self.capacity_bytes,
            }
