"""HTTP client for the run farm (stdlib ``urllib`` only).

:class:`FarmClient` mirrors the in-process :class:`~repro.service.farm.RunFarm`
job API over the :mod:`repro.service.http` endpoints — same verbs, same
return shapes, with specs encoded to ``run_spec`` documents on the way
out and ``run_stats`` / ``run_failure`` documents decoded back into
:class:`~repro.engine.RunStats` / :class:`~repro.harness.RunFailure` on
the way in.  Server-side errors surface as :class:`FarmError` carrying
the HTTP status and the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from ..engine import RunStats
from ..harness.parallel import RunFailure, RunSpec
from ..params import SimParams

__all__ = ["FarmClient", "FarmError"]

DEFAULT_URL = "http://127.0.0.1:8642"


class FarmError(RuntimeError):
    """A farm request the server rejected (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _spec_doc(spec: Union[RunSpec, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(spec, RunSpec):
        return spec.to_doc()
    if isinstance(spec, dict):
        return spec
    raise ValueError(f"spec must be a RunSpec or a run_spec document, "
                     f"got {type(spec).__name__}")


class FarmClient:
    """Talks the farm's JSON API; one instance per base URL."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 doc: Optional[Dict[str, Any]] = None,
                 ) -> "tuple[int, Dict[str, Any]]":
        body = None if doc is None else json.dumps(doc).encode("utf-8")
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                parsed = json.loads(exc.read().decode("utf-8"))
                message = parsed.get("error") or json.dumps(parsed)
            except Exception:
                message = str(exc.reason)
            raise FarmError(exc.code, message) from None

    # -- the job API ------------------------------------------------------------

    def health(self) -> bool:
        """True when the server answers its health check."""
        return bool(self._request("GET", "/api/v1/health")[1].get("ok"))

    def submit(self, spec: Union[RunSpec, Dict[str, Any]],
               priority: int = 0) -> str:
        """Enqueue one run; returns its job id."""
        _, doc = self._request("POST", "/api/v1/jobs",
                               {"spec": _spec_doc(spec),
                                "priority": priority})
        return doc["job_id"]

    def submit_batch(self, specs: Sequence[Union[RunSpec, Dict[str, Any]]],
                     priority: int = 0) -> List[str]:
        """Enqueue several runs; returns their job ids in order."""
        _, doc = self._request(
            "POST", "/api/v1/batch",
            {"specs": [_spec_doc(s) for s in specs],
             "priority": priority})
        return doc["job_ids"]

    def submit_sweep(self, app: str, values: Sequence[Any],
                     param: str = "num_processors",
                     base_params: Optional[SimParams] = None,
                     interface: str = "cni", workload: Any = None,
                     priority: int = 0) -> List[str]:
        """Enqueue a one-parameter sweep (mirrors
        :meth:`RunFarm.submit_sweep`)."""
        from ..harness.serde import encode_params, encode_workload

        body: Dict[str, Any] = {
            "app": app, "values": list(values), "param": param,
            "interface": interface, "priority": priority,
        }
        if base_params is not None:
            body["params"] = encode_params(base_params)
        if workload is not None:
            body["workload"] = encode_workload(workload)
        _, doc = self._request("POST", "/api/v1/sweep", body)
        return doc["job_ids"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's plain-data status document."""
        return self._request("GET", f"/api/v1/jobs/{job_id}")[1]

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; returns whether it was cancelled."""
        _, doc = self._request("POST", f"/api/v1/jobs/{job_id}/cancel")
        return bool(doc["cancelled"])

    def result(self, job_id: str, timeout: float = 60.0,
               poll_s: float = 0.05) -> Union[RunStats, RunFailure]:
        """Poll the result endpoint until the job resolves; decode the
        stored record.  Raises TimeoutError when ``timeout`` seconds
        pass first and :class:`FarmError` (410, raised straight out of
        the request) for jobs that ended with no record (cancelled /
        untyped executor error)."""
        deadline = time.monotonic() + timeout
        while True:
            code, doc = self._request("GET",
                                      f"/api/v1/jobs/{job_id}/result")
            if code == 200:
                record = doc["result"]
                if record.get("kind") == "run_failure":
                    return RunFailure.from_json(record)
                return RunStats.from_json(record)
            if time.monotonic() >= deadline:
                raise TimeoutError(f"{job_id} still {doc.get('state')} "
                                   f"after {timeout}s")
            time.sleep(poll_s)

    def stats(self) -> Dict[str, Any]:
        """The farm's stats document (queue, store, ``service.*``)."""
        return self._request("GET", "/api/v1/stats")[1]
