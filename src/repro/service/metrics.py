"""The run farm's own ``service.*`` metrics.

One registry per serving process (like the executor's
``harness.pool.*`` registry in :mod:`repro.harness.parallel`),
deliberately separate from the per-run simulation registries that ship
back inside :class:`~repro.engine.RunStats` — the farm observes the
*traffic* it serves, the runs observe the clusters they simulate.  The
full catalog is machine-checked against docs/service.md by
``tools/check_docs_metrics.py``.

All metrics are registered at import, so a snapshot always carries the
complete name set (zeros included) — what the catalog check and the
``stats`` endpoints rely on.
"""

from __future__ import annotations

from typing import Any, Dict

from ..obs import MetricsRegistry

__all__ = ["SERVICE_METRICS", "service_metrics"]

#: The serving process's ``service.*`` registry.
SERVICE_METRICS = MetricsRegistry()

_scope = SERVICE_METRICS.scope("service")
_jobs = _scope.scope("jobs")

#: Jobs accepted by ``submit``/``submit_batch``/``submit_sweep``.
m_submitted = _jobs.counter("submitted")
#: Jobs resolved with a :class:`~repro.engine.RunStats` (fresh or cached).
m_completed = _jobs.counter("completed")
#: Jobs resolved with a :class:`~repro.harness.RunFailure` (typed
#: simulation error) or an untyped executor error.
m_failed = _jobs.counter("failed")
#: Queued jobs cancelled before execution.
m_cancelled = _jobs.counter("cancelled")
#: Jobs that piggybacked on another job's identical in-flight execution.
m_coalesced = _jobs.counter("coalesced")

_store = _scope.scope("store")
#: Lookups answered from the persistent run store.
m_store_hits = _store.counter("hits")
#: Lookups that fell through to the simulator.
m_store_misses = _store.counter("misses")
#: Records written (stats + failure records).
m_store_puts = _store.counter("puts")
#: Records evicted by the size-capped LRU policy.
m_store_evictions = _store.counter("evictions")
#: Current store payload size in bytes (index excluded).
m_store_bytes = _store.gauge("bytes")
#: Current record count.
m_store_entries = _store.gauge("entries")

_queue = _scope.scope("queue")
#: Current priority-queue depth (jobs accepted, not yet dispatched).
m_queue_depth = _queue.gauge("depth")

#: Dispatch cycles executed by the farm (one batch of popped jobs each).
m_batches = _scope.scope("batches").counter("dispatched")


def service_metrics() -> Dict[str, Any]:
    """Flat snapshot of the ``service.*`` registry."""
    return SERVICE_METRICS.snapshot()
