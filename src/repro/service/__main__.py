"""``python -m repro.service`` — the run-farm command line.

Subcommands::

    serve   start a farm + HTTP front end over a persistent store
    submit  enqueue one run (flags or a run_spec JSON document)
    status  print a job's status document
    fetch   block for a job's result and print the stored record
    stats   print the farm's stats document

Everything but ``serve`` talks to a running server (``--url``, default
``http://127.0.0.1:8642``).  Parse and server errors print to stderr
and exit non-zero.  See docs/service.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .client import DEFAULT_URL, FarmClient, FarmError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="digest-cached simulation run farm")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the farm HTTP server")
    serve.add_argument("--store", required=True,
                       help="persistent run-store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--workers", type=int, default=1,
                       help="run_map jobs= fan-out per dispatch batch")
    serve.add_argument("--capacity-mb", type=float, default=None,
                       help="store size cap in MiB (default unbounded)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")

    def client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=DEFAULT_URL,
                       help=f"server base URL (default {DEFAULT_URL})")

    submit = sub.add_parser("submit", help="enqueue one run")
    client_args(submit)
    submit.add_argument("--app", help="registered workload name "
                        "(jacobi, water, ...)")
    submit.add_argument("--interface", default="cni",
                        choices=("cni", "standard"))
    submit.add_argument("--nprocs", type=int, default=4)
    submit.add_argument("--topology", default=None, metavar="SPEC",
                        help="fabric topology (banyan:32, fattree:k=4, "
                        "torus:4x4x4[:adaptive]; default: the paper's "
                        "single banyan switch)")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--spec-json", metavar="FILE",
                        help="submit this run_spec document instead of "
                        "building one from flags ('-' reads stdin)")
    submit.add_argument("--wait", action="store_true",
                        help="block for the result and print it")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait timeout in seconds")

    status = sub.add_parser("status", help="print a job's status")
    client_args(status)
    status.add_argument("job_id")

    fetch = sub.add_parser("fetch", help="block for a job's result")
    client_args(fetch)
    fetch.add_argument("job_id")
    fetch.add_argument("--timeout", type=float, default=300.0)
    fetch.add_argument("--out", metavar="FILE",
                       help="write the record here instead of stdout")

    stats = sub.add_parser("stats", help="print the farm's stats")
    client_args(stats)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from .farm import RunFarm
    from .http import serve

    capacity = (None if args.capacity_mb is None
                else int(args.capacity_mb * 1024 * 1024))
    farm = RunFarm(store=args.store, workers=args.workers,
                   capacity_bytes=capacity)
    print(f"repro.service: serving store {args.store!r} on "
          f"http://{args.host}:{args.port} "
          f"(workers={args.workers})", flush=True)
    serve(farm, host=args.host, port=args.port, verbose=not args.quiet)
    return 0


def _load_spec(args: argparse.Namespace):
    from ..harness.parallel import RunSpec
    from ..params import SimParams

    if args.spec_json:
        text = (sys.stdin.read() if args.spec_json == "-"
                else open(args.spec_json).read())
        return RunSpec.from_json(text)
    if not args.app:
        raise ValueError("submit needs --app or --spec-json")
    params = SimParams().replace(num_processors=args.nprocs,
                                 topology=args.topology)
    return RunSpec(args.app, params, args.interface)


def _print_record(record, out: Optional[str]) -> None:
    text = record.to_json(indent=2)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)


def _cmd_submit(args: argparse.Namespace) -> int:
    client = FarmClient(args.url)
    job_id = client.submit(_load_spec(args), priority=args.priority)
    print(job_id)
    if args.wait:
        _print_record(client.result(job_id, timeout=args.timeout), None)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    print(json.dumps(FarmClient(args.url).status(args.job_id), indent=2))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    record = FarmClient(args.url).result(args.job_id,
                                         timeout=args.timeout)
    _print_record(record, args.out)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    print(json.dumps(FarmClient(args.url).stats(), indent=2))
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "stats": _cmd_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (FarmError, ValueError, TimeoutError, OSError) as exc:
        print(f"repro.service: error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
