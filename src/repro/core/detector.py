"""NIC-resident heartbeat failure detector (crash-stop suspicion).

Each network interface runs a small liveness protocol entirely on the
board: every ``SimParams.heartbeat_interval_ns`` it queues one
zero-payload :class:`~repro.network.PacketKind.HEARTBEAT` cell to every
peer and checks how long each peer has been silent.  A peer unheard for
more than ``interval * heartbeat_miss_budget`` becomes *suspected*; any
later packet from it (heartbeat or data — all inbound traffic counts as
liveness) clears the suspicion.  This is the NIC-based detector design
point of the offload literature: like the reliable transport's acks,
heartbeats are generated and consumed by the NI processors and never
reach the host.

The detector is inert when ``heartbeat_interval_ns`` is 0 (the
default): no traffic, no timers, no digest perturbation.  When armed it
uses a single cancellable timer per tick — never a perpetually-pending
process — so cluster teardown can cancel it and let the event queue
drain (the quiescence watchdog depends on that).

The messaging runtime consults :meth:`FailureDetector.is_suspected` to
turn a deadline expiry into the sharper :class:`~repro.runtime.PeerDead`;
collective engines name suspected participants in their aborts; the
application queries it through ``Context.suspected_peers()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..network import Packet, PacketKind

__all__ = ["FailureDetector"]


class FailureDetector:
    """Per-NIC liveness tracking over heartbeat cells.

    Metrics live under ``node<i>.nic.detector.*`` and are registered
    unconditionally (a detector-off run keeps them at zero), so the
    machine-checked catalog stays truthful on every configuration.
    """

    def __init__(self, sim, params, nic, num_nodes: int, metrics):
        self.sim = sim
        self.params = params
        self.nic = nic
        self.node_id = nic.node_id
        self.num_nodes = num_nodes
        self.interval_ns = params.heartbeat_interval_ns
        self.miss_budget = params.heartbeat_miss_budget
        #: Armed at all: the interval is set and there is someone to watch.
        self.enabled = self.interval_ns > 0 and num_nodes > 1
        self.last_heard: Dict[int, float] = {}
        self.suspected: Set[int] = set()
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.suspicions = 0
        self.suspicion_clears = 0
        self._tick_handle = None
        self._running = False
        metrics.counter("heartbeats_sent", fn=lambda: self.heartbeats_sent)
        metrics.counter("heartbeats_received",
                        fn=lambda: self.heartbeats_received)
        metrics.counter("suspicions", fn=lambda: self.suspicions)
        metrics.counter("suspicion_clears",
                        fn=lambda: self.suspicion_clears)
        metrics.gauge("suspected_peers", fn=lambda: len(self.suspected))

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic tick (idempotent; no-op when disabled).

        Every peer starts with a full grace period from now — a slow
        starter is not instantly suspect."""
        if not self.enabled or self._running:
            return
        self._running = True
        now = self.sim.now
        for peer in range(self.num_nodes):
            if peer != self.node_id:
                self.last_heard.setdefault(peer, now)
        self._tick_handle = self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        """Cancel the pending tick so the event queue can drain."""
        self._running = False
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # -- liveness inputs ------------------------------------------------------
    def on_heartbeat(self, src: int) -> None:
        """A peer's liveness cell arrived (consumed on the board)."""
        self.heartbeats_received += 1
        self.note_alive(src)

    def note_alive(self, src: int) -> None:
        """Any inbound packet from ``src`` proves it alive right now."""
        if not self.enabled or src == self.node_id:
            return
        self.last_heard[src] = self.sim.now
        if src in self.suspected:
            self.suspected.discard(src)
            self.suspicion_clears += 1

    # -- queries --------------------------------------------------------------
    def is_suspected(self, node: Optional[int]) -> bool:
        """True when ``node`` is currently suspected crashed."""
        return node in self.suspected

    def suspected_peers(self) -> List[int]:
        """Sorted list of currently-suspected peers."""
        return sorted(self.suspected)

    # -- the periodic tick ----------------------------------------------------
    def _tick(self) -> None:
        self._tick_handle = None
        if not self._running:
            return
        now = self.sim.now
        horizon = self.interval_ns * self.miss_budget
        for peer in range(self.num_nodes):
            if peer == self.node_id:
                continue
            silent_ns = now - self.last_heard.get(peer, now)
            if silent_ns > horizon and peer not in self.suspected:
                self.suspected.add(peer)
                self.suspicions += 1
            self.nic.board_send(Packet(
                kind=PacketKind.HEARTBEAT,
                src_node=self.node_id,
                dst_node=peer,
                channel_id=0,
                payload_bytes=0,
                reliable=False,
            ))
            self.heartbeats_sent += 1
        self._tick_handle = self.sim.schedule(self.interval_ns, self._tick)
