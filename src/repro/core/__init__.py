"""The paper's contribution: the CNI board and its baseline.

* :class:`MessageCache` — transmit/receive caching + consistency
  snooping (Section 2.2).
* :class:`DeviceChannel` / :class:`ChannelManager` — Application Device
  Channels (Section 2.1).
* :class:`Pathfinder` — the pattern-based hardware classifier.
* :class:`HandlerRegistry` — Application Interrupt Handlers
  (Section 2.3).
* :class:`CNIInterface` / :class:`StandardInterface` — the two boards
  Section 3 compares.
* :class:`ReliableTransport` / :class:`DeliveryFailed` — NIC-resident
  reliable delivery for lossy fabrics (docs/reliability.md).
"""

from .adc import (
    ChannelError,
    ChannelManager,
    DeviceChannel,
    DualPortedRing,
    ReceiveDescriptor,
    TransmitDescriptor,
)
from .aih import HandlerError, HandlerRegistry
from .detector import FailureDetector
from .cni_nic import AIH_TARGET, CHANNEL_TARGET, CNIInterface, PIO_THRESHOLD_BYTES
from .message_cache import MessageCache
from .nic_base import HostHooks, NetworkInterface
from .pathfinder import Pathfinder, Pattern, PatternElement
from .reliability import DeliveryFailed, ReliableTransport
from .standard_nic import StandardInterface

__all__ = [
    "AIH_TARGET",
    "CHANNEL_TARGET",
    "CNIInterface",
    "ChannelError",
    "ChannelManager",
    "DeliveryFailed",
    "DeviceChannel",
    "DualPortedRing",
    "FailureDetector",
    "HandlerError",
    "HandlerRegistry",
    "HostHooks",
    "MessageCache",
    "NetworkInterface",
    "PIO_THRESHOLD_BYTES",
    "Pathfinder",
    "Pattern",
    "PatternElement",
    "ReceiveDescriptor",
    "ReliableTransport",
    "StandardInterface",
    "TransmitDescriptor",
]
