"""Application Device Channels (Section 2.1).

Part of the board's dual-ported memory is partitioned into triplets of
transmit / receive / free queues.  Opening a connection maps one triplet
into the application's address space; thereafter sends and receives are
plain loads and stores on the shared rings — lock-free, no kernel, no
gang scheduling.  Protection is checked *when a buffer is placed in a
queue*, never per transfer, which is how "verification overhead is ...
eliminated from the send and receive paths".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

from ..engine import Gate, Simulator


class ChannelError(RuntimeError):
    """Protection or capacity violation on a device channel."""


@dataclass
class TransmitDescriptor:
    """What an application writes into its transmit queue."""

    dst_node: int
    vaddr: Optional[int]
    """Virtual address of the transmitted buffer (page-aligned for page
    sends); None for immediate/control payloads."""

    length: int
    handler_key: int = 0
    cacheable: bool = False
    payload: Any = None
    channel_id: int = 1
    completion: Any = None
    """Optional :class:`~repro.engine.Event` the board triggers once the
    descriptor is consumed (payload staged and segmented).  Buffer sends
    use it: the application must not reuse or re-dirty the buffer while
    the board may still be DMAing from it."""

    reliable: bool = True
    """Whether the reliable transport (when enabled) tracks the packet
    built from this descriptor; False opts a send out (best effort)."""

    kind: Any = None
    """Optional :class:`~repro.network.PacketKind` override for the
    packet built from this descriptor.  ``None`` keeps the classic
    inference (DATA, or DSM_PROTOCOL/DSM_PAGE when a handler key is
    set); the collectives subsystem sets COLLECTIVE explicitly."""

    def __post_init__(self):
        if self.length < 0:
            raise ValueError("negative transmit length")


@dataclass
class ReceiveDescriptor:
    """What the board writes into the receive queue on packet arrival."""

    src_node: int
    vaddr: Optional[int]
    length: int
    handler_key: int
    payload: Any = None


class DualPortedRing:
    """A bounded single-producer / single-consumer ring.

    Manipulated by "the atomicity of loads and stores" alone in the real
    board; in the simulation the sequential kernel provides atomicity and
    the ring provides the bounded-queue semantics plus a doorbell for the
    consumer.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self.doorbell = Gate(sim, f"{name}-doorbell")
        self.enqueues = 0
        self.full_rejections = 0
        #: Deepest the ring has ever been (ADC occupancy high-water mark).
        self.depth_hwm = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether a push would be rejected."""
        return len(self._items) >= self.capacity

    def push(self, item: Any) -> None:
        """Producer side; raises :class:`ChannelError` when full."""
        if self.full:
            self.full_rejections += 1
            raise ChannelError(f"ring {self.name} full")
        self._items.append(item)
        self.enqueues += 1
        if len(self._items) > self.depth_hwm:
            self.depth_hwm = len(self._items)
        self.doorbell.notify(item)

    def try_push(self, item: Any) -> bool:
        """Producer side; returns False instead of raising when full."""
        if self.full:
            self.full_rejections += 1
            return False
        self._items.append(item)
        self.enqueues += 1
        if len(self._items) > self.depth_hwm:
            self.depth_hwm = len(self._items)
        self.doorbell.notify(item)
        return True

    def pop(self) -> Optional[Any]:
        """Consumer side; None when empty (the poll primitive)."""
        if self._items:
            return self._items.popleft()
        return None

    def peek(self) -> Optional[Any]:
        """Head item without consuming."""
        return self._items[0] if self._items else None


class DeviceChannel:
    """One transmit/receive/free queue triplet bound to an application."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, owner_app: int,
                 queue_depth: int = 256, channel_id: Optional[int] = None):
        # Connection setup normally assigns the id so that both ends of a
        # connection agree on it (it is the demux key the PATHFINDER
        # matches on the receiving board); tests may let it auto-assign.
        self.channel_id = (channel_id if channel_id is not None
                           else next(DeviceChannel._ids))
        self.owner_app = owner_app
        self.transmit = DualPortedRing(sim, queue_depth, f"tx{self.channel_id}")
        self.receive = DualPortedRing(sim, queue_depth, f"rx{self.channel_id}")
        self.free = DualPortedRing(sim, queue_depth, f"free{self.channel_id}")
        #: Buffer ranges the kernel verified at post time: (base, length).
        self._verified: List[Tuple[int, int]] = []
        self.protection_faults = 0
        #: Receive descriptors the application picked up by polling.
        self.poll_receives = 0

    # -- protection -------------------------------------------------------------
    def grant_buffer(self, base: int, length: int) -> None:
        """Kernel-side: verify and grant a buffer region to this channel.

        This is the connection-setup-time protection check; afterwards
        any address inside a granted region may be queued freely.
        """
        if length <= 0:
            raise ValueError("empty grant")
        self._verified.append((base, length))

    def check_buffer(self, vaddr: int, length: int) -> None:
        """Queue-time protection check (the only one on the data path)."""
        for base, size in self._verified:
            if base <= vaddr and vaddr + length <= base + size:
                return
        self.protection_faults += 1
        raise ChannelError(
            f"channel {self.channel_id}: buffer {vaddr:#x}+{length} not granted"
        )

    # -- application-side operations ------------------------------------------------
    def post_transmit(self, desc: TransmitDescriptor) -> None:
        """Application enqueues a send (user-level stores, no kernel)."""
        if desc.vaddr is not None:
            self.check_buffer(desc.vaddr, desc.length)
        self.transmit.push(desc)

    def post_free_buffer(self, vaddr: int, length: int) -> None:
        """Application donates a receive buffer to the board."""
        self.check_buffer(vaddr, length)
        self.free.push((vaddr, length))

    def poll_receive(self) -> Optional[ReceiveDescriptor]:
        """Application polls its receive queue (CNI hybrid scheme)."""
        desc = self.receive.pop()
        if desc is not None:
            self.poll_receives += 1
        return desc


class ChannelManager:
    """Kernel service: connection setup / teardown (the only kernel role).

    Section 2.1: "the kernel providing connection setup and tear-down
    services"; everything after :meth:`open_channel` bypasses it.
    """

    def __init__(self, sim: Simulator, max_channels: int = 64):
        self.sim = sim
        self.max_channels = max_channels
        self.channels: Dict[int, DeviceChannel] = {}

    def open_channel(self, owner_app: int, queue_depth: int = 256,
                     channel_id: Optional[int] = None) -> DeviceChannel:
        """Allocate a queue triplet and map it into the app's space."""
        if len(self.channels) >= self.max_channels:
            raise ChannelError("out of device channels")
        ch = DeviceChannel(self.sim, owner_app, queue_depth, channel_id)
        if ch.channel_id in self.channels:
            raise ChannelError(f"channel id {ch.channel_id} already open")
        self.channels[ch.channel_id] = ch
        return ch

    def close_channel(self, channel_id: int) -> None:
        """Tear a channel down."""
        if channel_id not in self.channels:
            raise KeyError(f"channel {channel_id} not open")
        del self.channels[channel_id]

    def get(self, channel_id: int) -> DeviceChannel:
        """Look a channel up (board-side demux target)."""
        return self.channels[channel_id]
