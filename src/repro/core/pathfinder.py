"""PATHFINDER: a pattern-based hardware packet classifier.

Model of the classifier of Bailey et al. (OSDI 1994) that the CNI uses to
demultiplex incoming packets to the right Application Device Channel and
to the right Application Interrupt Handler (Section 2.1): "the VCI field
is too coarse-grained to handle multiple protocol actions inside an
application", and software classification on the NI processor suffered
instruction-cache capacity misses on the ATOMIC interface.

The implementation keeps the two properties the paper leans on:

* **Flexible classification programmability** — a pattern is a
  conjunction of masked comparisons over the packet header; patterns
  sharing a prefix of comparisons share DAG cells, which is how the
  hardware composes many patterns cheaply.
* **Fragment handling** — only a packet's first fragment carries the
  header; on a first-fragment match the classifier installs a
  ``(vci, packet_id)`` entry in a fragment table so later fragments map
  to the same target without a header.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs import MetricsScope, private_scope


@dataclass(frozen=True)
class PatternElement:
    """One masked comparison: ``header[offset:offset+len] & mask == value``."""

    offset: int
    length: int
    mask: int
    value: int

    def __post_init__(self):
        if self.offset < 0 or self.length <= 0 or self.length > 8:
            raise ValueError("element must compare 1..8 bytes at offset >= 0")
        limit = (1 << (8 * self.length)) - 1
        if not 0 <= self.mask <= limit:
            raise ValueError(f"mask {self.mask:#x} exceeds {self.length} bytes")
        if not 0 <= self.value <= limit:
            raise ValueError(f"value {self.value:#x} exceeds {self.length} bytes")
        if self.value & ~self.mask:
            raise ValueError("value has bits outside the mask; can never match")

    def matches(self, header: bytes) -> bool:
        """Evaluate the comparison against ``header``."""
        end = self.offset + self.length
        if end > len(header):
            return False
        word = int.from_bytes(header[self.offset:end], "big")
        return (word & self.mask) == self.value

    def key(self) -> Tuple[int, int, int]:
        """Cell-sharing key: same field, same mask."""
        return (self.offset, self.length, self.mask)


@dataclass
class Pattern:
    """A conjunction of elements mapping to a classification target."""

    elements: Tuple[PatternElement, ...]
    target: Any
    pattern_id: int = field(default_factory=itertools.count(1).__next__)

    def __post_init__(self):
        if not self.elements:
            raise ValueError("a pattern needs at least one element")

    def matches(self, header: bytes) -> bool:
        """Naive conjunction evaluation (the DAG must agree with this)."""
        return all(e.matches(header) for e in self.elements)


class _Cell:
    """A DAG cell: one ``(offset, length, mask)`` comparison with
    value-keyed out-edges, shared by all patterns with this prefix.

    An out-edge leads to a *list* of alternative next cells because two
    patterns can agree on a prefix value and then compare different
    header fields."""

    __slots__ = ("key", "edges", "accept")

    def __init__(self, key: Tuple[int, int, int]):
        self.key = key
        self.edges: Dict[int, List["_Cell"]] = {}
        #: value -> (pattern_id, target) accepted when the pattern ends here
        self.accept: Dict[int, Tuple[int, Any]] = {}


class Pathfinder:
    """The classifier: programmable pattern DAG + fragment table."""

    def __init__(self, max_patterns: int = 1024,
                 metrics: Optional[MetricsScope] = None):
        if max_patterns <= 0:
            raise ValueError("max_patterns must be positive")
        self.max_patterns = max_patterns
        self._root: List[_Cell] = []  # alternative first cells
        self._patterns: Dict[int, Pattern] = {}
        self._fragment_table: Dict[Tuple[int, int], Any] = {}
        #: Memoized DAG walks: header bytes -> winning (pattern_id,
        #: target) or None on a miss.  Valid only for the current
        #: pattern set — install/remove clear it.  Bounded so a stream
        #: of unique headers (e.g. randomized tests) cannot grow it
        #: without limit.
        self._classify_cache: Dict[bytes, Optional[Tuple[int, Any]]] = {}
        self._classify_cache_max = 4096
        self.classifications = 0
        self.matches = 0
        self.fragment_hits = 0
        self.misses = 0
        m = metrics if metrics is not None else private_scope()
        m.counter("classifications", fn=lambda: self.classifications)
        m.counter("matches", fn=lambda: self.matches)
        m.counter("fragment_hits", fn=lambda: self.fragment_hits)
        m.counter("misses", fn=lambda: self.misses)
        m.gauge("patterns_installed", fn=lambda: self.pattern_count)
        m.gauge("fragment_table_size", fn=lambda: self.fragment_table_size)

    # -- programming ---------------------------------------------------------
    def install(self, pattern: Pattern) -> int:
        """Program a pattern into the DAG; returns its id.

        Patterns are totally ordered by installation (earlier wins on
        ambiguity), mirroring priority registers in the hardware.
        """
        if len(self._patterns) >= self.max_patterns:
            raise RuntimeError("PATHFINDER pattern memory exhausted")
        self._classify_cache.clear()
        cells = self._root
        last_index = len(pattern.elements) - 1
        for i, elem in enumerate(pattern.elements):
            cell = self._find_or_add_cell(cells, elem.key())
            if i == last_index:
                if elem.value in cell.accept:
                    raise ValueError(
                        "an identical pattern is already installed"
                    )
                cell.accept[elem.value] = (pattern.pattern_id, pattern.target)
            else:
                cells = cell.edges.setdefault(elem.value, [])
        self._patterns[pattern.pattern_id] = pattern
        return pattern.pattern_id

    def _find_or_add_cell(
        self, cells: List[_Cell], key: Tuple[int, int, int]
    ) -> _Cell:
        for c in cells:
            if c.key == key:
                return c
        c = _Cell(key)
        cells.append(c)
        return c

    def remove(self, pattern_id: int) -> None:
        """Remove a pattern (connection teardown).

        The DAG is rebuilt from the surviving patterns; teardown is off
        the critical path so simplicity beats cleverness here.
        """
        if pattern_id not in self._patterns:
            raise KeyError(f"pattern {pattern_id} not installed")
        self._classify_cache.clear()
        survivors = [p for pid, p in self._patterns.items() if pid != pattern_id]
        self._root = []
        self._patterns = {}
        for p in sorted(survivors, key=lambda p: p.pattern_id):
            self.install(p)

    @property
    def pattern_count(self) -> int:
        """Installed patterns."""
        return len(self._patterns)

    # -- classification -------------------------------------------------------
    def classify(self, header: bytes) -> Optional[Any]:
        """Classify a first fragment / whole packet by its header.

        Returns the target of the first installed pattern that matches,
        or None (packet dropped / kicked to the slow path).

        Repeated headers against an unchanged pattern set — the steady
        state of any connection — skip the DAG walk via the memo table.
        The per-classification counters advance exactly as if the walk
        had run, so metrics (and run digests) cannot tell the two
        apart.
        """
        self.classifications += 1
        cache = self._classify_cache
        if header in cache:
            best = cache[header]
            if best is None:
                self.misses += 1
                return None
            self.matches += 1
            return best[1]
        best: Optional[Tuple[int, Any]] = None
        # Walk the DAG; collect accepts; earliest-installed pattern wins.
        frontier = list(self._root)
        while frontier:
            next_frontier: List[_Cell] = []
            for cell in frontier:
                off, length, mask = cell.key
                end = off + length
                if end > len(header):
                    continue
                word = int.from_bytes(header[off:end], "big") & mask
                hit = cell.accept.get(word)
                if hit is not None and (best is None or hit[0] < best[0]):
                    best = hit
                next_frontier.extend(cell.edges.get(word, ()))
            frontier = next_frontier
        if len(cache) >= self._classify_cache_max:
            cache.clear()
        cache[bytes(header)] = best
        if best is None:
            self.misses += 1
            return None
        self.matches += 1
        return best[1]

    def note_fragmented_packet(self, vci: int, packet_id: int, target: Any) -> None:
        """Record a classified first fragment so later fragments route."""
        self._fragment_table[(vci, packet_id)] = target

    def classify_fragment(self, vci: int, packet_id: int) -> Optional[Any]:
        """Route a non-first fragment via the fragment table."""
        target = self._fragment_table.get((vci, packet_id))
        if target is not None:
            self.fragment_hits += 1
        else:
            self.misses += 1
        return target

    def end_of_packet(self, vci: int, packet_id: int) -> None:
        """Retire a fragment-table entry once the packet completes."""
        self._fragment_table.pop((vci, packet_id), None)

    @property
    def fragment_table_size(self) -> int:
        """Live fragment-table entries."""
        return len(self._fragment_table)
