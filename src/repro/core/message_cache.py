"""The Message Cache (Section 2.2).

The adaptor board keeps page-sized *cached buffers* that mirror host
memory pages, so that

* a page transmitted repeatedly is DMAed from host memory only once
  (**transmit caching**),
* a page received earlier can later be forwarded to another node without
  a host-memory DMA (**receive caching** — "potentially reduces the cost
  of page migration in shared memory applications"), and
* CPU stores are absorbed by **consistency snooping**: the board watches
  the memory bus, reverse-translates each write target through the RTLB,
  and patches the cached buffer, keeping it consistent.

Buffers are host-page-sized and managed in *approximate LRU* order — we
implement a second-chance clock, the canonical approximate-LRU, matching
the paper's wording.  The mapping from host virtual page to buffer lives
in the **buffer map**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine import Counters
from ..memory import BoardTLB
from ..obs import MetricsScope, private_scope
from ..params import SimParams


@dataclass
class _Buffer:
    """One cached buffer slot on the board."""

    index: int
    vpage: int = -1
    valid: bool = False
    referenced: bool = False  # clock (second-chance) bit


class MessageCache:
    """Buffer map + cached buffers + snoop logic for one board."""

    def __init__(self, params: SimParams, tlb: BoardTLB,
                 counters: Optional[Counters] = None,
                 metrics: Optional[MetricsScope] = None):
        self.params = params
        self.tlb = tlb
        self.counters = counters if counters is not None else Counters()
        n = params.message_cache_buffers
        self._buffers: List[_Buffer] = [_Buffer(i) for i in range(n)]
        self._map: Dict[int, _Buffer] = {}  # the buffer map: vpage -> buffer
        self._clock_hand = 0
        self.lookups = 0
        self.hits = 0
        self.snoop_updates = 0
        self.snoop_aborts = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        m = metrics if metrics is not None else private_scope()
        m.counter("hits", fn=lambda: self.hits)
        m.counter("misses", fn=lambda: self.lookups - self.hits)
        m.counter("insertions", fn=lambda: self.insertions)
        m.counter("evictions", fn=lambda: self.evictions)
        m.counter("invalidations", fn=lambda: self.invalidations)
        m.counter("snoop_updates", fn=lambda: self.snoop_updates)
        m.counter("snoop_aborts", fn=lambda: self.snoop_aborts)
        m.gauge("occupancy", fn=lambda: self.occupancy)
        m.gauge("capacity", fn=lambda: self.capacity)

    # -- capacity ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of page buffers the board holds."""
        return len(self._buffers)

    @property
    def occupancy(self) -> int:
        """Valid buffers currently mapped."""
        return len(self._map)

    def cached_pages(self) -> List[int]:
        """The virtual pages currently cached (diagnostics, tests)."""
        return sorted(self._map)

    # -- lookups ---------------------------------------------------------------
    def lookup_transmit(self, vpage: int) -> bool:
        """Transmit-path buffer-map probe (the paper's hit-ratio metric).

        A hit means the transmit processor sends straight from board
        memory, skipping the host DMA.
        """
        self.counters.inc("mc_page_lookups")
        self.lookups += 1
        buf = self._map.get(vpage)
        if buf is not None and buf.valid:
            buf.referenced = True
            self.counters.inc("mc_page_hits")
            self.hits += 1
            return True
        return False

    def contains(self, vpage: int) -> bool:
        """Non-statistical probe (does not count toward the hit ratio)."""
        buf = self._map.get(vpage)
        return buf is not None and buf.valid

    # -- insertion / eviction -----------------------------------------------------
    def insert(self, vpage: int) -> None:
        """Bind ``vpage`` to a buffer (transmit or receive caching).

        No-op when the page is already cached (the copy was just
        refreshed) or when the cache has no buffers (ablation).  Evicts
        the clock victim on capacity conflict.
        """
        if self.capacity == 0:
            return
        buf = self._map.get(vpage)
        if buf is not None:
            buf.valid = True
            buf.referenced = True
            return
        buf = self._find_victim()
        if buf.valid:
            del self._map[buf.vpage]
            self.evictions += 1
        buf.vpage = vpage
        buf.valid = True
        # The reference bit starts clear: a page earns its second chance
        # by being *used* (transmit hit), not by merely arriving.
        buf.referenced = False
        self._map[vpage] = buf
        self.insertions += 1

    def _find_victim(self) -> _Buffer:
        """Second-chance clock sweep (approximate LRU, Section 2.2)."""
        n = self.capacity
        for _ in range(2 * n + 1):
            buf = self._buffers[self._clock_hand]
            self._clock_hand = (self._clock_hand + 1) % n
            if not buf.valid:
                return buf
            if buf.referenced:
                buf.referenced = False
            else:
                return buf
        return self._buffers[self._clock_hand]  # pragma: no cover

    def invalidate(self, vpage: int) -> bool:
        """Drop the cached copy of ``vpage`` (DSM invalidation, unmap).

        Returns whether a buffer was dropped.
        """
        buf = self._map.pop(vpage, None)
        if buf is None:
            return False
        buf.valid = False
        buf.vpage = -1
        buf.referenced = False
        self.invalidations += 1
        return True

    # -- snooping -------------------------------------------------------------
    def snoop(self, frames: np.ndarray, offsets_ignored: bool = True) -> int:
        """Consistency snooping of CPU write traffic (Section 2.2).

        ``frames`` are the physical page frames of write targets seen on
        the bus.  Each is reverse-translated through the RTLB; writes to
        pages without a cached buffer abort; writes to cached pages patch
        the buffer (we track validity, not bytes — the authoritative data
        lives in the DSM page store).  Returns the number of absorbed
        writes.

        With snooping disabled (ablation), the board cannot absorb the
        write, so the cached copy becomes stale and is invalidated
        instead — see :meth:`snoop_disabled_writeback`.
        """
        absorbed = 0
        for frame in np.unique(frames):
            vpage = self.tlb.rtlb_p2v(int(frame))
            if vpage is None:
                self.snoop_aborts += 1
                continue
            buf = self._map.get(vpage)
            if buf is None or not buf.valid:
                self.snoop_aborts += 1
                continue
            absorbed += 1
            self.snoop_updates += 1
        return absorbed

    def snoop_disabled_writeback(self, frames: np.ndarray) -> int:
        """Ablation path: CPU writes reach memory unobserved, so any
        cached copy of the written pages is now stale and must be
        invalidated.  Returns the number of invalidations."""
        dropped = 0
        for frame in np.unique(frames):
            vpage = self.tlb.rtlb_p2v(int(frame))
            if vpage is not None and self.invalidate(vpage):
                dropped += 1
        return dropped

    # -- reporting ---------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """Page-granular transmit hit ratio (buffer-map probes only).

        The paper's headline "network cache hit ratio" is per *message
        transmission* and is maintained by the NIC (board-resident
        sources count as hits); this property is the narrower buffer-map
        view used for diagnostics."""
        return self.counters.ratio("mc_page_hits", "mc_page_lookups")
