"""NIC-resident reliable transport for the ADC send path.

The paper's fabric is loss-free, so the CNI itself ships no end-to-end
recovery; the related NIC-offload work (NIC-based collective protocols
over Quadrics/Myrinet, RDMA transports over InfiniBand) layers reliable
delivery on the network interface processor, and that is the design
point modelled here: sequence numbers, acks, retransmission timers and
duplicate suppression all live on the 33 MHz NI processor, never
interrupting the host.

Sender side (:meth:`ReliableTransport.on_transmit`): the first
transmission of a tracked packet assigns it a per-connection sequence
number and arms a timeout; each timeout re-enqueues the *same packet
object* on the NIC transmit queue (so a CNI retransmit of an unmodified
buffer hits the Message Cache — the paper's transmit-caching win — and
pays no host re-DMA) and backs the timer off exponentially.  After
``reliab_max_attempts`` transmissions the transport raises
:class:`DeliveryFailed`, which propagates out of ``Simulator.run()`` as
a clean error instead of a silent deadlock.

Receiver side (:meth:`on_receive`): per-connection cumulative
``next_seq`` plus a resequencing buffer delivers exactly-once, in-order;
duplicates are dropped (and re-acked by the NIC, since their ack may be
the thing that was lost).

See docs/reliability.md for the full state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network import Packet, PacketKind
from ..obs import MetricsScope, private_scope
from ..params import SimParams

__all__ = ["DeliveryFailed", "ReliableTransport"]


class DeliveryFailed(RuntimeError):
    """A packet exhausted its retry budget without an acknowledgement.

    Raised on the simulated timer, so it surfaces from ``Cluster.run()``
    with the failing connection attached instead of hanging the run.
    """

    def __init__(self, packet: Packet, attempts: int):
        self.packet = packet
        self.attempts = attempts
        super().__init__(
            f"delivery failed: {packet.kind.name} packet "
            f"node{packet.src_node}->node{packet.dst_node} "
            f"chan={packet.channel_id} seq={packet.rel_seq} "
            f"unacked after {attempts} attempts"
        )


@dataclass
class _PendingSend:
    """Sender-side state of one unacknowledged packet."""

    packet: Packet
    attempts: int = 1
    timer: Optional[object] = None  # EventHandle of the armed timeout
    acked: bool = False


@dataclass
class _RxStream:
    """Receiver-side state of one (src_node, channel) connection."""

    next_seq: int = 0
    buffer: Dict[int, Packet] = field(default_factory=dict)


class ReliableTransport:
    """Per-NIC reliable delivery engine (see module docstring).

    Instantiated unconditionally by every NIC so its counters always
    exist; with ``params.reliable_transport`` off every hook is a cheap
    no-op and the wire behaviour is bit-identical to the seed model.
    """

    def __init__(self, sim, params: SimParams, nic,
                 metrics: Optional[MetricsScope] = None):
        self.sim = sim
        self.params = params
        self.nic = nic
        self.enabled = params.reliable_transport
        #: Fail-stopped: tracks() nothing, timers never re-arm.
        self.dead = False
        #: Optional last-chance hook consulted when the retry budget is
        #: exhausted: ``sink(packet, attempts) -> bool``; True means the
        #: caller took ownership of recovery and no DeliveryFailed is
        #: raised (the messaging runtime's bounded eager-retry policy).
        self._failure_sink = None
        m = metrics if metrics is not None else private_scope()
        self.retransmits = 0
        self.timeouts = 0
        self.dup_drops = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.reorder_buffered = 0
        self.delivery_failures = 0
        m.counter("retransmits", fn=lambda: self.retransmits)
        m.counter("timeouts", fn=lambda: self.timeouts)
        m.counter("dup_drops", fn=lambda: self.dup_drops)
        m.counter("acks_sent", fn=lambda: self.acks_sent)
        m.counter("acks_received", fn=lambda: self.acks_received)
        m.counter("reorder_buffered", fn=lambda: self.reorder_buffered)
        m.counter("delivery_failures", fn=lambda: self.delivery_failures)
        self._g_outstanding = m.gauge("outstanding_hwm")
        #: next sequence number per (dst_node, channel_id)
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: unacked sends keyed (dst_node, channel_id, seq)
        self._pending: Dict[Tuple[int, int, int], _PendingSend] = {}
        #: receive streams keyed (src_node, channel_id)
        self._streams: Dict[Tuple[int, int], _RxStream] = {}

    # -- predicates -----------------------------------------------------------
    def tracks(self, packet: Packet) -> bool:
        """Whether this packet participates in the reliable protocol."""
        return (self.enabled and not self.dead and packet.reliable
                and packet.kind is not PacketKind.ACK)

    def set_failure_sink(self, sink) -> None:
        """Attach the budget-exhaustion hook (see ``_failure_sink``)."""
        self._failure_sink = sink

    def fail_stop(self) -> None:
        """Crash-stop this endpoint: cancel every armed timer and stop
        tracking — a dead node neither retransmits nor raises
        :class:`DeliveryFailed` for traffic it will never ack."""
        self.dead = True
        for entry in self._pending.values():
            entry.acked = True
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None
        self._pending.clear()

    def outstanding(self) -> int:
        """Currently unacknowledged sends."""
        return len(self._pending)

    # -- sender side ----------------------------------------------------------
    def on_transmit(self, packet: Packet) -> None:
        """Called by the NIC for every packet leaving the transmit
        processor; assigns a sequence number and arms the timer on the
        first transmission, re-arms it on retransmissions."""
        if not self.tracks(packet):
            return
        conn = (packet.dst_node, packet.channel_id)
        if packet.rel_seq is None:
            seq = self._next_seq.get(conn, 0)
            self._next_seq[conn] = seq + 1
            packet.rel_seq = seq
            entry = _PendingSend(packet=packet)
            self._pending[conn + (seq,)] = entry
            self._g_outstanding.track_max(len(self._pending))
        else:
            entry = self._pending.get(conn + (packet.rel_seq,))
            if entry is None or entry.acked:
                # Acked while the retransmission sat in the tx queue.
                return
        self._arm_timer(entry)

    def _arm_timer(self, entry: _PendingSend) -> None:
        timeout = (self.params.reliab_timeout_ns
                   * self.params.reliab_backoff ** (entry.attempts - 1))
        entry.timer = self.sim.schedule(timeout,
                                        lambda: self._on_timeout(entry))

    def _on_timeout(self, entry: _PendingSend) -> None:
        if entry.acked or self.dead:
            return
        self.timeouts += 1
        if entry.attempts >= self.params.reliab_max_attempts:
            self.delivery_failures += 1
            if self._failure_sink is not None \
                    and self._failure_sink(entry.packet, entry.attempts):
                # The runtime took over recovery: reset the attempt
                # budget for its re-enqueue (same packet, same rel_seq;
                # on_transmit will find this entry and re-arm).
                entry.attempts = 1
                return
            raise DeliveryFailed(entry.packet, entry.attempts)
        entry.attempts += 1
        self.retransmits += 1
        # Re-enqueue the same packet object: an unmodified buffer hits
        # the Message Cache in _stage_payload (no host re-DMA).
        self.nic.tx_queue.put(entry.packet)

    def on_ack(self, ack: Packet) -> None:
        """Consume an inbound ACK packet (NI-processor work only)."""
        self.acks_received += 1
        entry = self._pending.pop(
            (ack.src_node, ack.channel_id, ack.rel_seq), None)
        if entry is None:
            return  # duplicate ack (a retransmitted data packet's re-ack)
        entry.acked = True
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None

    # -- receiver side --------------------------------------------------------
    def on_receive(self, packet: Packet) -> Tuple[List[Packet], bool]:
        """Sequence an inbound tracked packet.

        Returns ``(ready, accepted)``: the packets now deliverable in
        order, and whether this packet was new (False for a suppressed
        duplicate — the caller still acks it, but must discard it).
        """
        if packet.rel_seq is None or not self.enabled:
            return [packet], True
        stream = self._streams.setdefault(
            (packet.src_node, packet.channel_id), _RxStream())
        seq = packet.rel_seq
        if seq < stream.next_seq or seq in stream.buffer:
            self.dup_drops += 1
            return [], False
        stream.buffer[seq] = packet
        if seq != stream.next_seq:
            self.reorder_buffered += 1
        ready: List[Packet] = []
        while stream.next_seq in stream.buffer:
            ready.append(stream.buffer.pop(stream.next_seq))
            stream.next_seq += 1
        return ready, True

    def make_ack(self, packet: Packet, node_id: int) -> Packet:
        """Build the NI-generated acknowledgement for ``packet``."""
        self.acks_sent += 1
        return Packet(
            kind=PacketKind.ACK,
            src_node=node_id,
            dst_node=packet.src_node,
            channel_id=packet.channel_id,
            payload_bytes=0,
            reliable=False,
            rel_seq=packet.rel_seq,
        )
