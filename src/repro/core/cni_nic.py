"""The CNI board: ADC + PATHFINDER + Message Cache + AIH, composed.

Send path (Section 2.1/2.2): the application stores a descriptor into
its Application Device Channel (a handful of user-level stores, no
kernel); the transmit processor consults the buffer map and transmits
straight from a cached buffer on a hit, DMAing from host memory only on
a miss (inserting the buffer if the cacheable bit is set).

Receive path: the PATHFINDER classifies the packet in hardware; protocol
packets transfer control into the matching Application Interrupt Handler
on the NI processor (no host interrupt); application data is DMAed to
the posted receive buffer and announced on the ADC receive ring, which
the host learns about by *polling* when traffic is expected and by an
interrupt otherwise (the hybrid scheme of Section 2.1).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from ..engine import Category, Counters, Simulator
from ..memory import BoardTLB, MemoryBus
from ..network import Network, Packet, PacketKind
from ..obs import MetricsScope, private_scope
from ..params import SimParams
from .adc import ChannelManager, DeviceChannel, TransmitDescriptor
from .aih import HandlerRegistry
from .message_cache import MessageCache
from .nic_base import HostHooks, NetworkInterface
from .pathfinder import Pathfinder, Pattern, PatternElement

#: Classification targets produced by the patterns we program.
AIH_TARGET = "aih"
CHANNEL_TARGET = "chan"

#: Payloads at or below this many bytes travel inside the descriptor /
#: protocol message itself (programmed I/O), with no DMA staging.
PIO_THRESHOLD_BYTES = 64


class CNIInterface(NetworkInterface):
    """The cluster network interface of the paper."""

    def __init__(
        self,
        sim: Simulator,
        params: SimParams,
        node_id: int,
        network: Network,
        bus: MemoryBus,
        counters: Counters,
        hooks: HostHooks,
        tlb: BoardTLB,
        metrics: Optional[MetricsScope] = None,
    ):
        self.tlb = tlb
        m = metrics if metrics is not None else private_scope()
        self.message_cache = MessageCache(params, tlb, counters,
                                          metrics=m.scope("mcache"))
        self.pathfinder = Pathfinder(metrics=m.scope("pathfinder"))
        self.handlers = HandlerRegistry(params, metrics=m.scope("aih"))
        self.channel_manager = ChannelManager(sim)
        #: per-cell mode: packet_id -> classification of its first cell
        self._frag_targets = {}
        super().__init__(sim, params, node_id, network, bus, counters, hooks,
                         metrics=m)
        adc = m.scope("adc")
        chans = self.channel_manager.channels
        # Aggregates over open channels: worst-case ring depths and the
        # application's successful receive polls.
        adc.gauge("tx_depth_hwm", fn=lambda: max(
            (ch.transmit.depth_hwm for ch in chans.values()), default=0))
        adc.gauge("rx_depth_hwm", fn=lambda: max(
            (ch.receive.depth_hwm for ch in chans.values()), default=0))
        adc.gauge("free_depth_hwm", fn=lambda: max(
            (ch.free.depth_hwm for ch in chans.values()), default=0))
        adc.counter("ring_full_rejections", fn=lambda: sum(
            ch.transmit.full_rejections + ch.receive.full_rejections
            + ch.free.full_rejections for ch in chans.values()))
        adc.counter("protection_faults", fn=lambda: sum(
            ch.protection_faults for ch in chans.values()))
        adc.counter("ring_polls", fn=lambda: sum(
            ch.poll_receives for ch in chans.values()))
        if params.snoop_enabled:
            bus.add_snooper(self._snoop)
        else:
            bus.add_snooper(self._snoop_disabled)

    # -- setup -------------------------------------------------------------------
    def open_channel(self, owner_app: int,
                     channel_id: Optional[int] = None) -> DeviceChannel:
        """Kernel connection setup: allocate a queue triplet and program
        the PATHFINDER to demux DATA packets for it.  ``channel_id`` is
        agreed between the connection's endpoints (the sender stamps it
        into the header; this board's PATHFINDER matches it)."""
        ch = self.channel_manager.open_channel(owner_app, channel_id=channel_id)
        self.pathfinder.install(
            Pattern(
                elements=(
                    # header byte 0: kind == DATA
                    PatternElement(offset=0, length=1, mask=0xFF,
                                   value=int(PacketKind.DATA)),
                    # header bytes 6-7: channel id
                    PatternElement(offset=6, length=2, mask=0xFFFF,
                                   value=ch.channel_id),
                ),
                target=(CHANNEL_TARGET, ch.channel_id),
            )
        )
        return ch

    def install_protocol_handler(self, key: int, fn, code_size: int) -> float:
        """Swap AIH object code in and program its activation patterns.

        Both protocol-control and page-carrying packets with this handler
        key activate the handler (Section 2.3: the PATHFINDER 'programs
        ... to activate the object code on a match of a specified
        pattern').  Returns the swap-in time (connection-setup cost).
        """
        swap_ns = self.handlers.install(key, fn, code_size)
        for kind in (PacketKind.DSM_PROTOCOL, PacketKind.DSM_PAGE):
            self.pathfinder.install(
                Pattern(
                    elements=(
                        PatternElement(offset=0, length=1, mask=0xFF,
                                       value=int(kind)),
                        # header bytes 8-9: handler key
                        PatternElement(offset=8, length=2, mask=0xFFFF,
                                       value=key),
                    ),
                    target=(AIH_TARGET, key),
                )
            )
        return swap_ns

    def install_collective_handler(self, key: int, fn, code_size: int) -> float:
        """Swap in a collective AIH and program its activation pattern.

        Same scheme as :meth:`install_protocol_handler`, but collective
        traffic travels under a single packet kind
        (:data:`~repro.network.PacketKind.COLLECTIVE`), so one pattern
        per handler key suffices.  Returns the swap-in time.
        """
        swap_ns = self.handlers.install(key, fn, code_size)
        self.pathfinder.install(
            Pattern(
                elements=(
                    PatternElement(offset=0, length=1, mask=0xFF,
                                   value=int(PacketKind.COLLECTIVE)),
                    # header bytes 8-9: handler key
                    PatternElement(offset=8, length=2, mask=0xFFFF,
                                   value=key),
                ),
                target=(AIH_TARGET, key),
            )
        )
        return swap_ns

    def install_runtime_handler(self, key: int, fn, code_size: int) -> float:
        """Swap in a messaging-runtime AIH and program its activation
        pattern (docs/runtime.md).  Same single-kind scheme as
        :meth:`install_collective_handler`, under
        :data:`~repro.network.PacketKind.RUNTIME`."""
        swap_ns = self.handlers.install(key, fn, code_size)
        self.pathfinder.install(
            Pattern(
                elements=(
                    PatternElement(offset=0, length=1, mask=0xFF,
                                   value=int(PacketKind.RUNTIME)),
                    # header bytes 8-9: handler key
                    PatternElement(offset=8, length=2, mask=0xFFFF,
                                   value=key),
                ),
                target=(AIH_TARGET, key),
            )
        )
        return swap_ns

    # -- host send path ------------------------------------------------------------
    def host_send_cost_ns(self) -> float:
        """User-level enqueue: a few stores onto the ADC transmit ring."""
        return self.params.cpu_cycles_ns(self.params.adc_enqueue_cycles)

    def host_send(self, desc: TransmitDescriptor) -> Generator:
        """Application-thread send: protection-checked ring enqueue."""
        ch = self.channel_manager.get(desc.channel_id)
        ch.post_transmit(desc)
        yield self.host_send_cost_ns()
        item = ch.transmit.pop()
        assert item is not None
        self.tx_queue.put(item)
        return None

    # -- transmit staging ------------------------------------------------------------
    def _stage_payload(self, packet: Packet) -> Generator:
        """Message-Cache transmit caching (Section 2.2, Transmit Caching).

        Returns True when any host-memory DMA was needed — i.e. the
        message was *not* found on the board.
        """
        if packet.src_vaddr is None or packet.payload_bytes <= PIO_THRESHOLD_BYTES:
            # Immediate data rides in the descriptor (PIO) or the packet
            # was built by board-resident protocol code: on-board source.
            return False
        page_size = self.params.page_size_bytes
        first = packet.src_vaddr // page_size
        last = (packet.src_vaddr + packet.payload_bytes - 1) // page_size
        mc = self.message_cache
        use_mc = self.params.use_message_cache and self.params.transmit_caching
        staged = False
        for vpage in range(first, last + 1):
            if use_mc and mc.lookup_transmit(vpage):
                continue  # transmit straight from the cached buffer
            staged = True
            lo = max(packet.src_vaddr, vpage * page_size)
            hi = min(packet.src_vaddr + packet.payload_bytes,
                     (vpage + 1) * page_size)
            yield from self.bus.dma(hi - lo)
            self.counters.inc("mc_transmit_dma_bytes", hi - lo)
            if use_mc and packet.cacheable:
                mc.insert(vpage)
        return staged

    def _count_transmit(self, staged_from_host: bool) -> None:
        """Section 3's network cache hit ratio, per message transmission:
        a transmission whose bytes were already on the board (cached
        buffer hit, or a board-built protocol message) is a hit; one
        that had to DMA from host memory is a miss."""
        self.counters.inc("mc_transmit_lookups")
        if not staged_from_host:
            self.counters.inc("mc_transmit_hits")

    # -- per-cell fragment handling (per_cell_transport mode) ----------------
    def _on_fragment(self, cell, packet: Packet) -> float:
        """PATHFINDER fragment routing (Section 2.1: 'the ability to
        handle fragmented packets').  The first cell carries the header
        and is classified; the result is remembered in the fragment
        table so later cells route without a header."""
        if packet.kind is PacketKind.ACK:
            # Transport-internal: consumed by the NI before demux, so it
            # never enters the PATHFINDER fragment table.
            return 0.0
        if cell.seq == 0:
            target = self.pathfinder.classify(packet.header_bytes())
            self._frag_targets[packet.packet_id] = target
            if target is not None:
                self.pathfinder.note_fragmented_packet(
                    cell.vci, packet.packet_id, target)
            return self.params.pathfinder_classify_ns
        self.pathfinder.classify_fragment(cell.vci, packet.packet_id)
        return 0.0

    def _end_fragmented(self, cell) -> None:
        self.pathfinder.end_of_packet(cell.vci, cell.packet_id)

    def _discard_receive(self, packet: Packet) -> None:
        """A duplicate never reaches dispatch; drop its staged
        classification so the fragment-target map cannot leak."""
        self._frag_targets.pop(packet.packet_id, None)

    # -- receive dispatch ---------------------------------------------------------------
    def _dispatch_receive(self, packet: Packet) -> Generator:
        if packet.packet_id in self._frag_targets:
            # per-cell mode: the first fragment already classified
            target = self._frag_targets.pop(packet.packet_id)
        else:
            yield self.params.pathfinder_classify_ns
            target = self.pathfinder.classify(packet.header_bytes())
        if target is None:
            self.packets_dropped += 1
            self.counters.inc("nic_classify_misses")
            return
        kind, key = target
        if kind == AIH_TARGET:
            yield from self._run_protocol(packet)
        else:
            yield from self._deliver_data(packet, key)
        return None

    def _run_protocol(self, packet: Packet) -> Generator:
        """Protocol packet: AIH on the board, or host fallback (ablation)."""
        if self.protocol_sink is None:
            self.packets_dropped += 1
            return
        if self.params.use_aih:
            yield self.handlers.dispatch_time_ns()
            # resolve (and count) the control transfer; the handler logic
            # itself is the DSM engine, charged on the NI clock inside.
            self.handlers.dispatch(packet.handler_key)
            yield from self.protocol_sink(packet, True)
        else:
            # No AIH support: the board must interrupt the host and the
            # protocol runs there (the standard NI's receive economics).
            yield self.params.interrupt_latency_ns
            host_ns = self.params.cpu_cycles_ns(self.params.kernel_trap_cycles)
            self.hooks.steal_host_time(
                self.params.interrupt_latency_ns + host_ns,
                Category.SYNCH_OVERHEAD,
            )
            yield host_ns
            yield from self.protocol_sink(packet, False)
        return None

    def _deliver_data(self, packet: Packet, channel_id: int) -> Generator:
        """Application data: DMA into a posted buffer, announce on the
        ADC receive ring; the host polls (or takes a late interrupt)."""
        ch = self.channel_manager.get(channel_id)
        buf = ch.free.pop()
        if buf is None:
            # No posted receive buffer: the board has nowhere to put the
            # data; drop (the messaging library always pre-posts).
            self.packets_dropped += 1
            self.counters.inc("nic_no_free_buffer")
            return
        vaddr, length = buf
        if packet.payload_bytes > length:
            self.packets_dropped += 1
            self.counters.inc("nic_buffer_too_small")
            return
        if packet.payload_bytes > PIO_THRESHOLD_BYTES:
            yield from self.bus.dma(packet.payload_bytes)
        packet.dst_vaddr = vaddr
        desc = self._receive_descriptor(packet)
        ch.receive.push(desc)
        self._deliver(desc, via_interrupt=False)
        return None

    # -- snooping --------------------------------------------------------------------
    def _snoop(self, node_id: int, vlines: np.ndarray) -> None:
        """Consistency snooping: bus write traffic updates cached buffers.

        The bus carries physical addresses; we translate the written
        lines' pages through the host MMU mirror (RTLB) inside the
        Message Cache.  ``vlines`` arrive as virtual line numbers from
        the cache model, so we first recover the physical frames the bus
        would have shown.
        """
        lines_per_page = self.params.page_size_bytes // self.params.cache_line_bytes
        vpages = np.unique(vlines // lines_per_page)
        frames = []
        for vp in vpages:
            try:
                frames.append(self.tlb.host.translate_v2p(int(vp)))
            except KeyError:
                continue
        if frames:
            self.message_cache.snoop(np.asarray(frames, dtype=np.int64))

    def _snoop_disabled(self, node_id: int, vlines: np.ndarray) -> None:
        """Ablation: un-snooped CPU writes leave board copies stale."""
        lines_per_page = self.params.page_size_bytes // self.params.cache_line_bytes
        vpages = np.unique(vlines // lines_per_page)
        frames = []
        for vp in vpages:
            try:
                frames.append(self.tlb.host.translate_v2p(int(vp)))
            except KeyError:
                continue
        if frames:
            self.message_cache.snoop_disabled_writeback(
                np.asarray(frames, dtype=np.int64))

    # -- receive wake economics ----------------------------------------------------------
    def rx_wake_overhead_ns(self) -> float:
        """Host-side cost+latency of noticing an arrival: the polling
        half of the hybrid scheme (the host is expecting traffic while a
        thread is blocked on a remote operation)."""
        return (
            self.params.poll_interval_ns / 2
            + self.params.cpu_cycles_ns(self.params.poll_check_cycles)
        )
