"""Application Interrupt Handlers (Section 2.3).

Applications compile protocol code "in a pointer-safe language
environment ... to relocatable network interface object code"; at
connection setup the code is swapped into a free segment of board memory
and the PATHFINDER is programmed to transfer control to it when a
matching packet arrives.  There is deliberately *no virtual memory* on
the board: the whole handler is resident (a page fault on the NI would be
ruinous at line rate).

In the simulation a handler is a Python callable standing in for the
object code, registered together with its object-code size; the registry
enforces the board's handler-memory capacity and models swap-in cost.
Handlers run on the NI processor's clock inside the receive path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..obs import MetricsScope, private_scope
from ..params import SimParams

#: A handler receives (packet, nic) and returns an optional generator of
#: further NI work (so handlers can send replies through the NIC).
HandlerFn = Callable[..., Any]


class HandlerError(RuntimeError):
    """Installation or dispatch failure in the handler subsystem."""


@dataclass
class _Segment:
    """One occupied region of the board's handler memory."""

    key: int
    size: int
    fn: HandlerFn


class HandlerRegistry:
    """Board-resident Application Interrupt Handler store.

    ``memory_bytes`` is the board memory reserved for handler object code
    (the OSIRIS board carries 1 MB total; the evaluation assumes a single
    parallel application owns the handler region).
    """

    def __init__(self, params: SimParams, memory_bytes: int = 256 * 1024,
                 metrics: Optional[MetricsScope] = None):
        if memory_bytes < 0:
            raise ValueError("negative handler memory")
        self.params = params
        self.memory_bytes = memory_bytes
        self._segments: Dict[int, _Segment] = {}
        self.dispatches = 0
        self.swap_ins = 0
        m = metrics if metrics is not None else private_scope()
        m.counter("dispatches", fn=lambda: self.dispatches)
        m.counter("swap_ins", fn=lambda: self.swap_ins)
        m.gauge("handler_bytes_used", fn=lambda: self.used_bytes)

    # -- installation -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Handler memory currently occupied."""
        return sum(s.size for s in self._segments.values())

    def install(self, key: int, fn: HandlerFn, code_size: int) -> float:
        """Swap handler ``fn`` in under ``key``; returns the swap-in time.

        Swap-in cost models copying the object code over the bus at
        connection setup — off the critical path, but not free.
        Installation fails when the handler region is exhausted or the
        key is taken; re-keying is the application's problem, as it would
        be on the real board.
        """
        if code_size <= 0:
            raise ValueError("handler object code must have positive size")
        if key in self._segments:
            raise HandlerError(f"handler key {key} already installed")
        if self.used_bytes + code_size > self.memory_bytes:
            raise HandlerError(
                f"handler memory exhausted: {self.used_bytes}+{code_size} "
                f"> {self.memory_bytes}"
            )
        self._segments[key] = _Segment(key, code_size, fn)
        self.swap_ins += 1
        return self.params.dma_time_ns(code_size)

    def uninstall(self, key: int) -> None:
        """Free a handler segment (connection teardown)."""
        if key not in self._segments:
            raise HandlerError(f"handler key {key} not installed")
        del self._segments[key]

    def installed(self, key: int) -> bool:
        """Whether ``key`` has resident code."""
        return key in self._segments

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, key: int) -> HandlerFn:
        """Control transfer into handler ``key`` (PATHFINDER-triggered).

        The *cost* (``ni_handler_dispatch_cycles`` plus the handler's own
        work) is charged by the NIC receive loop; this resolves the
        entry point.
        """
        seg = self._segments.get(key)
        if seg is None:
            raise HandlerError(f"no handler installed for key {key}")
        self.dispatches += 1
        return seg.fn

    def dispatch_time_ns(self) -> float:
        """NI time for the control transfer itself."""
        return self.params.ni_cycles_ns(self.params.ni_handler_dispatch_cycles)

    def handler_keys(self) -> List[int]:
        """Installed keys (diagnostics)."""
        return sorted(self._segments)
