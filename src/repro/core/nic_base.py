"""Shared machinery for the two simulated network interfaces.

Both boards (the CNI and the "standard networking interface" baseline of
Section 3) share the physical substrate: a transmit processor draining a
queue of send descriptors, SAR to/from the ATM fabric, and a receive
processor draining the node's inbound cell trains.  They differ in
exactly the three mechanisms the paper adds — Message Cache, Application
Device Channels with PATHFINDER demux, Application Interrupt Handlers —
which live in the subclasses.

Host-side interaction contract (implemented by :class:`HostHooks`, which
the runtime node provides):

* ``steal_host_time(ns, category)`` — asynchronous work executed on the
  host CPU (interrupt handlers, kernel dispatch, host protocol code);
  inflates the application thread's execution and is accounted as synch
  overhead.
* ``deliver_to_app(desc)`` — hand a receive descriptor to the host
  (ADC receive ring for the CNI, kernel queue for the standard NI) and
  wake a waiting thread.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Protocol

from ..engine import Category, Counters, Mailbox, Simulator
from ..memory import MemoryBus
from ..network import CellTrain, Network, Packet, PacketKind, Reassembler, Segmenter
from ..obs import MetricsScope, private_scope
from ..params import SimParams
from .adc import ReceiveDescriptor, TransmitDescriptor
from .detector import FailureDetector
from .reliability import ReliableTransport


class HostHooks(Protocol):
    """What the NIC needs from its host workstation (the runtime node)."""

    def steal_host_time(self, ns: float, category: Category) -> None:
        """Charge asynchronous host-CPU work (see module docstring)."""

    def deliver_to_app(self, desc: ReceiveDescriptor, via_interrupt: bool) -> None:
        """Deposit an inbound descriptor and wake the application."""


#: The DSM engine's packet entry point: returns a generator that performs
#: the protocol action (charging time via its platform adapter).
ProtocolSink = Callable[[Packet], Generator]


class NetworkInterface:
    """Base class: transmit/receive processors and SAR."""

    def __init__(
        self,
        sim: Simulator,
        params: SimParams,
        node_id: int,
        network: Network,
        bus: MemoryBus,
        counters: Counters,
        hooks: HostHooks,
        metrics: Optional[MetricsScope] = None,
    ):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.network = network
        self.bus = bus
        self.counters = counters
        self.hooks = hooks
        self.metrics = metrics if metrics is not None else private_scope()
        self.segmenter = Segmenter(params)
        self.reassembler = Reassembler(params)
        self.tx_queue: Mailbox = Mailbox(sim, f"nic{node_id}-tx")
        self.protocol_sink: Optional[ProtocolSink] = None
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_dropped = 0
        self.payload_bytes_received = 0
        #: NI-resident reliable delivery (no-op when the parameter is
        #: off; always constructed so its counters exist).
        self.reliab = ReliableTransport(sim, params, self,
                                        metrics=self.metrics.scope("reliab"))
        #: NI-resident heartbeat failure detector (inert unless
        #: ``heartbeat_interval_ns`` is set; always constructed so its
        #: counters exist).
        self.detector = FailureDetector(
            sim, params, self, len(network.rx_queues),
            metrics=self.metrics.scope("detector"))
        #: Fail-stopped by a NodeCrash (see on_crash).
        self.crashed = False
        self.metrics.counter("tx.packets_sent", fn=lambda: self.packets_sent)
        self.metrics.counter("rx.packets_received",
                             fn=lambda: self.packets_received)
        self.metrics.counter("rx.packets_dropped",
                             fn=lambda: self.packets_dropped)
        self.metrics.counter("rx.payload_bytes",
                             fn=lambda: self.payload_bytes_received)
        # Hybrid notification split (Section 2.1): descriptors the host
        # will notice by polling vs. arrivals that raised an interrupt.
        self._m_poll_rx = self.metrics.counter("adc.poll_receives")
        self._m_intr_rx = self.metrics.counter("adc.interrupt_receives")
        self._tx_proc = sim.spawn(self._transmit_loop(), f"nic{node_id}-txp")
        self._rx_proc = sim.spawn(self._receive_loop(), f"nic{node_id}-rxp")

    # -- wiring ---------------------------------------------------------------
    def set_protocol_sink(self, sink: ProtocolSink) -> None:
        """Attach the DSM engine's packet handler."""
        self.protocol_sink = sink

    # -- crash-stop -----------------------------------------------------------
    def on_crash(self) -> None:
        """Fail-stop this board (a :class:`~repro.faults.NodeCrash` hit).

        The reliable transport stops arming timers and cancels the
        pending ones (a dead node retransmits nothing), and the failure
        detector's tick is cancelled so the dead node falls silent and
        the event queue can drain.  The fabric drops the board's in-flight
        traffic separately (``ActiveFaultPlan.node_dead``)."""
        self.crashed = True
        self.reliab.fail_stop()
        self.detector.stop()

    # -- host-side send API -----------------------------------------------------
    def host_send(self, desc: TransmitDescriptor) -> Generator:
        """Generator run *by the application thread* to initiate a send.

        Subclasses charge the host-side cost of getting the descriptor to
        the board (user-level ADC stores vs. a kernel trap); the board
        then works asynchronously.  Returns the host-side cost in ns so
        the caller can attribute it.
        """
        raise NotImplementedError

    def host_send_cost_ns(self) -> float:
        """Host cycles burned per send on this interface, in ns."""
        raise NotImplementedError

    # -- board-side send API ------------------------------------------------------
    def board_send(self, packet: Packet) -> None:
        """Queue a board-originated packet (AIH replies) for transmit."""
        self.tx_queue.put(packet)

    # -- transmit processor ----------------------------------------------------------
    def _transmit_loop(self) -> Generator:
        while True:
            item = yield from self.tx_queue.get()
            if isinstance(item, TransmitDescriptor):
                packet = self._packet_from_descriptor(item)
                yield from self._transmit_one(packet)
                if item.completion is not None:
                    item.completion.trigger()
            else:
                yield from self._transmit_one(item)

    def _packet_from_descriptor(self, desc: TransmitDescriptor) -> Packet:
        if desc.kind is not None:
            kind = PacketKind(desc.kind)
        elif desc.handler_key:
            kind = (
                PacketKind.DSM_PAGE
                if desc.vaddr is not None
                else PacketKind.DSM_PROTOCOL
            )
        else:
            kind = PacketKind.DATA
        return Packet(
            kind=kind,
            src_node=self.node_id,
            dst_node=desc.dst_node,
            channel_id=desc.channel_id,
            handler_key=desc.handler_key,
            payload_bytes=desc.length,
            payload=desc.payload,
            cacheable=desc.cacheable,
            src_vaddr=desc.vaddr,
            reliable=desc.reliable,
        )

    def _transmit_one(self, packet: Packet) -> Generator:
        """Common transmit path; data staging is the subclass hook."""
        # Fixed per-packet work on the NI processor (header build, queue
        # manipulation).
        yield self.params.ni_cycles_ns(self.params.ni_packet_overhead_cycles)
        # Stage the payload into board memory (DMA unless cached).  A
        # reliable retransmission re-enters here with the same packet
        # object, so an unmodified buffer hits the Message Cache.
        staged_from_host = yield from self._stage_payload(packet)
        if packet.kind not in (PacketKind.ACK, PacketKind.HEARTBEAT):
            # NI-internal acks and heartbeats stay out of the paper's
            # hit-ratio metric.
            self._count_transmit(bool(staged_from_host))
        # Segmentation: per-cell work on the NI processor.
        if self.params.per_cell_transport and not self.params.unrestricted_cell_size:
            cells = self.segmenter.segment(packet)
            yield self.segmenter.sar_time_ns(len(cells))
            self._note_sent(packet)
            self.network.send_cells(cells, packet)
        else:
            train = self.segmenter.make_train(packet)
            yield self.segmenter.sar_time_ns(train.n_cells)
            self._note_sent(packet)
            self.network.send_train(train)
        return None

    def _note_sent(self, packet: Packet) -> None:
        """Count a departure and hand it to the reliable transport."""
        if packet.kind not in (PacketKind.ACK, PacketKind.HEARTBEAT):
            self.packets_sent += 1
            self.counters.inc("nic_packets_sent")
        self.reliab.on_transmit(packet)

    def _stage_payload(self, packet: Packet) -> Generator:
        """Move the outgoing payload from host memory to the board.

        The baseline always DMAs; the CNI consults the Message Cache.
        Returns True when a host-memory DMA was needed.
        """
        raise NotImplementedError

    def _count_transmit(self, staged_from_host: bool) -> None:
        """Maintain the paper's per-transmission hit-ratio counters.

        Section 3: "the ratio of the number of times a message to be
        transmitted is found in the Message Cache to the number of total
        message transmissions in the CNI ... cluster.  This term does
        not apply to the standard ... cluster" — hence the base class
        counts nothing; the CNI overrides this.
        """

    # -- receive processor --------------------------------------------------------------
    def _receive_loop(self) -> Generator:
        rx = self.network.rx_queues[self.node_id]
        while True:
            train = yield from rx.get()
            if isinstance(train, tuple):
                yield from self._receive_cell(*train)
                continue
            # Reassembly: per-cell work on the NI processor.
            yield self.reassembler.sar_time_ns(train.n_cells)
            yield self.params.ni_cycles_ns(self.params.ni_packet_overhead_cycles)
            packet = self.reassembler.accept_train(train)
            if packet is None:
                self.packets_dropped += 1
                self.counters.inc("nic_packets_dropped")
                continue
            yield from self._accept_packet(packet)

    def _receive_cell(self, cell, packet: Packet) -> Generator:
        """Per-cell transport: reassemble one fragment at a time.

        The classification hook lets the CNI drive its PATHFINDER
        fragment table exactly as the hardware does; the baseline just
        reassembles.
        """
        yield self.reassembler.sar_time_ns(1)
        extra = self._on_fragment(cell, packet)
        if extra:
            yield extra
        done = self.reassembler.accept_cell(cell, packet, now=self.sim.now)
        if done is None:
            if cell.eop:
                # AAL5 integrity failure at end-of-packet: whole packet lost
                self._end_fragmented(cell)
                self.packets_dropped += 1
                self.counters.inc("nic_packets_dropped")
            return None
        self._end_fragmented(cell)
        yield self.params.ni_cycles_ns(self.params.ni_packet_overhead_cycles)
        yield from self._accept_packet(done)
        return None

    def _accept_packet(self, packet: Packet) -> Generator:
        """Reliability layer between reassembly and dispatch: consume
        acks and heartbeats, ack tracked packets, suppress duplicates,
        resequence."""
        if packet.kind is PacketKind.HEARTBEAT:
            # Liveness cells die on the board, like acks.
            self.detector.on_heartbeat(packet.src_node)
            return
        if self.detector.enabled:
            # Any arrival proves the sender alive; the guard keeps the
            # detector-off hot path at one attribute test.
            self.detector.note_alive(packet.src_node)
        if packet.kind is PacketKind.ACK:
            self.reliab.on_ack(packet)
            return
        if self.reliab.tracks(packet) or packet.rel_seq is not None:
            # Ack every arrival — including duplicates, whose earlier
            # ack is exactly what may have been lost.
            self.board_send(self.reliab.make_ack(packet, self.node_id))
        ready, accepted = self.reliab.on_receive(packet)
        if not accepted:
            self._discard_receive(packet)
        for p in ready:
            self.packets_received += 1
            self.counters.inc("nic_packets_received")
            self.payload_bytes_received += p.payload_bytes
            yield from self._dispatch_receive(p)
        return None

    def _discard_receive(self, packet: Packet) -> None:
        """Teardown hook for a duplicate-suppressed packet (subclasses
        drop any per-packet routing state they staged)."""

    def _on_fragment(self, cell, packet: Packet) -> float:
        """Per-fragment classification hook; returns extra NI time."""
        return 0.0

    def _end_fragmented(self, cell) -> None:
        """Fragment bookkeeping teardown hook."""

    def _dispatch_receive(self, packet: Packet) -> Generator:
        """Demultiplex an inbound packet (the paths differ entirely)."""
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------
    def _deliver(self, desc: ReceiveDescriptor, via_interrupt: bool) -> None:
        """Hand a descriptor to the host, counting the notification mode."""
        (self._m_intr_rx if via_interrupt else self._m_poll_rx).inc()
        self.hooks.deliver_to_app(desc, via_interrupt=via_interrupt)

    def _receive_descriptor(self, packet: Packet) -> ReceiveDescriptor:
        return ReceiveDescriptor(
            src_node=packet.src_node,
            vaddr=packet.dst_vaddr,
            length=packet.payload_bytes,
            handler_key=packet.handler_key,
            payload=packet.payload,
        )
