"""The "standard networking interface" baseline of Section 3.

By the paper's definition this is an interface "which does not have
Application Device Channels, Message Caches and support for Application
Interrupt Handlers" — otherwise the hardware and software are identical
to the CNI cluster.  Concretely:

* **Send**: every send traps into the kernel (protection is re-verified
  per operation) and the payload is always DMAed from host memory to the
  board — there is no buffer map to hit.
* **Receive**: the board "rel[ies] purely on host interrupts to transfer
  data and control"; each packet interrupts the host, the kernel
  dispatches it, and classification happens in *software* with the
  instruction-cache behaviour the paper measured on ATOMIC (cold
  classifier code most of the time, since the handler shares the I-cache
  with application protocol code).
* **Protocol**: the DSM consistency protocol runs on the host CPU,
  stealing application cycles for every remote request served.

When ``reliable_transport`` is on, acknowledgements and retransmissions
are still handled by the board firmware (the base-class transport) and
raise no host interrupts — reliability is a NIC property on both
interfaces; only the *data* delivery economics differ.
"""

from __future__ import annotations

from typing import Deque, Generator, Optional

from collections import deque

from ..engine import Category, Counters, Simulator
from ..network import Network, Packet, PacketKind
from ..memory import MemoryBus
from ..obs import MetricsScope
from ..params import SimParams
from .adc import TransmitDescriptor
from .nic_base import HostHooks, NetworkInterface

#: Payloads at or below this threshold are copied by the kernel rather
#: than DMAed (same staging threshold as the CNI, for comparability).
PIO_THRESHOLD_BYTES = 64


class StandardInterface(NetworkInterface):
    """Interrupt-driven, kernel-mediated baseline NIC."""

    def __init__(
        self,
        sim: Simulator,
        params: SimParams,
        node_id: int,
        network: Network,
        bus: MemoryBus,
        counters: Counters,
        hooks: HostHooks,
        metrics: Optional[MetricsScope] = None,
    ):
        super().__init__(sim, params, node_id, network, bus, counters, hooks,
                         metrics=metrics)
        #: Kernel-side receive queue the application reads via syscalls.
        self.kernel_rx: Deque = deque()
        self.interrupts_raised = 0
        self._classifier_warm = False
        self.metrics.counter("rx.host_interrupts",
                             fn=lambda: self.interrupts_raised)

    # -- host send path -----------------------------------------------------------
    def host_send_cost_ns(self) -> float:
        """Kernel trap + per-send verification on the critical path."""
        return self.params.cpu_cycles_ns(self.params.kernel_trap_cycles)

    def host_send(self, desc: TransmitDescriptor) -> Generator:
        """Application-thread send through the kernel."""
        yield self.host_send_cost_ns()
        self.tx_queue.put(desc)
        return None

    # -- transmit staging -----------------------------------------------------------
    def _stage_payload(self, packet: Packet) -> Generator:
        """No Message Cache: buffer sends always DMA from host memory."""
        if packet.src_vaddr is None or packet.payload_bytes <= PIO_THRESHOLD_BYTES:
            return False
        yield from self.bus.dma(packet.payload_bytes)
        return True

    # -- receive dispatch ---------------------------------------------------------------
    def _dispatch_receive(self, packet: Packet) -> Generator:
        """Interrupt the host for every arriving packet (Section 2.1:
        'the OSIRIS boards rely purely on host interrupts')."""
        self.interrupts_raised += 1
        self.counters.inc("host_interrupts")
        yield self.params.interrupt_latency_ns

        # Kernel dispatch + software packet classification on the host.
        classify_cycles = (
            self.params.sw_classify_cycles_hot
            if self._classifier_warm
            else self.params.sw_classify_cycles_cold
        )
        # The paper's ATOMIC measurement: the classifier's I-cache lines
        # are usually displaced by application/protocol code between
        # packets, so back-to-back packets classify warm but isolated
        # arrivals classify cold.  Model: warm only for an immediately
        # following packet, reset once the queue drains.
        self._classifier_warm = len(self.network.rx_queues[self.node_id]) > 0

        host_ns = self.params.cpu_cycles_ns(
            self.params.kernel_trap_cycles + classify_cycles
        )
        self.hooks.steal_host_time(
            self.params.interrupt_latency_ns + host_ns, Category.SYNCH_OVERHEAD
        )
        yield host_ns

        if packet.kind in (PacketKind.DSM_PROTOCOL, PacketKind.DSM_PAGE,
                           PacketKind.COLLECTIVE, PacketKind.RUNTIME):
            if self.protocol_sink is None:
                self.packets_dropped += 1
                return
            # The consistency protocol executes on the host CPU.
            yield from self.protocol_sink(packet, False)
        else:
            yield from self._deliver_data(packet)
        return None

    def _deliver_data(self, packet: Packet) -> Generator:
        """Copy data to the application's buffer via kernel and wake it."""
        if packet.payload_bytes > PIO_THRESHOLD_BYTES:
            yield from self.bus.dma(packet.payload_bytes)
        desc = self._receive_descriptor(packet)
        self.kernel_rx.append(desc)
        self._deliver(desc, via_interrupt=True)
        return None

    # -- receive wake economics ---------------------------------------------------------
    def rx_wake_overhead_ns(self) -> float:
        """Additional cost to hand control back to a blocked application
        thread once the host has processed the packet: return-from-kernel
        and a scheduler pass.  (The interrupt and kernel dispatch were
        already charged per-packet in the receive path.)"""
        return self.params.cpu_cycles_ns(self.params.kernel_trap_cycles)
