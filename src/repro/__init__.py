"""repro — an execution-driven simulation reproduction of
"CNI: A High-Performance Network Interface for Workstation Clusters"
(Sarkar & Bailey, HPDC 1996).

Top-level convenience surface::

    from repro import JacobiConfig, SimParams, run

    stats, grid = run("jacobi", SimParams().replace(num_processors=8),
                      "cni", JacobiConfig(n=128, iterations=10))
    print(stats.network_cache_hit_ratio, stats.elapsed_ns)

``run`` dispatches through the workload registry
(:data:`repro.apps.WORKLOADS`); the stable names and the deprecation
policy are documented in docs/api.md.

Subpackages: :mod:`repro.engine` (discrete-event kernel),
:mod:`repro.memory` (caches/bus/MMU), :mod:`repro.network` (ATM fabric),
:mod:`repro.core` (the CNI and the baseline NIC), :mod:`repro.dsm`
(lazy release consistency), :mod:`repro.runtime` (cluster assembly),
:mod:`repro.apps` (benchmarks), :mod:`repro.faults` (deterministic
fault injection), :mod:`repro.harness` (the paper's tables and
figures).
"""

from .apps import (
    CholeskyConfig,
    HaloConfig,
    JacobiConfig,
    PingPongConfig,
    TransposeConfig,
    WaterConfig,
    run,
)
from .collectives import CollectiveError
from .core import DeliveryFailed
from .engine import Category, Counters, RunStats, TimeAccount
from .faults import FaultPlan
from .network import Topology, TopologyError
from .params import PAPER_PARAMS, SimParams, cni_params, standard_interface_params
from .runtime import Cluster, Context, MessagingService

__version__ = "1.0.0"

__all__ = [
    "Category",
    "CholeskyConfig",
    "Cluster",
    "CollectiveError",
    "Context",
    "Counters",
    "DeliveryFailed",
    "FaultPlan",
    "HaloConfig",
    "JacobiConfig",
    "MessagingService",
    "PAPER_PARAMS",
    "PingPongConfig",
    "RunStats",
    "SimParams",
    "TimeAccount",
    "Topology",
    "TopologyError",
    "TransposeConfig",
    "WaterConfig",
    "cni_params",
    "run",
    "standard_interface_params",
    "__version__",
]
