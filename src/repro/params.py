"""Simulation parameters for the CNI reproduction.

:class:`SimParams` captures Table 1 of the paper plus the handful of
derived or paper-implied constants the evaluation needs (link rate, ATM
cell geometry, per-operation software costs).  Everything is expressed in
the unit stated in its docstring; helpers convert to nanoseconds, the
engine's time base.

Two values in the paper's Table 1 are OCR-damaged ("Network Latency 150 s",
"Interrupt Latency 40 ns"); DESIGN.md section 2 explains why they are
resolved to 150 ns wire latency and ~10 us interrupt latency.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional


NS_PER_SEC = 1_000_000_000


@dataclass(frozen=True)
class SimParams:
    """All tunable parameters of the simulated cluster.

    The defaults reproduce Table 1 of the paper.  Instances are frozen so
    a configuration can be shared between nodes without defensive copies;
    use :meth:`replace` to derive variants.
    """

    # ------------------------------------------------------------- host CPU
    cpu_freq_hz: float = 166e6
    """CPU clock (Table 1: 166 MHz)."""

    # ---------------------------------------------------------------- caches
    l1_access_cycles: int = 1
    """Primary cache access time, CPU cycles (Table 1: 1 cycle)."""

    l1_size_bytes: int = 32 * 1024
    """Primary cache size (Table 1: 32K unified)."""

    l2_access_cycles: int = 10
    """Secondary cache access time, CPU cycles (Table 1: 10 cycles)."""

    l2_size_bytes: int = 1024 * 1024
    """Secondary cache size (Table 1: 1 MB unified)."""

    cache_line_bytes: int = 32
    """Cache line size (Alpha-era 32-byte blocks; not in Table 1)."""

    # Write-back, direct-mapped organisation is fixed by Table 1 and is
    # structural rather than parametric (see repro.memory.cache).

    # ---------------------------------------------------------------- memory
    memory_latency_cycles: int = 20
    """Main memory latency, CPU cycles (Table 1: 20 cycles)."""

    # ------------------------------------------------------------------- bus
    bus_acquisition_cycles: int = 4
    """Bus acquisition time, bus cycles (Table 1: 4 cycles)."""

    bus_cycles_per_word: int = 2
    """Bus transfer rate, bus cycles per word (Table 1: 2 cycles/word)."""

    bus_freq_hz: float = 25e6
    """Bus clock (Table 1: 25 MHz)."""

    bus_word_bytes: int = 8
    """Bus word width (64-bit Alpha system bus)."""

    # --------------------------------------------------------------- network
    switch_latency_ns: float = 500.0
    """Banyan switch cut-through latency (Table 1: 500 ns)."""

    switch_ports: int = 32
    """32-port banyan-network based ATM switch model."""

    ni_freq_hz: float = 33e6
    """Network (interface) processor clock (Table 1: 33 MHz)."""

    wire_latency_ns: float = 150.0
    """Link propagation latency (Table 1 "Network Latency", see DESIGN.md)."""

    link_rate_bps: float = 622e6
    """STS-12 line rate quoted in Section 2 (622 Mbps)."""

    atm_cell_bytes: int = 53
    """ATM cell size on the wire."""

    atm_payload_bytes: int = 48
    """ATM cell payload."""

    aal5_trailer_bytes: int = 8
    """AAL5 trailer appended to every packet before segmentation."""

    unrestricted_cell_size: bool = False
    """Table 5's "mythical" ATM with unlimited cell size: one cell per
    packet, no segmentation-and-reassembly overhead."""

    per_cell_transport: bool = False
    """Simulate every ATM cell as its own event instead of batching a
    packet's cells into a train.  Exercises the PATHFINDER's fragment
    table exactly as the hardware does (classify the first cell, route
    the rest by table) at the price of ~86x the event count per page —
    meant for microbenchmarks and fidelity tests, not full sweeps."""

    # ------------------------------------------------------------ interrupts
    interrupt_latency_ns: float = 10_000.0
    """Host interrupt delivery + handler entry/exit cost.  Table 1's OCR
    reads "40 ns", which cannot be a full interrupt cost; Figure 14's
    near-coincident curves at zero message size bound it to around ten
    microseconds on a 166 MHz workstation (see DESIGN.md)."""

    # -------------------------------------------------------- Message Cache
    message_cache_bytes: int = 32 * 1024
    """Message Cache capacity on the adaptor board (Table 1: 32 KB)."""

    page_size_bytes: int = 4096
    """Host page size == Message Cache buffer size == DSM page size
    (Section 2.2 fixes the buffer size to the host page size)."""

    # ------------------------------------------- NI processor software costs
    ni_cell_sar_cycles: int = 8
    """NI-processor cycles to segment or reassemble one ATM cell (the
    per-cell cost that makes the 53-byte cell the paper's stated limiting
    factor)."""

    ni_packet_overhead_cycles: int = 60
    """Fixed NI-processor cycles per packet (header build/parse, queue
    manipulation on the board)."""

    ni_handler_dispatch_cycles: int = 40
    """PATHFINDER-triggered transfer of control into an Application
    Interrupt Handler (Section 2.3)."""

    ni_aih_protocol_cycles: int = 220
    """NI-processor cycles for one DSM protocol action executed inside an
    Application Interrupt Handler (lock grant, write-notice merge, ...)."""

    pathfinder_classify_ns: float = 200.0
    """Hardware PATHFINDER classification latency per packet (the OSDI'94
    design classifies at line rate; a fraction of a cell time)."""

    sw_classify_cycles_hot: int = 60
    """Host/NI cycles for software classification when the classifier code
    is resident in the instruction cache (standard NI path)."""

    sw_classify_cycles_cold: int = 420
    """Software classification with instruction-cache capacity misses, the
    behaviour the paper measured on the ATOMIC interface."""

    # ---------------------------------------------------- host software costs
    kernel_trap_cycles: int = 600
    """CPU cycles for a kernel entry/exit on the standard NI send/receive
    path (system-call trap, argument checks)."""

    host_protocol_cycles: int = 900
    """CPU cycles for one DSM protocol action executed on the host (the
    standard configuration runs the consistency protocol in the kernel /
    user library instead of in an AIH)."""

    adc_enqueue_cycles: int = 30
    """CPU cycles for a user-level lock-free enqueue onto an Application
    Device Channel queue (a handful of loads/stores, Section 2.1)."""

    poll_check_cycles: int = 12
    """CPU cycles for one poll of the receive/free queues."""

    poll_interval_ns: float = 2_000.0
    """Host polling period while expecting traffic (CNI hybrid scheme)."""

    page_fault_handler_cycles: int = 300
    """CPU cycles of generic fault handling before the DSM protocol takes
    over on an access miss."""

    twin_cycles_per_word: float = 1.0
    """CPU cycles per word to copy a page into its twin on the first
    write of an interval (multiple-writer LRC)."""

    notice_create_cycles: int = 40
    """CPU cycles to create one write notice at release time."""

    diff_cycles_per_word: float = 1.5
    """CPU cycles per word to build a diff (twin comparison) when a
    concurrent writer's modifications are requested."""

    full_page_fetch_threshold: float = 0.5
    """On a fault over a stale-but-reconstructible copy, fetch the whole
    page (instead of per-writer diffs) once the pending modified bytes
    reach this fraction of the page — mostly-rewritten pages migrate
    whole (the Message Cache's case), lightly-touched pages move as
    diffs (the concurrent-write-sharing case the paper credits for
    Cholesky)."""

    # --------------------------------------------- reliability + fault model
    reliable_transport: bool = False
    """NIC-resident reliable delivery on the ADC send path: per-connection
    sequence numbers, timeout-driven retransmission with exponential
    backoff, duplicate/reorder suppression and per-packet acks (see
    docs/reliability.md).  Off by default: the paper's fabric is
    loss-free and the protocol's acks would perturb its timings."""

    reliab_timeout_ns: float = 500_000.0
    """Initial retransmission timeout.  Several times the uncontended
    round trip (~60 us each way at Table 1 speeds), so only genuine loss
    — not switch contention — fires the timer."""

    reliab_backoff: float = 2.0
    """Multiplier applied to the timeout after every retransmission of
    the same packet (>= 1)."""

    reliab_max_attempts: int = 10
    """Retry budget per packet: after this many transmissions without an
    ack the transport raises :class:`~repro.core.DeliveryFailed` instead
    of hanging the run."""

    runtime_send_retries: int = 0
    """Eager-send retry rounds in the messaging runtime after the
    reliable transport exhausts its own budget: on ``DeliveryFailed``
    for an eager DATA packet the runtime re-enqueues it up to this many
    times with bounded backoff before letting the failure surface
    (docs/reliability.md).  0 (default) disables the interception."""

    op_deadline_ns: float = 0.0
    """Default deadline for blocking messaging-runtime operations
    (``send_rendezvous``/``remote_read``/``remote_write``/``recv``) and
    collective episodes.  On expiry the operation raises a typed
    :class:`~repro.runtime.RuntimeTimeout` / :class:`~repro.runtime.PeerDead`
    / :class:`~repro.collectives.CollectiveError` instead of hanging.
    0 (default) means no deadline — the seed behaviour."""

    heartbeat_interval_ns: float = 0.0
    """Period of the NIC-resident failure detector's liveness cells.  0
    (default) disables the detector entirely — no heartbeat traffic, no
    timers, bit-identical digests to the pre-detector model.  See
    docs/reliability.md."""

    heartbeat_miss_budget: int = 3
    """Missed-heartbeat budget: a peer silent for more than
    ``heartbeat_interval_ns * heartbeat_miss_budget`` becomes
    *suspected* (crash-stop suspicion; any later packet clears it)."""

    rendezvous_threshold: int = 4096
    """Eager/rendezvous crossover of the messaging runtime
    (docs/runtime.md): sends of at most this many bytes copy through the
    pre-posted free-queue buffers (eager); larger sends do an RTS/CTS
    handshake and stream page-sized chunks into a receiver-allocated
    landing buffer (rendezvous).  The MPICH2-over-InfiniBand design
    point; 0 forces every ``MessagingService.send`` to rendezvous."""

    reassembly_timeout_ns: float = 5_000_000.0
    """Receive-side SAR eviction: a partial packet whose cells stop
    arriving for this long is aborted and counted as dropped (the
    reassembly-map leak fix; per-cell transport mode)."""

    fault_plan: Optional[Any] = None
    """A :class:`repro.faults.FaultPlan` applied by the fabric, or None
    for a loss-free network.  (Typed loosely to keep ``repro.params``
    import-cycle-free; validated structurally.)"""

    # ------------------------------------------------------------ collectives
    collectives: Optional[str] = None
    """Collective-operations engine: ``"nic"`` (AIH-resident gather and
    release on the NI processor, zero host interrupts; requires a CNI
    with ``use_aih``), ``"host"`` (host-CPU protocol steps, the paper's
    baseline), or None to follow the platform — NIC-resident on a CNI
    with AIH, host-based otherwise.  See docs/collectives.md."""

    # --------------------------------------------------------------- cluster
    topology: Optional[str] = None
    """Fabric topology spec (``repro.network.spec`` grammar):
    ``banyan:32`` a single banyan switch, ``fattree:k=4`` a three-level
    fat-tree of banyan elements, ``torus:4x4x4[:adaptive]`` an
    APEnet+-style torus with dimension-order or minimal-adaptive routing
    (docs/network.md).  None (default) is the paper's machine — a
    ``switch_ports``-port banyan with the exact legacy timing and *no*
    ``net.*`` metric scope, which keeps every pre-topology run's
    ``RunStats`` digest bit-identical.  Any explicit spec (including
    ``banyan:32``) routes through the topology layer and registers the
    ``net.*`` catalog."""

    num_processors: int = 8
    """Workstations in the cluster (one application thread per node)."""

    dsm_address_space_pages: int = 8192
    """Pages of the processor address space reserved for DSM (Section 3:
    a fixed portion of the address space, approximate-LRU recycled)."""

    # ------------------------------------------------------------- NIC flags
    use_message_cache: bool = True
    """CNI feature: transmit/receive caching + snooping."""

    use_adc: bool = True
    """CNI feature: Application Device Channels (kernel bypass)."""

    use_aih: bool = True
    """CNI feature: protocol handlers on the NI processor."""

    snoop_enabled: bool = True
    """CNI feature: consistency snooping on the memory bus (ablation knob;
    with snooping off, a CPU write permanently invalidates the cached
    board copy of the page)."""

    transmit_caching: bool = True
    """Ablation knob: cache pages on the transmit path."""

    receive_caching: bool = True
    """Ablation knob: cache pages on the receive path."""

    # ------------------------------------------------------------- derived --
    @property
    def cpu_cycle_ns(self) -> float:
        """Duration of one CPU cycle in nanoseconds."""
        return NS_PER_SEC / self.cpu_freq_hz

    @property
    def bus_cycle_ns(self) -> float:
        """Duration of one bus cycle in nanoseconds."""
        return NS_PER_SEC / self.bus_freq_hz

    @property
    def ni_cycle_ns(self) -> float:
        """Duration of one NI-processor cycle in nanoseconds."""
        return NS_PER_SEC / self.ni_freq_hz

    @property
    def cell_wire_time_ns(self) -> float:
        """Serialization time of one ATM cell at the line rate."""
        return self.atm_cell_bytes * 8 * NS_PER_SEC / self.link_rate_bps

    @property
    def words_per_page(self) -> int:
        """Bus words in one page."""
        return self.page_size_bytes // self.bus_word_bytes

    @property
    def lines_per_page(self) -> int:
        """Cache lines in one page."""
        return self.page_size_bytes // self.cache_line_bytes

    @property
    def message_cache_buffers(self) -> int:
        """Number of page-sized buffers the Message Cache holds."""
        return self.message_cache_bytes // self.page_size_bytes

    # ------------------------------------------------------------- helpers --
    def cpu_cycles_ns(self, cycles: float) -> float:
        """Convert CPU cycles to nanoseconds."""
        return cycles * self.cpu_cycle_ns

    def bus_cycles_ns(self, cycles: float) -> float:
        """Convert bus cycles to nanoseconds."""
        return cycles * self.bus_cycle_ns

    def ni_cycles_ns(self, cycles: float) -> float:
        """Convert NI-processor cycles to nanoseconds."""
        return cycles * self.ni_cycle_ns

    def dma_time_ns(self, nbytes: int) -> float:
        """Bus time to DMA ``nbytes`` between host memory and the board.

        Acquisition plus the per-word transfer cost of Table 1.  A 4 KB
        page costs 4 + 2*512 = 1028 bus cycles = ~41 us, the quantity the
        Message Cache exists to avoid.
        """
        words = -(-nbytes // self.bus_word_bytes)
        cycles = self.bus_acquisition_cycles + self.bus_cycles_per_word * words
        return self.bus_cycles_ns(cycles)

    def train_wire_time_ns(self, wire_bytes: int) -> float:
        """Line-rate serialization time for one packet's cells.

        In normal mode the packet occupies whole 53-byte cells (payload
        padded into 48-byte chunks); with ``unrestricted_cell_size`` the
        same bytes travel in one jumbo cell with a single 5-byte header
        and the AAL5 trailer, so the padding/header inflation disappears
        but the bytes themselves still take wire time.
        """
        header = self.atm_cell_bytes - self.atm_payload_bytes
        if self.unrestricted_cell_size:
            total = wire_bytes + self.aal5_trailer_bytes + header
            return total * 8 * NS_PER_SEC / self.link_rate_bps
        return self.cells_for_packet(wire_bytes) * self.cell_wire_time_ns

    def cells_for_packet(self, payload_bytes: int) -> int:
        """ATM cells needed for an AAL5 packet of ``payload_bytes``."""
        if self.unrestricted_cell_size:
            return 1
        total = payload_bytes + self.aal5_trailer_bytes
        return max(1, -(-total // self.atm_payload_bytes))

    def replace(self, **changes) -> "SimParams":
        """Return a copy with ``changes`` applied (validated)."""
        new = dataclasses.replace(self, **changes)
        new.validate()
        return new

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent parameter sets."""
        if self.page_size_bytes % self.cache_line_bytes:
            raise ValueError(
                f"page size {self.page_size_bytes} must be a multiple of the "
                f"cache line size {self.cache_line_bytes}"
            )
        if self.page_size_bytes % self.bus_word_bytes:
            raise ValueError("page size must be a multiple of the bus word")
        for name in ("l1_size_bytes", "l2_size_bytes"):
            size = getattr(self, name)
            if size % self.cache_line_bytes:
                raise ValueError(f"{name}={size} not a multiple of line size")
        if self.message_cache_bytes and self.message_cache_bytes < self.page_size_bytes:
            raise ValueError(
                "message cache smaller than one page cannot hold any buffer"
            )
        if self.atm_payload_bytes <= 0 or self.atm_cell_bytes < self.atm_payload_bytes:
            raise ValueError("inconsistent ATM cell geometry")
        if self.num_processors < 1:
            raise ValueError("need at least one processor")
        for name in (
            "cpu_freq_hz",
            "bus_freq_hz",
            "ni_freq_hz",
            "link_rate_bps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("reliab_timeout_ns", "reassembly_timeout_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.rendezvous_threshold < 0:
            raise ValueError("rendezvous_threshold must be >= 0")
        if self.reliab_backoff < 1.0:
            raise ValueError("reliab_backoff must be >= 1 (timeouts never shrink)")
        if self.reliab_max_attempts < 1:
            raise ValueError("reliab_max_attempts must allow at least one send")
        if self.runtime_send_retries < 0:
            raise ValueError("runtime_send_retries must be >= 0")
        if self.op_deadline_ns < 0:
            raise ValueError("op_deadline_ns must be >= 0 (0 = no deadline)")
        if self.heartbeat_interval_ns < 0:
            raise ValueError(
                "heartbeat_interval_ns must be >= 0 (0 = detector off)")
        if self.heartbeat_miss_budget < 1:
            raise ValueError("heartbeat_miss_budget must be >= 1")
        if self.collectives not in (None, "nic", "host"):
            raise ValueError(
                f"collectives={self.collectives!r} must be None, 'nic' "
                "or 'host'")
        if self.topology is not None:
            # Light parser, no fabric/engine imports (repro.network.spec
            # is import-cycle-free by design).
            from .network.spec import parse_topology

            spec = parse_topology(self.topology)
            if spec.capacity < self.num_processors:
                raise ValueError(
                    f"topology {spec.canonical()!r} attaches "
                    f"{spec.capacity} node(s); num_processors="
                    f"{self.num_processors} does not fit")
        if self.fault_plan is not None:
            validate = getattr(self.fault_plan, "validate", None)
            activate = getattr(self.fault_plan, "activate", None)
            if validate is None or activate is None:
                raise ValueError(
                    "fault_plan must be a repro.faults.FaultPlan "
                    "(needs validate() and activate())")
            validate()

    def __post_init__(self):
        self.validate()


#: The configuration of the paper's Table 1.
PAPER_PARAMS = SimParams()


def standard_interface_params(base: SimParams = PAPER_PARAMS) -> SimParams:
    """The paper's "standard networking interface" baseline.

    Section 3: no Application Device Channels, no Message Cache and no
    support for Application Interrupt Handlers; otherwise identical
    hardware and software.
    """
    return base.replace(
        use_message_cache=False,
        use_adc=False,
        use_aih=False,
        snoop_enabled=False,
        transmit_caching=False,
        receive_caching=False,
    )


def cni_params(base: SimParams = PAPER_PARAMS) -> SimParams:
    """The full CNI configuration (all three mechanisms on)."""
    return base.replace(
        use_message_cache=True,
        use_adc=True,
        use_aih=True,
        snoop_enabled=True,
        transmit_caching=True,
        receive_caching=True,
    )
