"""Deterministic fault injection for the simulated cluster.

One composable entry point replaces the ad-hoc loss-injector callables:
build a :class:`FaultPlan` (seed + schedules), hand it to
``SimParams.replace(fault_plan=...)``, and the fabric applies it
reproducibly on both interfaces.  Pair it with
``reliable_transport=True`` so workloads survive the injected damage
(see docs/reliability.md).
"""

from .plan import (
    ActiveFaultPlan,
    CellCorrupt,
    CellLoss,
    FaultPlan,
    LinkDown,
    NicStall,
    NodeCrash,
    NodeSlow,
    parse_fault_plan,
)

__all__ = [
    "ActiveFaultPlan",
    "CellCorrupt",
    "CellLoss",
    "FaultPlan",
    "LinkDown",
    "NicStall",
    "NodeCrash",
    "NodeSlow",
    "parse_fault_plan",
]
