"""Deterministic, seedable fault plans for the simulated fabric.

A :class:`FaultPlan` is an immutable *specification*: a seed plus a
tuple of schedules (:class:`CellLoss`, :class:`CellCorrupt`,
:class:`LinkDown`, :class:`NicStall`).  It travels inside
:class:`~repro.params.SimParams` like any other parameter, so the same
plan drives both interfaces and every experiment reproducibly.

At cluster construction the :class:`~repro.network.Network` calls
:meth:`FaultPlan.activate`, which produces an :class:`ActiveFaultPlan` —
the mutable runtime evaluator holding a fresh ``random.Random(seed)``
and per-destination-node damage counters.  Two activations of the same
plan therefore produce byte-identical fault sequences (the determinism
the chaos suite asserts via :meth:`~repro.engine.RunStats.digest`).

The legacy ``Network.loss_injector`` / ``Network.cell_loss_injector``
callables are kept as deprecated shims that route through the same
evaluator, so old tests keep passing while new code writes plans.

``parse_fault_plan`` accepts the ``--fault-plan`` CLI grammar::

    seed=42;cell_loss(rate=0.01);link_down(src=0,dst=1,from_ns=0,to_ns=1e6)
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "CellLoss",
    "CellCorrupt",
    "LinkDown",
    "NicStall",
    "NodeCrash",
    "NodeSlow",
    "FaultPlan",
    "ActiveFaultPlan",
    "parse_fault_plan",
]


def _check_flow(src: Optional[int], dst: Optional[int]) -> None:
    for name, v in (("src", src), ("dst", dst)):
        if v is not None and v < 0:
            raise ValueError(f"{name}={v} is not a node index")


def _check_window(from_ns: float, to_ns: float) -> None:
    if from_ns < 0 or to_ns <= from_ns:
        raise ValueError(f"empty or negative window [{from_ns}, {to_ns})")


@dataclass(frozen=True)
class CellLoss:
    """Drop cells in transit.

    ``rate`` draws each cell independently from the plan's seeded RNG;
    ``nth`` deterministically drops every nth cell this schedule sees
    (both may be combined; either trigger drops the cell).  ``src`` /
    ``dst`` restrict the schedule to one directed flow; ``from_ns`` /
    ``to_ns`` gate it to a simulated-time window.
    """

    rate: float = 0.0
    nth: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    from_ns: float = 0.0
    to_ns: float = float("inf")

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"cell loss rate {self.rate} outside [0, 1]")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth={self.nth} must be >= 1")
        if self.rate == 0.0 and self.nth is None:
            raise ValueError("CellLoss needs rate > 0 or nth")
        _check_flow(self.src, self.dst)
        _check_window(self.from_ns, self.to_ns)


@dataclass(frozen=True)
class CellCorrupt:
    """Corrupt cell payloads in transit (AAL5 CRC failure at the
    receiver: the cell arrives, the packet dies at end-of-packet).
    Same selectors as :class:`CellLoss`."""

    rate: float = 0.0
    nth: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    from_ns: float = 0.0
    to_ns: float = float("inf")

    __post_init__ = CellLoss.__post_init__


@dataclass(frozen=True)
class LinkDown:
    """A directed link outage: every cell from ``src`` to ``dst`` whose
    delivery falls inside ``[from_ns, to_ns)`` is lost."""

    src: int
    dst: int
    from_ns: float
    to_ns: float

    def __post_init__(self):
        _check_flow(self.src, self.dst)
        _check_window(self.from_ns, self.to_ns)


@dataclass(frozen=True)
class NicStall:
    """The receive side of ``node`` freezes during ``[from_ns, to_ns)``:
    inbound traffic is held (not lost) until the stall ends — the model
    of a wedged receive processor or a board-firmware pause."""

    node: int
    from_ns: float
    to_ns: float

    def __post_init__(self):
        if self.node < 0:
            raise ValueError(f"node={self.node} is not a node index")
        _check_window(self.from_ns, self.to_ns)


@dataclass(frozen=True)
class NodeCrash:
    """``node`` fail-stops at ``at_ns``: its NIC stops sourcing and
    sinking cells (every cell to or from it dies at the fabric, its own
    heartbeats included, so peers detect the silence) and the cluster
    cancels its pending host work.  The crash-stop model — no byzantine
    recovery, no rejoin."""

    node: int
    at_ns: float = 0.0

    def __post_init__(self):
        if self.node < 0:
            raise ValueError(f"node={self.node} is not a node index")
        if self.at_ns < 0:
            raise ValueError(f"at_ns={self.at_ns} must be >= 0")


@dataclass(frozen=True)
class NodeSlow:
    """``node`` runs degraded during ``[from_ns, to_ns)``: traffic it
    sources or sinks takes ``factor`` times the wire time — the model of
    a thermally throttled or paging peer that is alive but late (the
    failure-detector false-positive generator)."""

    node: int
    factor: float = 2.0
    from_ns: float = 0.0
    to_ns: float = float("inf")

    def __post_init__(self):
        if self.node < 0:
            raise ValueError(f"node={self.node} is not a node index")
        if self.factor < 1.0:
            raise ValueError(f"factor={self.factor} must be >= 1")
        _check_window(self.from_ns, self.to_ns)


Schedule = Union[CellLoss, CellCorrupt, LinkDown, NicStall,
                 NodeCrash, NodeSlow]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault specification: seed + schedules.

    Hashable and comparable, so it can ride inside the frozen
    :class:`~repro.params.SimParams` without breaking ``replace()``.
    """

    seed: int = 0
    schedules: Tuple[Schedule, ...] = ()

    def __post_init__(self):
        # Accept any iterable of schedules; store a tuple (hashability).
        object.__setattr__(self, "schedules", tuple(self.schedules))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` on a malformed plan."""
        for s in self.schedules:
            if not isinstance(s, (CellLoss, CellCorrupt, LinkDown, NicStall,
                                  NodeCrash, NodeSlow)):
                raise ValueError(f"not a fault schedule: {s!r}")

    def activate(self, num_nodes: int) -> "ActiveFaultPlan":
        """Create the runtime evaluator (fresh RNG, zeroed counters)."""
        return ActiveFaultPlan(self.schedules, self.seed, num_nodes)

    def describe(self) -> str:
        """One-line form in the ``--fault-plan`` grammar.

        Round-trips: ``parse_fault_plan(plan.describe()) == plan`` for
        every schedule kind (tests/faults/test_plan.py asserts it)."""
        parts = [f"seed={self.seed}"]
        parts.extend(_describe_schedule(s) for s in self.schedules)
        return ";".join(parts)


class ActiveFaultPlan:
    """The mutable runtime evaluator of one :class:`FaultPlan`.

    Owned by a :class:`~repro.network.Network`; evaluated at delivery
    time (after fabric transit, before the destination rx queue), which
    is exactly where the legacy injectors ran.  Damage is counted per
    destination node so the cluster can export ``node<i>.faults.*``.
    """

    def __init__(self, schedules: Tuple[Schedule, ...], seed: int,
                 num_nodes: int):
        self.schedules = tuple(schedules)
        self.rng = random.Random(seed)
        self.cells_dropped: List[int] = [0] * num_nodes
        self.cells_corrupted: List[int] = [0] * num_nodes
        #: per-schedule running cell position, for ``nth`` triggers
        self._positions: Dict[int, int] = {}
        #: node -> earliest NodeCrash time (crash-stop: no rejoin)
        self._crash_at: Dict[int, float] = {}
        for s in schedules:
            if isinstance(s, NodeCrash):
                at = self._crash_at.get(s.node)
                if at is None or s.at_ns < at:
                    self._crash_at[s.node] = s.at_ns
        # Legacy injector shims (Network.loss_injector and friends).
        self._legacy_train: Optional[Callable] = None
        self._legacy_cell: Optional[Callable] = None

    # -- legacy shims ---------------------------------------------------------
    def set_legacy_train_injector(self, fn: Optional[Callable]) -> None:
        """Deprecated: attach a whole-train injector callable.

        Express the loss as a :class:`FaultPlan` schedule instead; the
        shim exists only so pre-plan experiment scripts keep running."""
        warnings.warn(
            "ActiveFaultPlan.set_legacy_train_injector is deprecated; "
            "express the loss as a FaultPlan schedule",
            DeprecationWarning, stacklevel=2)
        self._legacy_train = fn

    def set_legacy_cell_injector(self, fn: Optional[Callable]) -> None:
        """Deprecated: attach a per-cell injector callable.

        Express the loss as a :class:`FaultPlan` schedule instead."""
        warnings.warn(
            "ActiveFaultPlan.set_legacy_cell_injector is deprecated; "
            "express the loss as a FaultPlan schedule",
            DeprecationWarning, stacklevel=2)
        self._legacy_cell = fn

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _matches(s, src: int, dst: int, now: float) -> bool:
        if s.src is not None and s.src != src:
            return False
        if s.dst is not None and s.dst != dst:
            return False
        return s.from_ns <= now < s.to_ns

    def _count_nth(self, idx: int, nth: int, n_cells: int) -> int:
        """Advance schedule ``idx``'s cell position by ``n_cells``;
        return how many of them land on a multiple of ``nth``."""
        pos = self._positions.get(idx, 0)
        hits = (pos + n_cells) // nth - pos // nth
        self._positions[idx] = pos + n_cells
        return hits

    # -- evaluation -----------------------------------------------------------
    def crash_times(self) -> Dict[int, float]:
        """``{node: earliest crash time}`` for every scheduled crash."""
        return dict(self._crash_at)

    def node_dead(self, node: int, now: float) -> bool:
        """True once ``node`` has fail-stopped (its crash time passed)."""
        at = self._crash_at.get(node)
        return at is not None and now >= at

    def slow_factor(self, node: int, now: float) -> float:
        """Wire-time multiplier for traffic touching ``node`` now
        (1.0 when no :class:`NodeSlow` window is active)."""
        factor = 1.0
        for s in self.schedules:
            if isinstance(s, NodeSlow) and s.node == node \
                    and s.from_ns <= now < s.to_ns:
                factor = max(factor, s.factor)
        return factor

    def stall_ns(self, node: int, now: float) -> float:
        """Extra delivery delay for traffic arriving at ``node`` now."""
        extra = 0.0
        for s in self.schedules:
            if isinstance(s, NicStall) and s.node == node \
                    and s.from_ns <= now < s.to_ns:
                extra = max(extra, s.to_ns - now)
        return extra

    def train_faults(self, train, now: float) -> Tuple[int, int]:
        """Damage to a batched cell train delivered at ``now``.

        Returns ``(lost_cells, corrupted_cells)`` and updates the
        per-destination counters.
        """
        p = train.packet
        n = train.n_cells
        if self.node_dead(p.src_node, now) or self.node_dead(p.dst_node, now):
            self.cells_dropped[p.dst_node] += n
            return n, 0
        lost = 0
        corrupted = 0
        for idx, s in enumerate(self.schedules):
            if isinstance(s, LinkDown):
                if s.src == p.src_node and s.dst == p.dst_node \
                        and s.from_ns <= now < s.to_ns:
                    lost = n
            elif isinstance(s, (CellLoss, CellCorrupt)):
                if not self._matches(s, p.src_node, p.dst_node, now):
                    continue
                hits = 0
                if s.nth is not None:
                    hits += self._count_nth(idx, s.nth, n)
                if s.rate > 0.0:
                    hits += sum(1 for _ in range(n)
                                if self.rng.random() < s.rate)
                hits = min(hits, n)
                if isinstance(s, CellLoss):
                    lost += hits
                else:
                    corrupted += hits
        if self._legacy_train is not None:
            lost += int(self._legacy_train(train) or 0)
        lost = min(lost, n)
        corrupted = min(corrupted, n - lost)
        if lost:
            self.cells_dropped[p.dst_node] += lost
        if corrupted:
            self.cells_corrupted[p.dst_node] += corrupted
        return lost, corrupted

    def cell_fate(self, cell, packet, now: float) -> str:
        """Fate of one cell in per-cell transport: ``"ok"``, ``"drop"``
        or ``"corrupt"``."""
        if self.node_dead(packet.src_node, now) \
                or self.node_dead(packet.dst_node, now):
            self.cells_dropped[packet.dst_node] += 1
            return "drop"
        fate = "ok"
        for idx, s in enumerate(self.schedules):
            if isinstance(s, LinkDown):
                if s.src == packet.src_node and s.dst == packet.dst_node \
                        and s.from_ns <= now < s.to_ns:
                    fate = "drop"
            elif isinstance(s, (CellLoss, CellCorrupt)):
                if not self._matches(s, packet.src_node, packet.dst_node, now):
                    continue
                hit = False
                if s.nth is not None:
                    hit = self._count_nth(idx, s.nth, 1) > 0
                if not hit and s.rate > 0.0:
                    hit = self.rng.random() < s.rate
                if hit:
                    if isinstance(s, CellLoss):
                        fate = "drop"
                    elif fate == "ok":
                        fate = "corrupt"
        if fate != "drop" and self._legacy_cell is not None \
                and self._legacy_cell(cell, packet):
            fate = "drop"
        if fate == "drop":
            self.cells_dropped[packet.dst_node] += 1
        elif fate == "corrupt":
            self.cells_corrupted[packet.dst_node] += 1
        return fate


# ------------------------------------------------------------- CLI parser --

_SCHEDULE_TYPES = {
    "cell_loss": CellLoss,
    "cell_corrupt": CellCorrupt,
    "link_down": LinkDown,
    "nic_stall": NicStall,
    "node_crash": NodeCrash,
    "node_slow": NodeSlow,
}

_GRAMMAR_NAMES = {cls: name for name, cls in _SCHEDULE_TYPES.items()}

_INT_KEYS = {"nth", "src", "dst", "node", "seed"}


def _describe_schedule(s: Schedule) -> str:
    """One schedule in the grammar; inverse of ``parse_fault_plan``."""
    pairs = []
    for f in fields(s):
        value = getattr(s, f.name)
        if value is None:
            continue
        pairs.append(f"{f.name}={value!r}")
    return f"{_GRAMMAR_NAMES[type(s)]}({','.join(pairs)})"


def _parse_value(key: str, text: str) -> Union[int, float]:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"fault plan: {key}={text!r} is not a number")
    if key in _INT_KEYS:
        if value != int(value):
            raise ValueError(f"fault plan: {key}={text!r} must be an integer")
        return int(value)
    return value


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the ``--fault-plan`` grammar into a :class:`FaultPlan`.

    Clauses are ``;``-separated: a bare ``seed=N`` sets the seed, and
    ``name(key=value, ...)`` adds one schedule, e.g.::

        seed=42;cell_loss(rate=0.01)
        cell_loss(nth=100,src=0,dst=1);nic_stall(node=2,from_ns=0,to_ns=5e5)
    """
    seed = 0
    schedules: List[Schedule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "(" not in clause:
            key, _, value = clause.partition("=")
            if key.strip() != "seed" or not value:
                raise ValueError(f"fault plan: bad clause {clause!r}")
            seed = int(_parse_value("seed", value.strip()))
            continue
        name, _, rest = clause.partition("(")
        name = name.strip()
        if name not in _SCHEDULE_TYPES:
            raise ValueError(
                f"fault plan: unknown schedule {name!r}; choose from "
                f"{sorted(_SCHEDULE_TYPES)}")
        if not rest.endswith(")"):
            raise ValueError(f"fault plan: unbalanced parentheses in {clause!r}")
        kwargs = {}
        body = rest[:-1].strip()
        if body:
            for pair in body.split(","):
                key, eq, value = pair.partition("=")
                if not eq:
                    raise ValueError(
                        f"fault plan: expected key=value, got {pair!r}")
                kwargs[key.strip()] = _parse_value(key.strip(), value.strip())
        try:
            schedules.append(_SCHEDULE_TYPES[name](**kwargs))
        except TypeError as exc:
            raise ValueError(f"fault plan: {name}: {exc}") from None
    return FaultPlan(seed=seed, schedules=tuple(schedules))
