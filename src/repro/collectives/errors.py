"""Typed errors for the collective-operations subsystem.

Shared with :mod:`repro.dsm.barrier`, whose episode bookkeeping predates
this package: a duplicate arrival or an out-of-range participant is the
same protocol violation whether the gather runs in the DSM barrier
manager or in a collective engine.
"""

from __future__ import annotations

__all__ = ["CollectiveError"]


class CollectiveError(ValueError):
    """A collective-protocol violation (duplicate arrival, unknown
    participant, mismatched operation, unsupported engine/platform
    combination).  Subclasses :class:`ValueError` so callers that
    predate the typed hierarchy keep working."""
