"""Wire messages and PATHFINDER keys for collective operations.

Collective packets travel as :data:`~repro.network.PacketKind.COLLECTIVE`
with the :class:`CollMsgType` in the ``handler_key`` header field —
exactly where the DSM protocol keeps its :class:`~repro.dsm.messages.MsgType`,
so the same masked byte-pattern scheme classifies both (offset 0 selects
the kind, offsets 8-9 select the handler).  The key spaces are disjoint:
DSM owns 0x10-0x41, collectives own 0x50+.

Wire sizes reuse the DSM convention: a fixed
:data:`~repro.dsm.messages.MSG_BASE_BYTES` header plus the operation
payload, which each message carries explicitly (``payload_bytes``) so a
barrier arrival piggybacking consistency intervals prices exactly what
the pre-collectives BarrierArrive did.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from ..dsm.messages import MSG_BASE_BYTES

__all__ = [
    "CollMsgType",
    "CollArrive",
    "CollRelease",
    "COLL_HANDLER_CODE_BYTES",
]

#: AIH object-code footprint of the collective protocol's handlers
#: (gather + release), resident alongside the DSM protocol's 48 KB.
COLL_HANDLER_CODE_BYTES = 16 * 1024


class CollMsgType(IntEnum):
    """Collective protocol messages; the value doubles as the PATHFINDER
    handler key (disjoint from :class:`repro.dsm.messages.MsgType`)."""

    COLL_ARRIVE = 0x50   # participant -> root: join the gather
    COLL_RELEASE = 0x51  # root -> participant: gather complete / payload


@dataclass
class CollArrive:
    """One participant's arrival at a collective episode."""

    coll_id: int
    op: str              # "barrier" | "allreduce" | "reduce" | ...
    seq: int             # per-coll_id episode sequence number
    arriver: int
    reducer: str         # combining function name ("sum" unless reducing)
    value: Any           # contribution (reductions) or attachment (barrier)
    payload_bytes: int   # wire size of ``value``

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + self.payload_bytes


@dataclass
class CollRelease:
    """The root's release: the episode completed; deliver the result."""

    coll_id: int
    op: str
    seq: int
    value: Any           # combined result / broadcast value / attachment
    payload_bytes: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + self.payload_bytes
