"""Collective operations: barrier, broadcast, reduce/all-reduce, multicast.

The subsystem the paper's Application Interrupt Handlers were built for
(Section 2.3): collective protocol steps that complete on the network
interface processor with **zero host interrupts**.  Two interchangeable
engines implement the same root-gathered protocol — NIC-resident
(:class:`NicCollectiveEngine`, AIH handlers dispatched by PATHFINDER)
and host-based (:class:`HostCollectiveEngine`, the baseline) — selected
by ``SimParams.collectives`` / the harness ``--collectives`` flag.

See docs/collectives.md for the API, the engine cost models, the
AIH/PATHFINDER mapping and the ``coll.*`` metrics.
"""

from .bench import CollBenchConfig, collective_kernel, run_collective_bench
from .engine import (
    OPS,
    CollectiveEngine,
    HostCollectiveEngine,
    NicCollectiveEngine,
    make_collective_engine,
    resolve_engine_kind,
)
from .errors import CollectiveError
from .messages import (
    COLL_HANDLER_CODE_BYTES,
    CollArrive,
    CollMsgType,
    CollRelease,
)
from .ops import REDUCERS, combine, reduce_values, value_wire_bytes

__all__ = [
    "OPS",
    "REDUCERS",
    "COLL_HANDLER_CODE_BYTES",
    "CollArrive",
    "CollBenchConfig",
    "CollMsgType",
    "CollRelease",
    "CollectiveEngine",
    "CollectiveError",
    "HostCollectiveEngine",
    "NicCollectiveEngine",
    "collective_kernel",
    "combine",
    "make_collective_engine",
    "reduce_values",
    "resolve_engine_kind",
    "run_collective_bench",
    "value_wire_bytes",
]
