"""Collective-operation engines: NIC-resident (AIH) and host-based.

One engine instance per node (mirroring :class:`repro.dsm.DsmEngine`),
reachable as ``node.coll``.  Both engines speak the same root-gathered
protocol:

* every participant sends a :class:`CollArrive` to the episode root
  (from the application thread: user-level ADC stores on the CNI, a
  kernel trap on the standard interface);
* the root combines contributions as they arrive and, when the episode
  is full, emits board-originated :class:`CollRelease` packets carrying
  the result (barrier: nothing, or a consistency attachment; all-reduce:
  the combined value; reduce: root keeps the result locally).

*Where* the root's gather/combine/release steps run is the engine's
whole difference:

* :class:`NicCollectiveEngine` — the paper's Section 2.3 payoff.
  PATHFINDER classifies COLLECTIVE packets into Application Interrupt
  Handlers (installed via :class:`~repro.core.aih.HandlerRegistry`);
  every protocol step executes on the NI processor's clock
  (``ni_aih_protocol_cycles``) and the host never takes an interrupt on
  the collective path.  Requires a CNI with AIH support.
* :class:`HostCollectiveEngine` — the baseline.  Every collective packet
  costs the host ``host_protocol_cycles`` of stolen time (plus the
  standard interface's per-packet interrupt, charged by the NIC itself);
  on a CNI the board handler is a trampoline that bounces the packet to
  the host (interrupt + kernel trap + host handler).

Consistency protocols attach to barriers through the optional
``consistency`` hook object (duck-typed; see docs/collectives.md):
``coll_on_arrive``, ``coll_gather_complete``, ``coll_make_release``,
``coll_on_release``.  The DSM engine uses these to ship its interval
payloads inside collective packets, which keeps the pre-collectives
barrier economics bit-for-bit identical.

Retransmission rides the PR-2 reliable transport: collective packets are
ordinary reliable traffic, so a lost cell under a fault plan is retried
by the NIC with no engine involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Set, Tuple

from ..engine import Category, SimulationError
from ..network import Packet, PacketKind
from ..params import SimParams
from .errors import CollectiveError
from .messages import CollArrive, CollMsgType, CollRelease
from .ops import REDUCERS, reduce_values, value_wire_bytes

__all__ = [
    "OPS",
    "CollectiveEngine",
    "NicCollectiveEngine",
    "HostCollectiveEngine",
    "resolve_engine_kind",
    "make_collective_engine",
]

#: Operations every engine implements (and the per-op latency metrics).
OPS = ("barrier", "allreduce", "reduce", "broadcast", "multicast")

#: Sentinel a deadline expiry delivers to a waiter (never a real value).
_TIMEOUT = object()


@dataclass
class _Waiter:
    """A blocked application thread's rendezvous."""

    event: Any
    outstanding: int = 1


@dataclass
class _Episode:
    """Root-side state of one in-flight collective."""

    op: str
    reducer: str
    expected: int
    arrived: Set[int] = field(default_factory=set)
    values: Dict[int, Any] = field(default_factory=dict)
    attached: bool = False


class CollectiveEngine:
    """Shared protocol logic; subclasses choose the execution platform."""

    #: True when protocol steps run on the NI processor (no host part).
    resident = False
    #: Engine name as selected by ``SimParams.collectives``.
    name = "?"

    def __init__(self, node, nprocs: int, root: int = 0):
        if not 0 <= root < nprocs:
            raise CollectiveError(
                f"collective root {root} out of range (nprocs={nprocs})")
        self.node = node
        self.sim = node.sim
        self.params: SimParams = node.params
        self.me: int = node.node_id
        self.nprocs = nprocs
        self.root = root
        #: Consistency attachment hooks (set by the cluster to the DSM
        #: engine); only consulted for barrier payloads.
        self.consistency = None

        #: Per-coll_id episode sequence, advanced by every collective
        #: call (SPMD discipline: all nodes issue the same collectives
        #: on a given coll_id in the same order).
        self._next_seq: Dict[int, int] = {}
        #: Root-side gathers in flight, keyed (coll_id, seq).
        self._episodes: Dict[Tuple[int, int], _Episode] = {}
        #: Blocked application threads, keyed (coll_id, seq).
        self._waiters: Dict[Tuple[int, int], _Waiter] = {}
        #: Releases that arrived before their receiver blocked
        #: (broadcast/multicast races), keyed (coll_id, seq).
        self._pending: Dict[Tuple[int, int], Any] = {}
        #: Episodes this node abandoned on a deadline expiry: a late
        #: wake/release for one of these keys is dropped, not an error.
        self._abandoned: Set[Tuple[int, int]] = set()

        scope = node.metrics.scope("coll")
        self._m_ops = scope.counter("ops_completed")
        self._m_arrivals = scope.counter("arrivals")
        self._m_releases = scope.counter("releases")
        self._m_bytes = scope.counter("bytes_sent")
        self._m_nic_steps = scope.counter("nic_steps")
        self._m_host_steps = scope.counter("host_steps")
        self._m_host_intr = scope.counter("host_interrupts")
        self._m_timeouts = scope.counter("timeouts")
        self._op_ns = {op: scope.histogram(f"{op}_ns") for op in OPS}

    # ------------------------------------------------------------- platform --
    def _charge_rx(self, on_board: bool) -> float:
        """Cost of one inbound protocol step on this engine's platform."""
        raise NotImplementedError

    # ------------------------------------------------------- app-side API --
    def barrier(self, coll_id: int = 0, *, payload: Any = None,
                payload_bytes: int = 0) -> Generator:
        """Block until every node arrives.  ``payload``/``payload_bytes``
        carry a consistency attachment (see module docstring)."""
        yield from self._gather_release(
            "barrier", coll_id, "sum", payload, payload_bytes,
            deliver_all=True)
        return None

    def allreduce(self, value: Any, op: str = "sum",
                  coll_id: int = 0) -> Generator:
        """Combine ``value`` across all nodes; everyone gets the result."""
        self._check_reducer(op)
        result = yield from self._gather_release(
            "allreduce", coll_id, op, value, value_wire_bytes(value),
            deliver_all=True)
        return result

    def reduce(self, value: Any, op: str = "sum", root: Optional[int] = None,
               coll_id: int = 0) -> Generator:
        """Combine ``value`` at ``root``; only the root gets the result
        (non-roots return ``None`` without waiting for completion)."""
        self._check_reducer(op)
        result = yield from self._gather_release(
            "reduce", coll_id, op, value, value_wire_bytes(value),
            deliver_all=False, root=root)
        return result

    def broadcast(self, value: Any = None, root: Optional[int] = None,
                  coll_id: int = 0) -> Generator:
        """One-to-all: the root's ``value`` is returned on every node."""
        t0 = self.sim.now
        root = self.root if root is None else self._check_node(root)
        seq = self._bump_seq(coll_id)
        key = (coll_id, seq)
        if self.me == root:
            if value is None:
                raise CollectiveError("broadcast root must supply a value")
            pb = value_wire_bytes(value)
            for node in range(self.nprocs):
                if node == self.me:
                    continue
                msg = CollRelease(coll_id, "broadcast", seq, value, pb)
                yield from self._app_send(
                    node, CollMsgType.COLL_RELEASE, msg)
            result = value
        else:
            result = yield from self._await_release(key, "broadcast")
        self._finish_op("broadcast", t0)
        return result

    def multicast(self, value: Any = None, dests: Sequence[int] = (),
                  src: Optional[int] = None, coll_id: int = 0) -> Generator:
        """One-to-some: ``src`` sends ``value`` to every node in
        ``dests``; destinations block for it, everyone else falls
        through immediately (the episode sequence still advances on all
        nodes, preserving SPMD numbering)."""
        src = self.root if src is None else self._check_node(src)
        targets = sorted({self._check_node(d) for d in dests})
        seq = self._bump_seq(coll_id)
        key = (coll_id, seq)
        t0 = self.sim.now
        if self.me == src:
            if value is None:
                raise CollectiveError("multicast source must supply a value")
            pb = value_wire_bytes(value)
            for node in targets:
                if node == self.me:
                    continue
                msg = CollRelease(coll_id, "multicast", seq, value, pb)
                yield from self._app_send(
                    node, CollMsgType.COLL_RELEASE, msg)
            self._finish_op("multicast", t0)
            return value
        if self.me in targets:
            result = yield from self._await_release(key, "multicast")
            self._finish_op("multicast", t0)
            return result
        return None

    # --------------------------------------------------- gather machinery --
    def _gather_release(self, op: str, coll_id: int, reducer: str,
                        value: Any, payload_bytes: int, deliver_all: bool,
                        root: Optional[int] = None) -> Generator:
        t0 = self.sim.now
        root = self.root if root is None else self._check_node(root)
        seq = self._bump_seq(coll_id)
        key = (coll_id, seq)
        waiting = deliver_all or self.me == root
        w = self._register_wait(key) if waiting else None
        msg = CollArrive(coll_id, op, seq, self.me, reducer, value,
                         payload_bytes)
        if self.me == root:
            # Local arrival: the app thread itself runs the gather step
            # (same shape as the pre-collectives barrier manager).
            cost = self.params.cpu_cycles_ns(self.params.host_protocol_cycles)
            yield cost
            self.node.account_overhead(cost)
            self._arrive_logic(msg, root)
        else:
            yield from self._app_send(root, CollMsgType.COLL_ARRIVE, msg)
        result = None
        if w is not None:
            result = yield from self._wait(w, key, op)
        self._finish_op(op, t0)
        return result

    def _arrive_logic(self, msg: CollArrive, root: Optional[int] = None) -> None:
        """Root-side gather step (runs on this engine's platform)."""
        self._m_arrivals.inc()
        if not 0 <= msg.arriver < self.nprocs:
            raise CollectiveError(
                f"unknown participant {msg.arriver} in collective "
                f"{msg.coll_id} (nprocs={self.nprocs})")
        key = (msg.coll_id, msg.seq)
        ep = self._episodes.get(key)
        if ep is None:
            ep = _Episode(op=msg.op, reducer=msg.reducer,
                          expected=self.nprocs)
            self._episodes[key] = ep
        if msg.op != ep.op or msg.reducer != ep.reducer:
            raise CollectiveError(
                f"collective {key} mixes operations: "
                f"{(ep.op, ep.reducer)} vs {(msg.op, msg.reducer)}")
        if msg.arriver in ep.arrived:
            raise CollectiveError(
                f"node {msg.arriver} arrived twice at collective {key}")
        ep.arrived.add(msg.arriver)
        att = self.consistency if msg.op == "barrier" else None
        if att is not None and msg.value is not None:
            ep.attached = True
            att.coll_on_arrive(msg.coll_id, msg.arriver, msg.value)
        else:
            ep.values[msg.arriver] = msg.value
        if len(ep.arrived) < ep.expected:
            return
        del self._episodes[key]
        self._complete(msg.coll_id, msg.seq, ep)

    def _complete(self, coll_id: int, seq: int, ep: _Episode) -> None:
        """Episode full: combine and release (root side)."""
        key = (coll_id, seq)
        if ep.op == "barrier" and ep.attached:
            att = self.consistency
            att.coll_gather_complete(coll_id)
            for node in range(self.nprocs):
                payload, pb = att.coll_make_release(coll_id, node)
                if node == self.me:
                    att.coll_on_release(coll_id, payload)
                    self._wake(key, None)
                else:
                    self._send_release(
                        node, CollRelease(coll_id, ep.op, seq, payload, pb))
            return
        result = None
        if ep.op in ("allreduce", "reduce"):
            result = reduce_values(ep.reducer, ep.values)
        if ep.op == "reduce":
            self._wake(key, result)  # root waits; non-roots never block
            return
        pb = value_wire_bytes(result)
        for node in range(self.nprocs):
            if node == self.me:
                self._wake(key, result)
            else:
                self._send_release(
                    node, CollRelease(coll_id, ep.op, seq, result, pb))

    def _release_logic(self, msg: CollRelease) -> None:
        """Participant-side release step."""
        key = (msg.coll_id, msg.seq)
        if key in self._abandoned:
            # This node already gave up on the episode (deadline abort);
            # the straggling release must not park forever in _pending.
            self._abandoned.discard(key)
            return
        value = msg.value
        if (msg.op == "barrier" and self.consistency is not None
                and value is not None):
            self.consistency.coll_on_release(msg.coll_id, value)
            value = None
        if key in self._waiters:
            self._wake(key, value)
        else:
            self._pending[key] = value

    # ------------------------------------------------------ packet handler --
    def handle_packet(self, packet: Packet, on_board: bool) -> Generator:
        """Inbound COLLECTIVE packet (the engine's protocol sink)."""
        yield self._charge_rx(on_board)
        mt = CollMsgType(packet.handler_key)
        if mt is CollMsgType.COLL_ARRIVE:
            self._arrive_logic(packet.payload)
        elif mt is CollMsgType.COLL_RELEASE:
            self._release_logic(packet.payload)
        else:  # pragma: no cover - CollMsgType() above already raises
            raise SimulationError(f"unhandled collective message {mt!r}")
        return None

    # ------------------------------------------------------------- helpers --
    def _check_reducer(self, op: str) -> None:
        if op not in REDUCERS:
            raise CollectiveError(
                f"unknown reducer {op!r} (have {sorted(REDUCERS)})")

    def _check_node(self, node: int) -> int:
        if not 0 <= node < self.nprocs:
            raise CollectiveError(
                f"node {node} out of range (nprocs={self.nprocs})")
        return node

    def _bump_seq(self, coll_id: int) -> int:
        seq = self._next_seq.get(coll_id, 0)
        self._next_seq[coll_id] = seq + 1
        return seq

    def _finish_op(self, op: str, t0: float) -> None:
        self._m_ops.inc()
        self._op_ns[op].observe(self.sim.now - t0)

    def _app_send(self, dst: int, msg_type: CollMsgType, body) -> Generator:
        """Send from the application thread (ADC store on the CNI, kernel
        trap on the standard interface) — mirrors DsmEngine._app_send."""
        from ..core.adc import TransmitDescriptor

        desc = TransmitDescriptor(
            dst_node=dst,
            vaddr=None,
            length=body.wire_bytes,
            handler_key=int(msg_type),
            payload=body,
            channel_id=self.node.dsm_channel_id,
            kind=PacketKind.COLLECTIVE,
        )
        t0 = self.sim.now
        yield from self.node.nic.host_send(desc)
        self.node.account_overhead(self.sim.now - t0)
        self._m_bytes.inc(body.wire_bytes)
        return None

    def _send_release(self, dst: int, msg: CollRelease) -> None:
        """Queue a release from the engine (board-originated)."""
        self._m_releases.inc()
        self._m_bytes.inc(msg.wire_bytes)
        self.node.nic.board_send(
            Packet(
                kind=PacketKind.COLLECTIVE,
                src_node=self.me,
                dst_node=dst,
                channel_id=self.node.dsm_channel_id,
                handler_key=int(CollMsgType.COLL_RELEASE),
                payload_bytes=msg.wire_bytes,
                payload=msg,
            )
        )

    # ------------------------------------------------------ wait machinery --
    def _register_wait(self, key, outstanding: int = 1) -> _Waiter:
        if key in self._waiters:
            raise SimulationError(
                f"node {self.me}: duplicate collective wait on {key}")
        w = _Waiter(event=self.sim.event(), outstanding=outstanding)
        self._waiters[key] = w
        return w

    def _wake(self, key, value=None) -> None:
        w = self._waiters.get(key)
        if w is None:
            if key in self._abandoned:
                self._abandoned.discard(key)
                return
            raise SimulationError(
                f"node {self.me}: spurious collective wake of {key}")
        w.outstanding -= 1
        if w.outstanding <= 0:
            del self._waiters[key]
            w.event.trigger(value)

    def _wait(self, w: _Waiter, key=None, op: Optional[str] = None) -> Generator:
        """Block the app thread on ``w``; charge delay + wake overhead.

        Bounded by ``SimParams.op_deadline_ns`` when it is set and the
        episode ``key`` is known: expiry abandons the episode and raises
        :class:`CollectiveError` naming the missing participants (where
        this node is the root and knows them) and any detector-suspected
        peers — the engine never waits forever on a dead node."""
        deadline = self.params.op_deadline_ns
        timer = None
        if deadline > 0 and key is not None:
            timer = self.sim.schedule(deadline, lambda: self._expire(key))
        t0 = self.sim.now
        self.node.app_blocked = True
        try:
            value = yield w.event
        finally:
            self.node.app_blocked = False
        if timer is not None and value is not _TIMEOUT:
            timer.cancel()
        self.node.account_delay(self.sim.now - t0)
        if value is _TIMEOUT:
            self._m_timeouts.inc()
            raise CollectiveError(self._timeout_message(key, op, deadline))
        wake_ns = self.node.nic.rx_wake_overhead_ns()
        yield wake_ns
        self.node.account_overhead(wake_ns)
        return value

    def _expire(self, key) -> None:
        """Deadline fired for ``key``: abandon the episode and wake the
        blocked thread with the timeout sentinel."""
        w = self._waiters.pop(key, None)
        if w is None:
            return
        self._abandoned.add(key)
        w.event.trigger(_TIMEOUT)

    def _timeout_message(self, key, op: Optional[str],
                         deadline: float) -> str:
        ep = self._episodes.get(key)
        opname = op or (ep.op if ep is not None else "collective")
        detail = ""
        if ep is not None:
            absent = sorted(set(range(self.nprocs)) - ep.arrived)
            detail += f"; missing participants {absent}"
        suspects = self.node.nic.detector.suspected_peers()
        if suspects:
            detail += f"; suspected dead: {suspects}"
        return (f"node {self.me}: {opname} episode {key} timed out "
                f"after {deadline:.0f} ns{detail}")

    def _await_release(self, key, op: Optional[str] = None) -> Generator:
        """Wait for a release that may already have been delivered
        (broadcast/multicast destinations can block after the packet
        lands; the handler parks the value in ``_pending``)."""
        if key in self._pending:
            return self._pending.pop(key)
        w = self._register_wait(key)
        value = yield from self._wait(w, key, op)
        return value

    def outstanding_waits(self) -> List[str]:
        """Stuck-report probe: this engine's blocked threads and the
        root-side episodes still gathering (see docs/reliability.md)."""
        out = []
        for coll_id, seq in sorted(self._waiters):
            out.append(f"node{self.me}: collective wait "
                       f"(coll {coll_id}, seq {seq})")
        for (coll_id, seq), ep in sorted(self._episodes.items()):
            absent = sorted(set(range(self.nprocs)) - ep.arrived)
            out.append(f"node{self.me}: {ep.op} episode "
                       f"(coll {coll_id}, seq {seq}) gathering, "
                       f"waiting on {absent}")
        return out


class NicCollectiveEngine(CollectiveEngine):
    """Gather/release runs inside AIH handlers on the NI processor."""

    resident = True
    name = "nic"

    def __init__(self, node, nprocs: int, root: int = 0):
        if node.interface != "cni" or not node.params.use_aih:
            raise CollectiveError(
                "NIC-resident collectives need a CNI with AIH support "
                f"(interface={node.interface!r}, "
                f"use_aih={node.params.use_aih})")
        super().__init__(node, nprocs, root)

    def _charge_rx(self, on_board: bool) -> float:
        if not on_board:
            raise SimulationError(
                f"node {self.me}: NIC-resident collective handler "
                "dispatched on the host")
        self._m_nic_steps.inc()
        return self.params.ni_cycles_ns(self.params.ni_aih_protocol_cycles)


class HostCollectiveEngine(CollectiveEngine):
    """Gather/release runs on the host CPU (the paper's baseline)."""

    name = "host"

    def _charge_rx(self, on_board: bool) -> float:
        p = self.params
        self._m_host_steps.inc()
        self._m_host_intr.inc()
        ns = p.cpu_cycles_ns(p.host_protocol_cycles)
        if on_board:
            # CNI trampoline: the board handler's only job is bouncing
            # the packet to the host (interrupt + kernel dispatch), where
            # the real protocol step then runs.
            ns += p.interrupt_latency_ns + p.cpu_cycles_ns(
                p.kernel_trap_cycles)
        self.node.steal_host_time(ns, Category.SYNCH_OVERHEAD)
        return ns


def resolve_engine_kind(params: SimParams, interface: str) -> str:
    """Which engine a platform gets: an explicit ``params.collectives``
    wins (``"nic"`` is rejected later if the platform can't run it);
    ``None`` follows the platform — NIC-resident on a CNI with AIH,
    host-based everywhere else (matching pre-collectives behaviour,
    where protocol handlers ran wherever the interface put them)."""
    if params.collectives is not None:
        return params.collectives
    return "nic" if (interface == "cni" and params.use_aih) else "host"


def make_collective_engine(node, nprocs: int, root: int = 0) -> CollectiveEngine:
    """Build the collective engine for ``node`` per its platform/params."""
    kind = resolve_engine_kind(node.params, node.interface)
    if kind == "nic":
        return NicCollectiveEngine(node, nprocs, root)
    return HostCollectiveEngine(node, nprocs, root)
