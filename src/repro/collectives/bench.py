"""Collective microbenchmark: timed barrier / all-reduce rounds.

A pinned SPMD kernel that alternates a small, deterministically skewed
compute burst (so arrivals stagger, as in a real application) with one
collective per round.  All-reduce rounds are self-checking: every node
verifies the combined vector against the closed-form expectation, so a
mis-combining engine (or a corrupted packet that slipped past the
reliable transport) fails the run instead of skewing a curve.

Used by the ``collectives`` experiment (via the PR-3 ``run_map``
executor — the config is picklable) and by the ``collectives`` arm of
``tools/bench.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

from ..engine import SimulationError
from ..params import SimParams
from .errors import CollectiveError

__all__ = ["CollBenchConfig", "collective_kernel", "run_collective_bench"]

#: The bench touches no shared pages; keep the segment tiny so cluster
#: construction doesn't price thousands of unused page homes.
_BENCH_DSM_PAGES = 16


@dataclass(frozen=True)
class CollBenchConfig:
    """Workload knobs for one collective-bench run (picklable)."""

    op: str = "barrier"        # "barrier" | "allreduce"
    rounds: int = 10
    compute_cycles: int = 1000  # base skewed burst between collectives
    vector_len: int = 4         # all-reduce payload elements


def collective_kernel(ctx, cfg: CollBenchConfig) -> Generator:
    """One node's share of the benchmark (SPMD)."""
    for r in range(cfg.rounds):
        if cfg.compute_cycles:
            # Deterministic skew: ranks arrive at different times.
            skew = 1 + (ctx.rank + r) % 3
            yield from ctx.compute(cfg.compute_cycles * skew)
        if cfg.op == "barrier":
            yield from ctx.barrier(0)
        elif cfg.op == "allreduce":
            mine = [float((ctx.rank + 1) * (r + 1))] * cfg.vector_len
            total = yield from ctx.allreduce(mine, op="sum")
            expected = float(
                (r + 1) * ctx.nprocs * (ctx.nprocs + 1) // 2)
            if total != [expected] * cfg.vector_len:
                raise SimulationError(
                    f"all-reduce round {r} on node {ctx.rank}: "
                    f"got {total}, expected {expected}")
        else:
            raise CollectiveError(f"unknown bench op {cfg.op!r}")
    return None


def run_collective_bench(params: SimParams, interface: str,
                         cfg: CollBenchConfig) -> Tuple[object, None]:
    """Run the benchmark on a fresh cluster; returns ``(RunStats, None)``
    (the ``(stats, result)`` shape every app runner uses)."""
    from ..runtime import Cluster

    params = params.replace(dsm_address_space_pages=_BENCH_DSM_PAGES)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(lambda ctx: collective_kernel(ctx, cfg))
    return stats, None
