"""Combining functions and wire sizing for reduction collectives.

Values are scalars (int/float) or flat sequences of scalars; sequences
combine elementwise.  Combination order is fixed (fold over ascending
node rank) so results are bit-identical across engines and ``--jobs``
values even for floating-point data.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .errors import CollectiveError

__all__ = ["REDUCERS", "combine", "reduce_values", "value_wire_bytes"]

#: Elementwise binary combiners available to reduce/all-reduce.
REDUCERS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}

#: Simulated wire size of one scalar element (64-bit word).
_SCALAR_BYTES = 8


def combine(reducer: str, a: Any, b: Any) -> Any:
    """Combine two contributions (scalar or elementwise on sequences)."""
    try:
        fn = REDUCERS[reducer]
    except KeyError:
        raise CollectiveError(
            f"unknown reducer {reducer!r} (have {sorted(REDUCERS)})"
        ) from None
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            raise CollectiveError(
                f"reduce contributions disagree on shape: {a!r} vs {b!r}")
        return [fn(x, y) for x, y in zip(a, b)]
    return fn(a, b)


def reduce_values(reducer: str, values: Dict[int, Any]) -> Any:
    """Fold contributions in ascending node order (deterministic)."""
    if not values:
        raise CollectiveError("reduce with no contributions")
    acc = None
    for node in sorted(values):
        v = values[node]
        acc = v if acc is None else combine(reducer, acc, v)
    if isinstance(acc, tuple):
        acc = list(acc)
    return acc


def value_wire_bytes(value: Any) -> int:
    """Simulated payload size of a collective value."""
    if value is None:
        return 0
    if isinstance(value, (list, tuple)):
        return _SCALAR_BYTES * len(value)
    return _SCALAR_BYTES
