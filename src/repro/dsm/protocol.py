"""The lazy-invalidate release-consistency engine (one instance per node).

Section 3 of the paper: "All three applications used a lazy invalidate
release consistency protocol for memory consistency ... assumed to run on
the network interface board using the memory allocated for application
interrupt handlers."  This module implements that protocol once; *where*
it runs is a platform property:

* on the **CNI**, incoming protocol packets are dispatched by the
  PATHFINDER into an Application Interrupt Handler and the engine's
  handler generators execute on the NI processor's clock — the host CPU
  never sees an interrupt;
* on the **standard interface**, the same generators execute on the host
  CPU after an interrupt and kernel dispatch, stealing application time.

The protocol (TreadMarks-style LRC, multiple-writer):

* intervals + vector clocks + write notices (:mod:`.interval`);
* locks: home-serialized, granted by the previous releaser with the
  notices the acquirer lacks (:mod:`.locks`);
* barriers: centralized manager merges and rebroadcasts intervals
  (:mod:`.barrier`);
* pages: lazy invalidation on acquire; full-page fetch from the latest
  writer on a miss; concurrent writers keep their copies and exchange
  *diffs* sized by the bytes actually written (:mod:`.page`,
  :mod:`.diff`).

The data/state split (global authoritative store, per-node state
machines) is documented in :mod:`.page` and DESIGN.md section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..engine import Category, SimulationError
from ..network import Packet, PacketKind
from ..params import SimParams
from .barrier import BarrierManager
from .directory import HomePolicy
from .interval import Interval, IntervalLog, WriteCollector, WriteNotice
from .locks import LocalLockTable, LockManagerTable
from .messages import (
    DiffReply,
    DiffReq,
    LockForward,
    LockGrant,
    LockReq,
    MsgType,
    PageReply,
    PageReq,
    intervals_wire_bytes,
)
from .page import NodePageTable, PageState, SharedSegment
from .vector_clock import VectorClock

#: Forwarding-chase sanity bound (a correct run never gets close).
MAX_PAGE_REQ_HOPS_FACTOR = 4


@dataclass
class _Waiter:
    """A blocked application thread's rendezvous."""

    event: Any
    outstanding: int = 1


#: Sentinel a deadline timer delivers to an abandoned DSM wait (see
#: :meth:`DsmEngine._expire`); never a legitimate protocol value.
_TIMEOUT = object()


class DsmEngine:
    """LRC protocol state and behaviour for one node."""

    def __init__(
        self,
        node,  # runtime.Node (documented platform surface; see DESIGN.md)
        segment: SharedSegment,
        homes: HomePolicy,
        nprocs: int,
    ):
        self.node = node
        self.sim = node.sim
        self.params: SimParams = node.params
        self.me: int = node.node_id
        self.nprocs = nprocs
        self.segment = segment
        self.homes = homes

        self.vc = VectorClock(nprocs)
        self.ilog = IntervalLog(nprocs)
        self.collector = WriteCollector(self.params.page_size_bytes)
        self.pages = NodePageTable(segment.npages,
                                   homes.page_homes(segment.npages), self.me)
        self.local_locks = LocalLockTable()
        self.managed_locks = LockManagerTable()
        self.barrier_mgr = (
            BarrierManager(nprocs) if self.me == homes.barrier_manager else None
        )
        self._barrier_sent_seq = 0
        #: Arrivers' vector clocks for in-flight barriers, kept by the
        #: manager between gather and release (collective attachment).
        self._barrier_vcs: Dict[Tuple[int, int], List[int]] = {}
        self._waiters: Dict[Any, _Waiter] = {}
        #: Waits abandoned by deadline expiry -> replies still expected;
        #: late protocol wakes for these drain silently instead of
        #: tripping the spurious-wake check.
        self._abandoned: Dict[Any, int] = {}
        #: Served diff sizes: (page, seq) -> bytes, kept after release so
        #: concurrent writers' diff requests can be answered and priced.
        self.diff_store: Dict[Tuple[int, int], int] = {}

        # Page homes are finalized once allocations are known (the block
        # scheme divides the *allocated* pages among the nodes); see
        # :meth:`init_page_homes`, called by the cluster before the run.

    def init_page_homes(self) -> None:
        """Assign page homes and seed initial validity.

        Pages homed here start valid (they are "born" in this node's
        memory); everything else faults on first touch.  Run by the
        cluster after shared allocations are final, because the block
        home scheme divides the allocated pages — homing everything by
        the raw segment size would pile every used page onto node 0.
        """
        self.pages.seed_homes(self.homes.page_homes(self.segment.npages))

    # ------------------------------------------------------------------ utils --
    def _charge_ns(self, on_board: bool, factor: float = 1.0) -> float:
        """Cost of one protocol action on its execution platform."""
        if on_board:
            return self.params.ni_cycles_ns(
                self.params.ni_aih_protocol_cycles * factor
            )
        ns = self.params.cpu_cycles_ns(self.params.host_protocol_cycles * factor)
        self.node.steal_host_time(ns, Category.SYNCH_OVERHEAD)
        return ns

    def _send(self, dst: int, msg_type: MsgType, body,
              payload_bytes: int, src_vaddr: Optional[int] = None,
              cacheable: bool = False) -> None:
        """Queue a protocol packet from the engine (board-originated)."""
        kind = PacketKind.DSM_PAGE if src_vaddr is not None else PacketKind.DSM_PROTOCOL
        self.node.nic.board_send(
            Packet(
                kind=kind,
                src_node=self.me,
                dst_node=dst,
                channel_id=self.node.dsm_channel_id,
                handler_key=int(msg_type),
                payload_bytes=payload_bytes,
                payload=body,
                cacheable=cacheable,
                src_vaddr=src_vaddr,
            )
        )

    def _app_send(self, dst: int, msg_type: MsgType, body,
                  payload_bytes: int) -> Generator:
        """Send a protocol request from the application thread (this is
        the path whose host cost differs: user-level ADC stores on the
        CNI, a kernel trap on the standard interface)."""
        from ..core.adc import TransmitDescriptor

        desc = TransmitDescriptor(
            dst_node=dst,
            vaddr=None,
            length=payload_bytes,
            handler_key=int(msg_type),
            payload=body,
            channel_id=self.node.dsm_channel_id,
        )
        t0 = self.sim.now
        yield from self.node.nic.host_send(desc)
        self.node.account_overhead(self.sim.now - t0)
        return None

    def _register_wait(self, key, outstanding: int = 1):
        if key in self._waiters:
            raise SimulationError(f"node {self.me}: duplicate wait on {key}")
        w = _Waiter(event=self.sim.event(), outstanding=outstanding)
        self._waiters[key] = w
        return w

    def _wake(self, key, value=None) -> None:
        w = self._waiters.get(key)
        if w is None:
            left = self._abandoned.get(key)
            if left is not None:
                if left <= 1:
                    del self._abandoned[key]
                else:
                    self._abandoned[key] = left - 1
                return
            raise SimulationError(f"node {self.me}: spurious wake of {key}")
        w.outstanding -= 1
        if w.outstanding <= 0:
            del self._waiters[key]
            w.event.trigger(value)

    def outstanding_waits(self) -> List[str]:
        """Stuck-report probe: DSM operations this node is blocked on
        (page fetches, lock grants — see docs/reliability.md)."""
        out = []
        for key in sorted(self._waiters, key=repr):
            kind = key[0] if isinstance(key, tuple) and key else key
            if kind == "page":
                out.append(f"node{self.me}: DSM page wait (page {key[1]})")
            elif kind == "lock":
                out.append(f"node{self.me}: DSM lock wait (lock {key[1]})")
            else:
                out.append(f"node{self.me}: DSM wait {key!r}")
        return out

    def _wait(self, w: _Waiter, key=None,
              op: Optional[str] = None) -> Generator:
        """Block the app thread on ``w``; charge delay + wake overhead.

        Bounded by ``SimParams.op_deadline_ns`` when it is set and the
        wait ``key`` is known: expiry abandons the wait and raises
        :class:`~repro.runtime.PeerDead` (detector already suspects a
        peer) or :class:`~repro.runtime.RuntimeTimeout` — a page fetch
        or lock acquire never hangs on a crashed node (see
        docs/reliability.md)."""
        deadline = self.params.op_deadline_ns
        timer = None
        if deadline > 0 and key is not None:
            timer = self.sim.schedule(deadline, lambda: self._expire(key))
        t0 = self.sim.now
        self.node.app_blocked = True
        try:
            value = yield w.event
        finally:
            self.node.app_blocked = False
        if timer is not None and value is not _TIMEOUT:
            timer.cancel()
        self.node.account_delay(self.sim.now - t0)
        if value is _TIMEOUT:
            self.node.counters.inc("dsm_timeouts")
            from ..runtime.errors import PeerDead, RuntimeTimeout

            opname = op or (f"dsm {key[0]}" if isinstance(key, tuple)
                            else "dsm wait")
            suspects = self.node.nic.detector.suspected_peers()
            if suspects:
                raise PeerDead(opname, suspects[0], deadline)
            raise RuntimeTimeout(opname, None, deadline)
        wake_ns = self.node.nic.rx_wake_overhead_ns()
        yield wake_ns
        self.node.account_overhead(wake_ns)
        return value

    def _expire(self, key) -> None:
        """Deadline fired for ``key``: abandon the wait and hand the
        blocked thread the timeout sentinel; replies still in flight
        drain through the ``_abandoned`` ledger."""
        w = self._waiters.pop(key, None)
        if w is None:
            return
        if w.outstanding > 0:
            self._abandoned[key] = w.outstanding
        w.event.trigger(_TIMEOUT)

    # ------------------------------------------------------- interval machinery --
    def _apply_intervals(self, intervals: List[Interval]) -> None:
        """Acquire-side processing of piggybacked intervals.

        "Applied" is tracked by the vector clock, not by the interval
        log: the barrier manager *knows* arrivers' intervals (it logged
        them to compute what others lack) before it *applies* them to
        its own pages at its own departure.
        """
        for iv in sorted(intervals, key=lambda i: (i.proc, i.seq)):
            if iv.proc == self.me:
                continue
            if self.vc[iv.proc] >= iv.seq:
                continue  # already applied
            self.ilog.record(iv)  # may be merely known already: fine
            for n in iv.notices:
                self.pages.apply_notice(
                    n.page, n.proc, n.seq, n.modified_bytes
                )
                # Note: the board's Message Cache copy is NOT dropped
                # here.  It mirrors *host memory*, which only changes via
                # snooped CPU stores or board-performed DMA installs;
                # under multiple-writer LRC a copy that lacks a remote
                # writer's bytes is still a valid transfer source (the
                # requester owns the reconciliation via diffs).
                self.node.counters.inc("dsm_notices_applied")
            if self.vc[iv.proc] < iv.seq:
                self.vc.v[iv.proc] = iv.seq

    def end_interval(self) -> Generator:
        """Release-side interval close, run by the application thread.

        Creates write notices for the interval's write set, *flushes* the
        written pages' dirty cache lines (the write-back-cache consistency
        requirement of Section 2.2 — this is also what keeps the Message
        Cache copies of those pages consistent, via snooping), downgrades
        the twinned pages, and logs the interval.
        """
        if not self.collector:
            return None
        seq = self.vc.tick(self.me)
        page_bytes = self.collector.drain()
        notices = []
        for page, nbytes in sorted(page_bytes.items()):
            notices.append(WriteNotice(page, self.me, seq, nbytes))
            self.diff_store[(page, seq)] = nbytes
            yield from self.node.flush_page(page)
        self.ilog.record(Interval(self.me, seq, tuple(notices)))
        self.pages.end_interval_downgrade()
        cost = self.params.cpu_cycles_ns(
            self.params.notice_create_cycles * len(notices)
        )
        yield cost
        self.node.account_overhead(cost)
        self.node.counters.inc("dsm_intervals", 1)
        self.node.counters.inc("dsm_notices_created", len(notices))
        return None

    # ------------------------------------------------------------ app-side: pages --
    def page_accessible(self, page: int, for_write: bool) -> bool:
        """Fast-path check the runtime makes before every shared burst."""
        m = self.pages[page]
        if m.state == PageState.INVALID or m.pending_diffs:
            return False
        if for_write and m.state != PageState.WRITABLE:
            return False
        return True

    def fault(self, page: int, for_write: bool) -> Generator:
        """Handle an access miss (run by the application thread)."""
        m = self.pages[page]
        fault_ns = self.params.cpu_cycles_ns(self.params.page_fault_handler_cycles)
        yield fault_ns
        self.node.account_overhead(fault_ns)
        self.node.counters.inc("dsm_faults")

        if m.state == PageState.INVALID or not m.ever_valid:
            yield from self._fetch_full_page(page)
        elif m.pending_diffs:
            pending = sum(m.pending_diffs.values())
            threshold = (
                self.params.full_page_fetch_threshold
                * self.params.page_size_bytes
            )
            if pending >= threshold:
                # Mostly rewritten: the page migrates whole (this is the
                # transfer the Message Cache accelerates).
                yield from self._fetch_full_page(page)
            else:
                # Lightly touched by concurrent writers: move just the
                # modified bytes (Section 3's Cholesky observation).
                yield from self._fetch_diffs(page)

        if for_write:
            m = self.pages[page]
            if m.state != PageState.WRITABLE:
                twin_ns = self.params.cpu_cycles_ns(
                    self.params.twin_cycles_per_word * self.params.words_per_page
                )
                yield twin_ns
                self.node.account_overhead(twin_ns)
                self.pages.make_writable(page)
                self.node.counters.inc("dsm_twins")
        return None

    def _fetch_full_page(self, page: int) -> Generator:
        m = self.pages[page]
        target = m.source
        if target == self.me:
            raise SimulationError(
                f"node {self.me}: invalid page {page} sourced from itself"
            )
        w = self._register_wait(("page", page))
        msg = PageReq(page=page, requester=self.me)
        self.node.counters.inc("dsm_page_fetches")
        yield from self._app_send(target, MsgType.PAGE_REQ, msg, msg.wire_bytes)
        yield from self._wait(w, ("page", page), "dsm page fetch")
        return None

    def _fetch_diffs(self, page: int) -> Generator:
        m = self.pages[page]
        by_writer: Dict[int, List[Tuple[int, int]]] = {}
        for (proc, seq) in sorted(m.pending_diffs):
            by_writer.setdefault(proc, []).append((proc, seq))
        w = self._register_wait(("page", page), outstanding=len(by_writer))
        self.node.counters.inc("dsm_diff_fetches", len(by_writer))
        for writer, ivs in by_writer.items():
            msg = DiffReq(page=page, requester=self.me, intervals=ivs)
            yield from self._app_send(writer, MsgType.DIFF_REQ, msg, msg.wire_bytes)
        yield from self._wait(w, ("page", page), "dsm diff fetch")
        return None

    # ------------------------------------------------------------ app-side: locks --
    def acquire(self, lock_id: int) -> Generator:
        """Acquire a distributed lock (application thread)."""
        st = self.local_locks.state(lock_id)
        if st.held:
            raise SimulationError(f"node {self.me}: lock {lock_id} re-acquired")
        self.node.counters.inc("dsm_acquires")
        if st.cached_ownership:
            # We were the last releaser and nobody took the lock away:
            # re-acquire locally with no traffic (lazy release's payoff).
            st.held = True
            st.released = False
            cost = self.params.cpu_cycles_ns(self.params.adc_enqueue_cycles)
            yield cost
            self.node.account_overhead(cost)
            self.node.counters.inc("dsm_acquires_local")
            return None
        home = self.homes.lock_home(lock_id)
        w = self._register_wait(("lock", lock_id))
        if home == self.me:
            # Local manager: no request packet; handle inline on the host
            # (the app thread itself does the work, so charge it directly).
            # The `acquiring` flag is set only once the request is
            # *sequenced* at the manager: a forward that arrives during
            # the processing delay precedes us in the grant chain and
            # must be granted, not queued.
            cost = self.params.cpu_cycles_ns(self.params.host_protocol_cycles)
            yield cost
            self.node.account_overhead(cost)
            st.acquiring = True
            self._lock_req_logic(
                LockReq(lock_id=lock_id, requester=self.me,
                        vc=self.vc.as_list())
            )
        else:
            # For a remote home, a forward addressed to us can only follow
            # the manager's sequencing of our request, so setting the flag
            # before the send is race-free.
            st.acquiring = True
            msg = LockReq(lock_id=lock_id, requester=self.me,
                          vc=self.vc.as_list())
            yield from self._app_send(home, MsgType.LOCK_REQ, msg, msg.wire_bytes)
        yield from self._wait(w, ("lock", lock_id), "dsm lock acquire")
        return None

    def release(self, lock_id: int) -> Generator:
        """Release a lock: close the interval, grant any queued waiter."""
        st = self.local_locks.state(lock_id)
        if not st.held:
            raise SimulationError(f"node {self.me}: releasing unheld lock {lock_id}")
        self.node.counters.inc("dsm_releases")
        yield from self.end_interval()
        st.held = False
        st.released = True
        if st.pending_requester is not None:
            requester = st.pending_requester
            req_vc = st.pending_vc or [0] * self.nprocs
            st.pending_requester = None
            st.pending_vc = None
            st.cached_ownership = False
            self._grant_lock(lock_id, requester, req_vc)
        return None

    def _grant_lock(self, lock_id: int, requester: int, req_vc: List[int]) -> None:
        intervals = self.ilog.missing_for(req_vc)
        msg = LockGrant(lock_id=lock_id, granter=self.me, intervals=intervals)
        if requester == self.me:
            self._apply_intervals(intervals)
            self._finish_local_acquire(lock_id)
        else:
            self._send(requester, MsgType.LOCK_GRANT, msg, msg.wire_bytes)

    def _finish_local_acquire(self, lock_id: int) -> None:
        st = self.local_locks.state(lock_id)
        st.acquiring = False
        st.held = True
        st.released = False
        st.cached_ownership = True
        self._wake(("lock", lock_id))

    # ------------------------------------------------------------ app-side: barrier --
    def barrier(self, barrier_id: int = 0) -> Generator:
        """Cross a barrier (application thread).

        Arrival is a release (interval close + notices to the manager);
        departure is an acquire (apply everyone's intervals).  The
        gather/release transport is the collective engine
        (``node.coll``, :mod:`repro.collectives`); this engine rides it
        as the barrier's *consistency attachment* — the interval payload
        travels inside the collective packets and the attachment hooks
        below run at the root/participants, reproducing the standalone
        barrier protocol's messages and costs exactly.
        """
        self.node.counters.inc("dsm_barriers")
        yield from self.end_interval()
        payload, payload_bytes = self._barrier_payload()
        yield from self.node.coll.barrier(
            barrier_id, payload=payload, payload_bytes=payload_bytes)
        return None

    def _barrier_payload(self) -> Tuple[Any, int]:
        """This node's arrival attachment: (payload, wire bytes)."""
        own = [
            iv for iv in self.ilog.intervals_of(self.me)
            if iv.seq > self._barrier_sent_seq
        ]
        self._barrier_sent_seq = self.ilog.known_seq(self.me)
        vc = self.vc.as_list()
        return (own, vc), intervals_wire_bytes(own) + 8 * len(vc)

    # ------------------------------------- collective attachment (barrier) --
    # Hooks called by the collective engine (docs/collectives.md): the
    # root-side pair runs on whatever platform executes the gather (NI
    # processor or host CPU); the participant-side hook runs where the
    # release packet is handled.
    def coll_on_arrive(self, coll_id: int, arriver: int, payload) -> None:
        """Root gather step: log the arriver's intervals + vector clock."""
        assert self.barrier_mgr is not None, "not the barrier manager"
        intervals, vc = payload
        for iv in intervals:
            self.ilog.record(iv)
        self.barrier_mgr.arrive(coll_id, arriver, intervals)
        self._barrier_vcs[(coll_id, arriver)] = list(vc)

    def coll_gather_complete(self, coll_id: int) -> None:
        """Root: everyone arrived; close the episode."""
        self.barrier_mgr.complete(coll_id)

    def coll_make_release(self, coll_id: int, node: int) -> Tuple[Any, int]:
        """Root: build ``node``'s release payload (the intervals that
        node's vector clock says it lacks) and its wire size."""
        their_vc = self._barrier_vcs.pop((coll_id, node), [0] * self.nprocs)
        intervals = self.ilog.missing_for(their_vc)
        return intervals, intervals_wire_bytes(intervals)

    def coll_on_release(self, coll_id: int, payload) -> None:
        """Participant departure: acquire-apply the missing intervals."""
        self._apply_intervals(payload)

    # ------------------------------------------------------- board/host handlers --
    def handle_packet(self, packet: Packet, on_board: bool) -> Generator:
        """Entry point registered as the NIC's protocol sink.

        Runs inside the NIC receive process; ``on_board`` says whether
        the cost clock is the NI processor (CNI Application Interrupt
        Handler) or the host CPU (standard interface / no-AIH ablation).
        """
        yield self._charge_ns(on_board)
        mt = MsgType(packet.handler_key)
        body = packet.payload
        if mt == MsgType.LOCK_REQ:
            self._lock_req_logic(body)
        elif mt == MsgType.LOCK_FORWARD:
            self._lock_forward_logic(body)
        elif mt == MsgType.LOCK_GRANT:
            self._apply_intervals(body.intervals)
            self._finish_local_acquire(body.lock_id)
        elif mt == MsgType.PAGE_REQ:
            self._page_req_logic(body)
        elif mt == MsgType.PAGE_REPLY:
            yield from self._install_page(packet, body, on_board)
        elif mt == MsgType.DIFF_REQ:
            yield from self._diff_req_logic(body, on_board)
        elif mt == MsgType.DIFF_REPLY:
            yield from self._install_diffs(packet, body)
        else:  # pragma: no cover - MsgType() above would have raised
            raise SimulationError(f"unknown protocol message {mt}")
        return None

    # lock handlers -----------------------------------------------------------
    def _lock_req_logic(self, msg: LockReq) -> None:
        rec = self.managed_locks.record(msg.lock_id)
        target = rec.last_owner if rec.last_owner is not None else self.me
        rec.last_owner = msg.requester
        fwd = LockForward(
            lock_id=msg.lock_id, requester=msg.requester, vc=msg.vc
        )
        if target == self.me:
            self._lock_forward_logic(fwd)
        else:
            self._send(target, MsgType.LOCK_FORWARD, fwd, fwd.wire_bytes)

    def _lock_forward_logic(self, msg: LockForward) -> None:
        st = self.local_locks.state(msg.lock_id)
        if msg.requester == self.me:
            # Our own request chained back to us (we were already the
            # last owner in the manager's eyes): the lock is ours.
            self._grant_lock(msg.lock_id, self.me, msg.vc)
            return
        st.cached_ownership = False
        if st.held or st.acquiring:
            if st.pending_requester is not None:
                raise SimulationError(
                    f"node {self.me}: two pending requesters for lock "
                    f"{msg.lock_id}"
                )
            st.pending_requester = msg.requester
            st.pending_vc = msg.vc
        else:
            self._grant_lock(msg.lock_id, msg.requester, msg.vc)

    # page handlers ------------------------------------------------------------
    def _page_req_logic(self, msg: PageReq) -> None:
        m = self.pages[msg.page]
        if m.state == PageState.INVALID:
            # Stale source pointer: chase the latest writer we know of.
            if msg.hops > MAX_PAGE_REQ_HOPS_FACTOR * self.nprocs:
                raise SimulationError(
                    f"page {msg.page}: request chased {msg.hops} hops"
                )
            fwd = PageReq(
                page=msg.page, requester=msg.requester, hops=msg.hops + 1
            )
            self._send(m.source, MsgType.PAGE_REQ, fwd, fwd.wire_bytes)
            self.node.counters.inc("dsm_page_req_forwards")
            return
        reply = PageReply(page=msg.page, holder=self.me)
        self._send(
            msg.requester,
            MsgType.PAGE_REPLY,
            reply,
            self.params.page_size_bytes,
            src_vaddr=self.segment.page_vaddr(msg.page),
            cacheable=True,
        )
        self.node.counters.inc("dsm_pages_served")

    def _install_page(self, packet: Packet, msg: PageReply,
                      on_board: bool) -> Generator:
        page = msg.page
        # Receive caching (Section 2.2): bind the arrived page into the
        # Message Cache so a later migration is served without a DMA.
        if packet.cacheable:
            self.node.mc_receive_insert(page)
        # The data must reach host memory regardless of interface.
        yield from self.node.bus.dma(self.params.page_size_bytes)
        self.node.drop_page_from_cpu_cache(page)
        self.pages.install_full_copy(page)
        m = self.pages[page]
        m.source = msg.holder
        self.node.counters.inc("dsm_pages_installed")
        self._wake(("page", page))
        return None

    # diff handlers ----------------------------------------------------------
    def _diff_req_logic(self, msg: DiffReq, on_board: bool) -> Generator:
        total = 0
        for key in msg.intervals:
            total += self.diff_store.get(tuple(key), 0)
        total = max(total, 8)  # an empty diff still frames a reply
        # Diff creation: word-compare of page and twin.  On the CNI this
        # work runs on the NI processor against board copies; on the
        # standard interface the host does it.
        words = -(-total // self.params.bus_word_bytes)
        if on_board:
            yield self.params.ni_cycles_ns(
                self.params.diff_cycles_per_word * words
            )
        else:
            ns = self.params.cpu_cycles_ns(
                self.params.diff_cycles_per_word * words
            )
            self.node.steal_host_time(ns, Category.SYNCH_OVERHEAD)
            yield ns
        reply = DiffReply(
            page=msg.page, writer=self.me,
            intervals=list(msg.intervals), diff_bytes=total,
        )
        # The diff's bytes come out of the page's buffer: straight from
        # the board copy on a Message-Cache hit, via a host DMA otherwise
        # (cacheable=False — a diff transfer does not bind the page).
        self._send(
            msg.requester, MsgType.DIFF_REPLY, reply,
            reply.wire_bytes + total,
            src_vaddr=self.segment.page_vaddr(msg.page),
        )
        self.node.counters.inc("dsm_diffs_served")
        return None

    def _install_diffs(self, packet: Packet, msg: DiffReply) -> Generator:
        if msg.diff_bytes > 0:
            yield from self.node.bus.dma(msg.diff_bytes)
        self.node.drop_page_from_cpu_cache(msg.page)
        self.pages.apply_diffs(msg.page, [tuple(k) for k in msg.intervals])
        self.node.counters.inc("dsm_diffs_installed")
        self._wake(("page", msg.page))
        return None

