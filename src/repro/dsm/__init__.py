"""Lazy release consistency DSM (the protocol the evaluation runs).

The engine (:class:`DsmEngine`) is platform-neutral; the CNI runs its
handlers in Application Interrupt Handlers on the NI processor, the
standard interface runs them on the host after an interrupt.
"""

from .barrier import BarrierEpisode, BarrierManager
from .checker import Violation, assert_healthy, check_cluster
from .diff import RangeSet
from .eager import EagerDsmEngine
from .directory import HomePolicy
from .interval import (
    INTERVAL_WIRE_BYTES,
    NOTICE_WIRE_BYTES,
    Interval,
    IntervalLog,
    WriteCollector,
    WriteNotice,
)
from .locks import LocalLockState, LocalLockTable, LockManagerRecord, LockManagerTable
from .messages import (
    BarrierArrive,
    BarrierRelease,
    DiffReply,
    DiffReq,
    LockForward,
    LockGrant,
    LockReq,
    MsgType,
    PageReply,
    PageReq,
)
from .page import NodePageTable, PageMeta, PageState, SharedAlloc, SharedSegment
from .protocol import DsmEngine
from .vector_clock import VectorClock

__all__ = [
    "BarrierArrive",
    "Violation",
    "assert_healthy",
    "check_cluster",
    "BarrierEpisode",
    "BarrierManager",
    "BarrierRelease",
    "DiffReply",
    "DiffReq",
    "DsmEngine",
    "EagerDsmEngine",
    "HomePolicy",
    "INTERVAL_WIRE_BYTES",
    "Interval",
    "IntervalLog",
    "LocalLockState",
    "LocalLockTable",
    "LockForward",
    "LockGrant",
    "LockManagerRecord",
    "LockManagerTable",
    "LockReq",
    "MsgType",
    "NOTICE_WIRE_BYTES",
    "NodePageTable",
    "PageMeta",
    "PageReply",
    "PageReq",
    "PageState",
    "RangeSet",
    "SharedAlloc",
    "SharedSegment",
    "VectorClock",
    "WriteCollector",
    "WriteNotice",
]
