"""Eager release consistency — the protocol ablation.

Section 3 of the paper picks a *lazy* invalidate release-consistency
protocol "because it has been shown that invalidate protocols work best
in low overhead environments".  This module provides the classical
alternative the literature compared against (Munin-style eager RC):

* at every release, the releaser **pushes** its interval's write notices
  to every other node and blocks until all acknowledge;
* acquires and barrier departures then carry no piggybacked intervals —
  everyone is already up to date.

Traffic trade-off: lazy sends notices only along synchronization edges
that need them; eager pays (P-1) invalidations + (P-1) acks at *every*
release.  ``benchmarks/test_ablation_protocol.py`` measures the
difference on both network interfaces.
"""

from __future__ import annotations

from typing import Generator, List

from ..engine import SimulationError
from ..network import Packet
from .interval import Interval, WriteNotice
from .messages import InvAck, Invalidate, MsgType
from .protocol import DsmEngine


class EagerDsmEngine(DsmEngine):
    """Eager-RC variant of the protocol engine.

    Inherits all machinery (locks, barriers, fetch, diffs); overrides
    the release side to broadcast invalidations and the grant/barrier
    paths to stop piggybacking intervals.
    """

    def end_interval(self) -> Generator:
        """Close the interval and eagerly broadcast its write notices.

        The releaser blocks until every peer has acknowledged — the cost
        lazy RC exists to avoid.
        """
        if not self.collector:
            return None
        seq = self.vc.tick(self.me)
        page_bytes = self.collector.drain()
        notices = []
        for page, nbytes in sorted(page_bytes.items()):
            notices.append(WriteNotice(page, self.me, seq, nbytes))
            self.diff_store[(page, seq)] = nbytes
            yield from self.node.flush_page(page)
        interval = Interval(self.me, seq, tuple(notices))
        self.ilog.record(interval)
        self.pages.end_interval_downgrade()
        cost = self.params.cpu_cycles_ns(
            self.params.notice_create_cycles * len(notices)
        )
        yield cost
        self.node.account_overhead(cost)
        self.node.counters.inc("dsm_intervals", 1)
        self.node.counters.inc("dsm_notices_created", len(notices))

        peers = [p for p in range(self.nprocs) if p != self.me]
        if not peers:
            return None
        w = self._register_wait(("inv", seq), outstanding=len(peers))
        msg = Invalidate(releaser=self.me, seq=seq, intervals=[interval])
        self.node.counters.inc("dsm_eager_invalidations", len(peers))
        for p in peers:
            yield from self._app_send(p, MsgType.INVALIDATE, msg,
                                      msg.wire_bytes)
        yield from self._wait(w, ("inv", seq), "dsm invalidate round")
        return None

    # -- piggybacking disabled: everyone is already current ---------------
    def _grant_lock(self, lock_id: int, requester: int,
                    req_vc: List[int]) -> None:
        from .messages import LockGrant

        if requester == self.me:
            self._finish_local_acquire(lock_id)
            return
        msg = LockGrant(lock_id=lock_id, granter=self.me, intervals=[])
        self._send(requester, MsgType.LOCK_GRANT, msg, msg.wire_bytes)

    def _barrier_payload(self):
        """Barriers degenerate to pure arrival counting under eager RC
        (the notices travelled at the releases): the attachment carries
        no intervals, only the vector clock."""
        vc = self.vc.as_list()
        return ([], vc), 8 * len(vc)

    # -- new message handlers ------------------------------------------------
    def handle_packet(self, packet: Packet, on_board: bool) -> Generator:
        mt = MsgType(packet.handler_key)
        if mt == MsgType.INVALIDATE:
            yield self._charge_ns(on_board)
            body = packet.payload
            self._apply_intervals(body.intervals)
            ack = InvAck(acker=self.me, releaser=body.releaser, seq=body.seq)
            self._send(body.releaser, MsgType.INV_ACK, ack, ack.wire_bytes)
            return None
        if mt == MsgType.INV_ACK:
            yield self._charge_ns(on_board, factor=0.25)
            body = packet.payload
            self._wake(("inv", body.seq))
            return None
        yield from super().handle_packet(packet, on_board)
        return None
