"""Centralized barrier manager state.

Barriers are the release-consistency workhorse of all three benchmark
applications.  The manager (node 0) gathers one arrival — carrying the
arriver's new intervals — from every participant, merges the interval
sets, and broadcasts a release carrying the merged set; arrival is a
release operation, departure an acquire.

Protocol violations (duplicate arrival, out-of-range participant) raise
:class:`~repro.collectives.CollectiveError`, the typed error shared with
the collective-operations subsystem that now carries the gather/release
transport (see docs/collectives.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..collectives.errors import CollectiveError
from .interval import Interval


@dataclass
class BarrierEpisode:
    """One in-progress barrier crossing at the manager."""

    episode: int
    arrived: Set[int] = field(default_factory=set)
    intervals: List[Interval] = field(default_factory=list)
    nprocs: Optional[int] = None
    """Participant count, for arrival validation (None skips the
    range check, for standalone episode objects)."""

    def arrive(self, node: int, intervals: List[Interval]) -> None:
        """Register one participant's arrival."""
        if self.nprocs is not None and not 0 <= node < self.nprocs:
            raise CollectiveError(
                f"unknown participant {node} at episode {self.episode} "
                f"(nprocs={self.nprocs})")
        if node in self.arrived:
            raise CollectiveError(
                f"node {node} arrived twice at episode {self.episode}")
        self.arrived.add(node)
        self.intervals.extend(intervals)


class BarrierManager:
    """Manager-side state for all barriers (keyed by barrier id)."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise CollectiveError("need at least one participant")
        self.nprocs = nprocs
        self._episodes: Dict[int, BarrierEpisode] = {}
        self._episode_counter: Dict[int, int] = {}
        self.crossings = 0

    def arrive(self, barrier_id: int, node: int,
               intervals: List[Interval]) -> BarrierEpisode:
        """Record an arrival; returns the episode (complete or not)."""
        ep = self._episodes.get(barrier_id)
        if ep is None:
            n = self._episode_counter.get(barrier_id, 0) + 1
            self._episode_counter[barrier_id] = n
            ep = BarrierEpisode(episode=n, nprocs=self.nprocs)
            self._episodes[barrier_id] = ep
        ep.arrive(node, intervals)
        return ep

    def is_complete(self, barrier_id: int) -> bool:
        """Whether every participant has arrived."""
        ep = self._episodes.get(barrier_id)
        return ep is not None and len(ep.arrived) == self.nprocs

    def complete(self, barrier_id: int) -> BarrierEpisode:
        """Close the episode and hand back its merged intervals."""
        ep = self._episodes.pop(barrier_id, None)
        if ep is None or len(ep.arrived) != self.nprocs:
            raise RuntimeError(f"barrier {barrier_id} is not complete")
        self.crossings += 1
        return ep
