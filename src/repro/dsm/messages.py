"""DSM protocol message payloads and their wire sizes.

Each message type has its own handler key so the PATHFINDER dispatches
protocol actions at pattern granularity — exactly the fine-grained demux
Section 2.1 argues a bare VCI cannot express.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .interval import Interval


class MsgType(enum.IntEnum):
    """Protocol actions; doubles as the packet's PATHFINDER handler key."""

    LOCK_REQ = 0x10
    LOCK_FORWARD = 0x11
    LOCK_GRANT = 0x12
    PAGE_REQ = 0x20
    PAGE_REPLY = 0x21
    DIFF_REQ = 0x22
    DIFF_REPLY = 0x23
    BARRIER_ARRIVE = 0x30
    BARRIER_RELEASE = 0x31
    INVALIDATE = 0x40
    INV_ACK = 0x41


#: Fixed framing of every protocol message body.
MSG_BASE_BYTES = 24


def intervals_wire_bytes(intervals: List[Interval]) -> int:
    """Bytes a piggybacked interval list adds to a message."""
    return sum(iv.wire_bytes for iv in intervals)


@dataclass
class LockReq:
    """Acquirer -> lock home: request ownership of ``lock_id``."""

    lock_id: int
    requester: int
    vc: List[int]

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + 8 * len(self.vc)


@dataclass
class LockForward:
    """Lock home -> last releaser: pass the grant duty along."""

    lock_id: int
    requester: int
    vc: List[int]

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + 8 * len(self.vc)


@dataclass
class LockGrant:
    """Granter -> acquirer: the lock plus every interval it lacks."""

    lock_id: int
    granter: int
    intervals: List[Interval] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + intervals_wire_bytes(self.intervals)


@dataclass
class PageReq:
    """Faulting node -> believed holder: send me page ``page``."""

    page: int
    requester: int
    hops: int = 0
    """Forwarding count; a request chases stale source pointers."""

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class PageReply:
    """Holder -> faulting node: a full page copy (the payload that the
    Message Cache exists to accelerate)."""

    page: int
    holder: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES  # page data itself is the packet payload


@dataclass
class DiffReq:
    """Faulting node -> concurrent writer: send your diffs for ``page``."""

    page: int
    requester: int
    intervals: List[Tuple[int, int]] = field(default_factory=list)
    """The (proc, seq) intervals whose modifications are owed."""

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + 8 * len(self.intervals)


@dataclass
class DiffReply:
    """Writer -> faulting node: the modified bytes of the named intervals."""

    page: int
    writer: int
    intervals: List[Tuple[int, int]] = field(default_factory=list)
    diff_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + 8 * len(self.intervals)  # + payload


@dataclass
class Invalidate:
    """Eager RC: releaser -> everyone: apply these intervals *now*.

    Lazy release consistency defers notice propagation to the next
    causally-related acquire; the eager variant (Munin-style) pushes the
    notices at release time and blocks the releaser until acknowledged.
    Implemented as a protocol ablation — Section 3 justifies the lazy
    choice ("invalidate protocols work best in low overhead
    environments") and this variant lets the claim be measured.
    """

    releaser: int
    seq: int
    intervals: List[Interval] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + intervals_wire_bytes(self.intervals)


@dataclass
class InvAck:
    """Eager RC: invalidation receipt."""

    acker: int
    releaser: int
    seq: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class BarrierArrive:
    """Participant -> manager: here are my new intervals and my clock."""

    barrier_id: int
    arriver: int
    episode: int
    intervals: List[Interval] = field(default_factory=list)
    vc: List[int] = field(default_factory=list)
    """The arriver's vector clock after closing its interval; the manager
    uses it to send back exactly the intervals the arriver lacks."""

    @property
    def wire_bytes(self) -> int:
        return (MSG_BASE_BYTES + intervals_wire_bytes(self.intervals)
                + 8 * len(self.vc))


@dataclass
class BarrierRelease:
    """Manager -> everyone: the merged interval set; proceed."""

    barrier_id: int
    episode: int
    intervals: List[Interval] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES + intervals_wire_bytes(self.intervals)
