"""Modified-range tracking: twins and diffs, sized by real writes.

Multiple-writer LRC never ships whole pages between concurrent writers;
it ships *diffs* — the bytes a writer actually modified, computed against
a pristine twin.  The simulator does not keep byte-level twins (the
authoritative data lives in the shared segment store); instead the
runtime records every write's byte range, and :class:`RangeSet` maintains
the union, whose size *is* the diff size a twin comparison would find.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class RangeSet:
    """A union of half-open byte ranges ``[start, end)``, kept merged.

    Insertion keeps the internal list sorted and coalesced, so size
    queries are O(1)-ish and iteration yields disjoint ascending ranges.
    """

    __slots__ = ("_ranges",)

    def __init__(self) -> None:
        self._ranges: List[Tuple[int, int]] = []

    def add(self, start: int, length: int) -> None:
        """Include ``[start, start+length)``."""
        if length <= 0:
            return
        end = start + length
        out: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._ranges:
            if e < start or s > end:
                out.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        # insert merged range in sorted position
        for i, (s, _e) in enumerate(out):
            if s > start:
                out.insert(i, (start, end))
                placed = True
                break
        if not placed:
            out.append((start, end))
        self._ranges = out

    @property
    def byte_count(self) -> int:
        """Total bytes covered (the diff size)."""
        return sum(e - s for s, e in self._ranges)

    @property
    def range_count(self) -> int:
        """Number of disjoint runs (diff fragmentation)."""
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._ranges)

    def contains(self, offset: int) -> bool:
        """Whether byte ``offset`` is covered."""
        return any(s <= offset < e for s, e in self._ranges)

    def clamp(self, limit: int) -> None:
        """Intersect with ``[0, limit)`` (page-boundary hygiene)."""
        self._ranges = [
            (s, min(e, limit)) for s, e in self._ranges if s < limit
        ]

    def copy(self) -> "RangeSet":
        """Independent copy."""
        rs = RangeSet()
        rs._ranges = list(self._ranges)
        return rs
