"""Cluster-wide DSM invariant checking.

The stress tests (and any user experimenting with protocol changes) need
a way to ask "is the protocol state still sane?"  :func:`check_cluster`
inspects every node's engine after (or during) a run and returns a list
of violations — empty means healthy.

Invariants checked:

* **Quiescence** (optional): no leaked waiters, no unpublished writes,
  no locks still held, no partially reassembled packets.
* **Vector-clock sanity**: a node's own component equals its interval
  count; nobody knows a *future* interval of another node (vc[p] on any
  node never exceeds p's own component).
* **Interval-log integrity**: per-processor lanes are gap-free and
  consistent with the vector clock.
* **Lock-chain sanity**: a lock's manager-side last_owner points at a
  real node; at most one node believes it holds any given lock.
* **Page-state sanity**: WRITABLE pages have a live twin; pages with
  pending diffs name plausible writers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from .page import PageState


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    node: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"node {self.node}: {self.kind}: {self.detail}"


def check_cluster(cluster, quiescent: bool = True) -> List[Violation]:
    """Check all invariants over ``cluster``'s nodes.

    ``quiescent=True`` additionally requires that the run has finished
    (no in-flight protocol activity is expected).
    """
    out: List[Violation] = []
    engines = [node.engine for node in cluster.nodes]
    nprocs = len(engines)

    # -- vector clocks ------------------------------------------------------
    own = [eng.vc[eng.me] for eng in engines]
    for eng in engines:
        for p in range(nprocs):
            if eng.vc[p] > own[p]:
                out.append(Violation(
                    eng.me, "vc-future",
                    f"knows interval {eng.vc[p]} of proc {p}, but proc {p} "
                    f"has only created {own[p]}"))
        if eng.ilog.known_seq(eng.me) != eng.vc[eng.me]:
            out.append(Violation(
                eng.me, "vc-own-mismatch",
                f"own vc {eng.vc[eng.me]} != own interval log "
                f"{eng.ilog.known_seq(eng.me)}"))

    # -- interval logs ------------------------------------------------------
    for eng in engines:
        for p in range(nprocs):
            seqs = [iv.seq for iv in eng.ilog.intervals_of(p)]
            if seqs != list(range(1, len(seqs) + 1)):
                out.append(Violation(
                    eng.me, "interval-gap",
                    f"lane for proc {p} is {seqs}"))
            if eng.vc[p] > len(seqs):
                out.append(Violation(
                    eng.me, "vc-beyond-log",
                    f"vc[{p}]={eng.vc[p]} but only {len(seqs)} intervals "
                    f"logged"))

    # -- locks ---------------------------------------------------------------
    holders: Dict[int, List[int]] = {}
    for eng in engines:
        for lock_id in eng.local_locks.held_locks():
            holders.setdefault(lock_id, []).append(eng.me)
        for lock_id, rec in eng.managed_locks._locks.items():
            if rec.last_owner is not None and not 0 <= rec.last_owner < nprocs:
                out.append(Violation(
                    eng.me, "lock-bad-owner",
                    f"lock {lock_id} last_owner {rec.last_owner}"))
    for lock_id, who in holders.items():
        if len(who) > 1:
            out.append(Violation(
                who[0], "lock-double-hold",
                f"lock {lock_id} held by {who}"))

    # -- pages ----------------------------------------------------------------
    for eng in engines:
        for page in range(eng.segment.pages_allocated):
            meta = eng.pages[page]
            if meta.state == PageState.WRITABLE and not meta.twin_live:
                out.append(Violation(
                    eng.me, "writable-no-twin", f"page {page}"))
            for (proc, _seq) in meta.pending_diffs:
                if not 0 <= proc < nprocs or proc == eng.me:
                    out.append(Violation(
                        eng.me, "pending-bad-writer",
                        f"page {page} owes diffs to proc {proc}"))

    # -- quiescence ------------------------------------------------------------
    if quiescent:
        for node in cluster.nodes:
            eng = node.engine
            if eng._waiters:
                out.append(Violation(
                    eng.me, "leaked-waiter", f"{sorted(map(str, eng._waiters))}"))
            if eng.collector:
                out.append(Violation(
                    eng.me, "unpublished-writes",
                    f"pages {eng.collector.dirty_pages}"))
            if eng.local_locks.held_locks():
                out.append(Violation(
                    eng.me, "locks-held-at-exit",
                    f"{eng.local_locks.held_locks()}"))
            if node.nic.reassembler.pending_packets():
                out.append(Violation(
                    eng.me, "partial-reassembly",
                    f"{node.nic.reassembler.pending_packets()} packets"))
    return out


def assert_healthy(cluster, quiescent: bool = True) -> None:
    """Raise AssertionError listing all violations, if any."""
    violations = check_cluster(cluster, quiescent=quiescent)
    if violations:
        raise AssertionError(
            "DSM invariant violations:\n  "
            + "\n  ".join(str(v) for v in violations)
        )
