"""Distributed lock state machines.

Locks follow the TreadMarks/LRC style: a static home node serializes
requests; the grant itself travels from the *previous releaser* (which
is where the write notices the acquirer needs live).  Lock state is
split between the home's manager record and each node's local holder
record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple


@dataclass
class LockManagerRecord:
    """Home-side record of one lock: who should grant next."""

    last_owner: Optional[int] = None
    """The node that most recently was given the lock (it, or its
    successor chain, will grant the next request).  None: never held."""


class LockManagerTable:
    """All locks homed on one node."""

    def __init__(self) -> None:
        self._locks: dict = {}

    def record(self, lock_id: int) -> LockManagerRecord:
        """Get-or-create the manager record."""
        rec = self._locks.get(lock_id)
        if rec is None:
            rec = LockManagerRecord()
            self._locks[lock_id] = rec
        return rec


@dataclass
class LocalLockState:
    """One node's view of a lock it holds, held, or waits for."""

    held: bool = False
    released: bool = True
    """``held`` and ``released`` distinguish holding, released-but-still-
    granter (lazy), and in-transit states."""

    acquiring: bool = False
    """A request is in flight; a forwarded grant duty must queue."""

    cached_ownership: bool = False
    """We were the last releaser and nobody has taken the lock since, so
    a re-acquire is free of traffic (lazy release's payoff)."""

    pending_requester: Optional[int] = None
    """A forwarded request that arrived while we still hold the lock; we
    grant at release time (the grant duty queues here, not at the home)."""

    pending_vc: Optional[List[int]] = None
    """The waiting requester's vector clock (to compute owed notices)."""


class LocalLockTable:
    """All lock states a node has touched."""

    def __init__(self) -> None:
        self._locks: dict = {}

    def state(self, lock_id: int) -> LocalLockState:
        """Get-or-create local state."""
        st = self._locks.get(lock_id)
        if st is None:
            st = LocalLockState()
            self._locks[lock_id] = st
        return st

    def held_locks(self) -> List[int]:
        """Locks currently held by this node (diagnostics, tests)."""
        return sorted(k for k, v in self._locks.items() if v.held)
