"""Intervals and write notices (the currency of LRC).

An *interval* is one processor's execution between two synchronization
operations; it is identified by ``(proc, seq)``.  At the release that
ends an interval, the processor creates one *write notice* per page it
modified; acquiring processors receive the notices of intervals they
have not yet seen and invalidate the named pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .diff import RangeSet

#: Serialized size of one write notice on the wire (page id, proc, seq,
#: modified-byte count).
NOTICE_WIRE_BYTES = 16

#: Fixed per-interval framing on the wire (proc, seq, notice count).
INTERVAL_WIRE_BYTES = 12


@dataclass(frozen=True)
class WriteNotice:
    """"Page ``page`` was modified in interval ``(proc, seq)``"."""

    page: int
    proc: int
    seq: int
    modified_bytes: int
    """Diff size: how many bytes the writer actually touched (drives the
    payload size of a later diff fetch)."""

    def __post_init__(self):
        if self.page < 0 or self.proc < 0 or self.seq <= 0:
            raise ValueError("malformed write notice")
        if self.modified_bytes < 0:
            raise ValueError("negative diff size")


@dataclass
class Interval:
    """One closed interval and its write notices."""

    proc: int
    seq: int
    notices: Tuple[WriteNotice, ...]

    def __post_init__(self):
        if any(n.proc != self.proc or n.seq != self.seq for n in self.notices):
            raise ValueError("notice does not belong to this interval")

    @property
    def wire_bytes(self) -> int:
        """Serialized size when piggybacked on a grant/barrier message."""
        return INTERVAL_WIRE_BYTES + NOTICE_WIRE_BYTES * len(self.notices)


class IntervalLog:
    """Every interval a node knows about (its own and learned ones).

    Keyed by processor; per processor the list is ascending in ``seq``
    and gap-free from the first learned interval (LRC transfers are
    cumulative).  A granter answers "which intervals does the requester
    lack?" from this log.
    """

    def __init__(self, nprocs: int):
        self._log: List[List[Interval]] = [[] for _ in range(nprocs)]
        self.nprocs = nprocs

    def record(self, interval: Interval) -> bool:
        """Add an interval; returns False if already known."""
        lane = self._log[interval.proc]
        if lane and interval.seq <= lane[-1].seq:
            return False
        if lane and interval.seq != lane[-1].seq + 1:
            raise ValueError(
                f"interval gap for proc {interval.proc}: "
                f"{lane[-1].seq} -> {interval.seq}"
            )
        if not lane and interval.seq != 1:
            raise ValueError(
                f"first interval for proc {interval.proc} must be seq 1, "
                f"got {interval.seq}"
            )
        lane.append(interval)
        return True

    def missing_for(self, their_vc: List[int]) -> List[Interval]:
        """All known intervals with ``seq > their_vc[proc]``, in a
        causally-safe order (by proc, ascending seq)."""
        out: List[Interval] = []
        for proc, lane in enumerate(self._log):
            have = their_vc[proc]
            for iv in lane:
                if iv.seq > have:
                    out.append(iv)
        return out

    def known_seq(self, proc: int) -> int:
        """Highest recorded seq for ``proc`` (0 when none)."""
        lane = self._log[proc]
        return lane[-1].seq if lane else 0

    def intervals_of(self, proc: int) -> List[Interval]:
        """All recorded intervals of one processor."""
        return list(self._log[proc])


class WriteCollector:
    """Accumulates the current interval's writes for one node.

    The runtime calls :meth:`record_write` for every shared store burst;
    at release the collector yields per-page modified-byte counts for the
    write notices (and remembers them so later diff requests can be
    served and priced)."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self._pages: Dict[int, RangeSet] = {}

    def record_write(self, page: int, offset: int, length: int) -> None:
        """A store of ``length`` bytes at in-page ``offset``."""
        if not 0 <= offset < self.page_size:
            raise ValueError(f"offset {offset} outside page")
        rs = self._pages.get(page)
        if rs is None:
            rs = RangeSet()
            self._pages[page] = rs
        rs.add(offset, length)
        rs.clamp(self.page_size)

    @property
    def dirty_pages(self) -> List[int]:
        """Pages written in the current interval."""
        return sorted(self._pages)

    def modified_bytes(self, page: int) -> int:
        """Diff size for ``page`` (0 when untouched)."""
        rs = self._pages.get(page)
        return rs.byte_count if rs else 0

    def drain(self) -> Dict[int, int]:
        """Close the interval: return {page: modified_bytes} and reset."""
        out = {p: rs.byte_count for p, rs in self._pages.items()}
        self._pages.clear()
        return out

    def __bool__(self) -> bool:
        return bool(self._pages)
