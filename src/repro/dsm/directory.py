"""Static home assignment for pages and locks.

LRC needs no page directory for fetches (write notices name the writer),
but two things still need a well-known home: the *initial* holder of a
page nobody has written yet, and the serializing manager of each lock.
The assignment policy is pluggable because it shifts load visibly at
small processor counts (all benchmarks default to round-robin, which is
what distributed-lock folklore and the SPLASH codes use).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Sequence, Tuple


class HomePolicy:
    """Maps page and lock ids to their home node."""

    def __init__(self, nprocs: int, scheme: str = "round_robin"):
        if nprocs < 1:
            raise ValueError("need at least one processor")
        if scheme not in ("round_robin", "block", "node0"):
            raise ValueError(f"unknown home scheme {scheme!r}")
        self.nprocs = nprocs
        self.scheme = scheme
        self._npages_hint = 0
        self._extents: List[Tuple[int, int]] = []
        self._extent_starts: List[int] = []
        #: Cached bulk home table (see :meth:`page_homes`); invalidated
        #: whenever the inputs of the mapping change.
        self._table: List[int] = []

    def set_page_count(self, npages: int) -> None:
        """Tell the block scheme how many pages exist."""
        self._npages_hint = npages
        self._table = []

    def set_allocations(self, extents: Sequence[Tuple[int, int]]) -> None:
        """Tell the block scheme where the allocations live.

        Each extent is ``(first_page, n_pages)``.  The block scheme then
        divides every *allocation* among the nodes — the distribution an
        SPMD program gets from first-touch initialization, so a
        block-partitioned array starts out home-owned by the node that
        will work on it (no cold redistribution storm).
        """
        self._extents = sorted((int(a), int(b)) for a, b in extents if b > 0)
        self._extent_starts = [a for a, _ in self._extents]
        self._table = []

    def page_home(self, page: int) -> int:
        """Home node of a shared page."""
        if page < 0:
            raise ValueError("negative page id")
        if self.scheme == "node0":
            return 0
        if self.scheme == "block":
            if self._extents:
                i = bisect.bisect_right(self._extent_starts, page) - 1
                if i >= 0:
                    first, count = self._extents[i]
                    if first <= page < first + count:
                        per = -(-count // self.nprocs)
                        return min((page - first) // per, self.nprocs - 1)
            if self._npages_hint:
                per = -(-self._npages_hint // self.nprocs)
                return min(page // per, self.nprocs - 1)
        return page % self.nprocs

    def page_homes(self, npages: int) -> List[int]:
        """Home nodes for pages ``0..npages-1``, computed in bulk.

        Agrees with :meth:`page_home` page-for-page but builds the whole
        table with range arithmetic instead of one Python call per page
        — the cluster hands this list to every node's
        :class:`~repro.dsm.NodePageTable`, so the (shared) policy pays
        the cost once instead of nodes × pages times.  The table is
        cached until :meth:`set_page_count` / :meth:`set_allocations`
        change the mapping.
        """
        if len(self._table) != npages:
            self._table = self._build_table(npages)
        return self._table

    def _build_table(self, npages: int) -> List[int]:
        n = self.nprocs
        if self.scheme == "node0":
            return [0] * npages
        if self.scheme != "block":
            # round_robin: tile one modulo period across the table.
            reps = -(-npages // n)
            return (list(range(n)) * reps)[:npages]
        if self._npages_hint:
            per = -(-self._npages_hint // n)
            table = [min(p // per, n - 1) for p in range(npages)]
        else:
            reps = -(-npages // n)
            table = (list(range(n)) * reps)[:npages]
        for first, count in self._extents:
            per = -(-count // n)
            stop = min(first + count, npages)
            for p in range(first, stop):
                if p >= 0:
                    table[p] = min((p - first) // per, n - 1)
        return table

    def lock_home(self, lock_id: int) -> int:
        """Managing node of a lock."""
        if lock_id < 0:
            raise ValueError("negative lock id")
        if self.scheme == "node0":
            return 0
        return lock_id % self.nprocs

    @property
    def barrier_manager(self) -> int:
        """The node that gathers barrier arrivals (centralized manager)."""
        return 0
