"""Per-node shared-page state and the cluster-wide segment store.

Data vs. state: the *values* of shared memory live once, in the
:class:`SharedSegment`'s numpy buffer.  Because all our applications are
properly synchronized (and the simulation kernel is sequential), reads
through the global buffer return exactly what a real replicated DSM
would return — DESIGN.md section 6 discusses this standard
execution-driven trick.  What each node keeps privately is the page
*state machine* that generates the protocol's traffic and costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..memory import AddressSpace


class PageState(enum.Enum):
    """Access rights of a node's copy of one shared page."""

    INVALID = "invalid"
    """No usable copy; any access faults and fetches."""

    VALID_RO = "valid_ro"
    """Clean copy; reads are free, the first write twins the page."""

    WRITABLE = "writable"
    """Twinned copy being written in the current interval."""


class PageMeta:
    """One node's view of one shared page.

    A plain ``__slots__`` class rather than a dataclass: one instance
    exists per (node, page) over the whole shared address space, so
    construction cost and per-instance memory are on the cluster-build
    hot path.

    Attributes:

    * ``state`` — the :class:`PageState` of this node's copy.
    * ``source`` — best-known holder of a current copy (the latest
      writer we have a notice from, or the page's home before anyone
      wrote it).
    * ``ever_valid`` — whether this node has ever held a copy (first
      access fetches a full page; later refreshes can fetch diffs).
    * ``pending_diffs`` — unapplied foreign writes:
      ``(proc, seq) -> modified_bytes``.  A page with pending diffs and
      a surviving local copy fetches just the diffs; a page gone
      INVALID refetches in full.
    * ``twin_live`` — whether a twin exists for the current interval
      (first-write bookkeeping).
    """

    __slots__ = ("state", "source", "ever_valid", "pending_diffs",
                 "twin_live")

    def __init__(self, state: PageState = PageState.INVALID,
                 source: int = 0, ever_valid: bool = False,
                 pending_diffs: Optional[Dict[Tuple[int, int], int]] = None,
                 twin_live: bool = False):
        self.state = state
        self.source = source
        self.ever_valid = ever_valid
        self.pending_diffs: Dict[Tuple[int, int], int] = (
            {} if pending_diffs is None else pending_diffs)
        self.twin_live = twin_live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PageMeta(state={self.state}, source={self.source}, "
                f"ever_valid={self.ever_valid}, "
                f"pending_diffs={self.pending_diffs}, "
                f"twin_live={self.twin_live})")


class NodePageTable:
    """All shared-page metadata for one node.

    ``home_of`` may be a callable (``page -> home node``) or a
    pre-computed sequence of homes indexed by page — the cluster path
    passes :meth:`repro.dsm.HomePolicy.page_homes`'s bulk table so the
    65k-page default address space is not walked through a Python call
    per page at every node construction.
    """

    def __init__(self, npages: int, home_of, self_id: int):
        if callable(home_of):
            self._homes = [home_of(p) for p in range(npages)]
        else:
            self._homes = home_of
        #: Lazily materialized metadata: pages the node never touches
        #: (the vast majority of the statically reserved address space)
        #: never get a PageMeta at all.  An absent entry means "the
        #: default state": INVALID, sourced from the page's home — or
        #: VALID_RO when the page is homed here and :meth:`seed_homes`
        #: has run.
        self._meta: Dict[int, PageMeta] = {}
        self._homes_seeded = False
        self.self_id = self_id
        self.npages = npages
        #: Pages made WRITABLE since the last interval close; lets
        #: :meth:`end_interval_downgrade` touch only written pages
        #: instead of scanning the whole (mostly idle) address space.
        self._written: Set[int] = set()

    def __getitem__(self, page: int) -> PageMeta:
        m = self._meta.get(page)
        if m is None:
            home = self._homes[page]
            m = PageMeta(source=home)
            if self._homes_seeded and home == self.self_id:
                m.state = PageState.VALID_RO
                m.ever_valid = True
            self._meta[page] = m
        return m

    def seed_homes(self, homes: Sequence[int]) -> None:
        """Install the final home table and seed initial validity.

        Pages homed on this node start VALID_RO (they are "born" in
        this node's memory); everything else faults on first touch.
        Called by the protocol engine once allocations are final —
        the home table may differ from construction time because the
        block scheme divides the *allocated* pages among the nodes.
        Already-materialized metadata is re-seeded; everything else is
        captured by the lazy default in :meth:`__getitem__`.
        """
        self._homes = homes
        self._homes_seeded = True
        me = self.self_id
        for page, m in self._meta.items():
            home = homes[page]
            m.source = home
            if home == me:
                m.state = PageState.VALID_RO
                m.ever_valid = True

    def pages_in_state(self, state: PageState) -> List[int]:
        """All pages currently in ``state`` (diagnostics, tests)."""
        out = [i for i, m in self._meta.items() if m.state == state]
        if state in (PageState.INVALID, PageState.VALID_RO):
            out.extend(i for i in range(self.npages)
                       if i not in self._meta
                       and self._virtual_state(i) == state)
        return sorted(out)

    def _virtual_state(self, page: int) -> PageState:
        """State a not-yet-materialized page would have."""
        if self._homes_seeded and self._homes[page] == self.self_id:
            return PageState.VALID_RO
        return PageState.INVALID

    def end_interval_downgrade(self) -> List[int]:
        """Close the interval: WRITABLE pages drop their twin and become
        VALID_RO (their writes are now published via notices).  Returns
        the downgraded pages (in page order)."""
        out = []
        meta = self._meta
        for i in sorted(self._written):
            m = meta[i]
            if m.state == PageState.WRITABLE:
                m.state = PageState.VALID_RO
                m.twin_live = False
                out.append(i)
        self._written.clear()
        return out

    def apply_notice(self, page: int, proc: int, seq: int,
                     modified_bytes: int) -> bool:
        """Process a foreign write notice (the lazy-invalidate action).

        The local copy — if one exists — is never destroyed: a node that
        has ever held the page can always reconstruct it by applying the
        pending writers' diffs in causal order (multiple-writer LRC).
        The notice makes the copy *stale*: accesses fault until the owed
        modifications are fetched (as diffs, or as a whole page when most
        of it changed — see the engine's fault policy).

        Returns True when a previously-usable copy just went stale (the
        caller drops the board's cached buffer then).
        """
        m = self[page]
        if proc == self.self_id:
            return False  # own writes never invalidate the local copy
        m.source = proc  # latest writer becomes the fetch target
        was_usable = m.state != PageState.INVALID and not m.pending_diffs
        m.pending_diffs[(proc, seq)] = modified_bytes
        return was_usable

    def install_full_copy(self, page: int) -> None:
        """A full page arrived: all pending foreign writes are subsumed."""
        m = self[page]
        m.state = PageState.VALID_RO
        m.ever_valid = True
        m.pending_diffs.clear()

    def apply_diffs(self, page: int, intervals: List[Tuple[int, int]]) -> None:
        """Diff replies for ``intervals`` arrived and were applied."""
        m = self[page]
        for key in intervals:
            m.pending_diffs.pop(key, None)

    def make_writable(self, page: int) -> None:
        """First write of the interval: twin created, write access on."""
        m = self[page]
        if m.state == PageState.INVALID:
            raise ValueError(f"page {page}: cannot write an invalid copy")
        m.state = PageState.WRITABLE
        m.twin_live = True
        m.ever_valid = True
        self._written.add(page)


class SharedSegment:
    """The cluster-wide shared address space and its authoritative data.

    Allocation is page-granular and bump-pointer (the paper statically
    reserves a fixed portion of the address space for DSM).  Arrays are
    allocated page-aligned so that false sharing between *different*
    arrays never muddies an experiment unless asked for.
    """

    def __init__(self, address_space: AddressSpace):
        self.asp = address_space
        self.page_size = address_space.page_size
        self.npages = address_space.dsm_bytes // self.page_size
        self._next_page = 0
        self._buffers: List[np.ndarray] = []
        #: (first_page, n_pages) of every allocation, in order.
        self.extents: List[Tuple[int, int]] = []

    def alloc(self, shape, dtype=np.float64) -> "SharedAlloc":
        """Allocate a page-aligned shared array."""
        arr = np.zeros(shape, dtype=dtype)
        nbytes = int(arr.nbytes)
        pages = max(1, -(-nbytes // self.page_size))
        if self._next_page + pages > self.npages:
            raise MemoryError(
                f"DSM segment exhausted: need {pages} pages, "
                f"{self.npages - self._next_page} free"
            )
        first = self._next_page
        self._next_page += pages
        self._buffers.append(arr)
        self.extents.append((first, pages))
        return SharedAlloc(self, arr, first, pages)

    @property
    def pages_allocated(self) -> int:
        """Pages handed out so far."""
        return self._next_page

    def page_vaddr(self, page: int) -> int:
        """Virtual address of a DSM page (same on every node: SPMD)."""
        return self.asp.shared_page_addr(page)


@dataclass
class SharedAlloc:
    """One allocation inside the shared segment."""

    segment: SharedSegment
    data: np.ndarray
    first_page: int
    n_pages: int

    @property
    def base_vaddr(self) -> int:
        """Virtual base address of the allocation."""
        return self.segment.page_vaddr(self.first_page)

    def byte_offset_to_page(self, offset: int) -> int:
        """DSM page index containing byte ``offset`` of this allocation."""
        if not 0 <= offset < self.n_pages * self.segment.page_size:
            raise ValueError(f"offset {offset} outside allocation")
        return self.first_page + offset // self.segment.page_size
