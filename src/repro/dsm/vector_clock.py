"""Vector timestamps for lazy release consistency.

LRC (Keleher et al., ISCA '92) orders *intervals* — the stretches of a
processor's execution between synchronization operations — by vector
time.  An acquiring processor must see exactly the write notices of all
intervals that happened-before its acquire; vector clocks are how each
node knows which notices its peer still lacks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class VectorClock:
    """A fixed-width vector timestamp over ``nprocs`` processors."""

    __slots__ = ("v",)

    def __init__(self, nprocs: int = 0, values: Sequence[int] = ()):
        if values is not None and len(values):
            self.v = np.asarray(values, dtype=np.int64).copy()
        else:
            if nprocs <= 0:
                raise ValueError("need nprocs or explicit values")
            self.v = np.zeros(nprocs, dtype=np.int64)

    # -- constructors ------------------------------------------------------------
    def copy(self) -> "VectorClock":
        """Independent copy."""
        return VectorClock(values=self.v)

    @property
    def nprocs(self) -> int:
        """Vector width."""
        return int(self.v.size)

    # -- access ---------------------------------------------------------------
    def __getitem__(self, proc: int) -> int:
        return int(self.v[proc])

    def tick(self, proc: int) -> int:
        """Advance ``proc``'s component (a new interval begins); returns
        the new sequence number."""
        self.v[proc] += 1
        return int(self.v[proc])

    def merge(self, other: "VectorClock") -> None:
        """Component-wise maximum, in place (acquire-side update)."""
        self._check(other)
        np.maximum(self.v, other.v, out=self.v)

    def dominates(self, other: "VectorClock") -> bool:
        """``self >= other`` component-wise: every interval known to
        ``other`` is known to ``self``."""
        self._check(other)
        return bool(np.all(self.v >= other.v))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates: causally unordered."""
        return not self.dominates(other) and not other.dominates(self)

    def covers(self, proc: int, seq: int) -> bool:
        """Whether interval ``(proc, seq)`` is already known."""
        return int(self.v[proc]) >= seq

    # -- comparison ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.v.shape == other.v.shape and bool(np.all(self.v == other.v))

    def __hash__(self):  # pragma: no cover - explicit unhashable
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.v.tolist()}"

    def as_list(self) -> List[int]:
        """Plain-list snapshot (wire representation)."""
        return self.v.tolist()

    def _check(self, other: "VectorClock") -> None:
        if self.v.size != other.v.size:
            raise ValueError(
                f"vector width mismatch: {self.v.size} vs {other.v.size}"
            )

    @property
    def wire_bytes(self) -> int:
        """Serialized size on the network (8 bytes per component)."""
        return 8 * self.nprocs
