"""Result export: CSV and JSON for external plotting tools.

``python -m repro.harness`` prints text; programmatic users (or anyone
regenerating the paper's figures with matplotlib/gnuplot) can dump any
result via these helpers instead.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

from .results import SeriesResult, TableResult

Result = Union[SeriesResult, TableResult]


def to_csv(result: Result) -> str:
    """Render a result as CSV text (header row + data rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    if isinstance(result, SeriesResult):
        names = list(result.series)
        writer.writerow([result.x_label] + names)
        for i, x in enumerate(result.xs):
            writer.writerow([x] + [result.series[n][i] for n in names])
    elif isinstance(result, TableResult):
        writer.writerow(["row"] + list(result.columns))
        for label, values in result.rows.items():
            writer.writerow([label] + list(values))
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return buf.getvalue()


def to_json(result: Result, indent: int = 2) -> str:
    """Render a result as a JSON document."""
    if isinstance(result, SeriesResult):
        doc = {
            "kind": "series",
            "name": result.name,
            "x_label": result.x_label,
            "xs": result.xs,
            "series": result.series,
            "notes": result.notes,
        }
    elif isinstance(result, TableResult):
        doc = {
            "kind": "table",
            "name": result.name,
            "columns": list(result.columns),
            "rows": result.rows,
            "notes": result.notes,
        }
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(doc, indent=indent)


def write_result(result: Result, path: str) -> None:
    """Write a result to ``path``; the suffix picks the format
    (``.csv`` or ``.json``)."""
    if path.endswith(".csv"):
        text = to_csv(result)
    elif path.endswith(".json"):
        text = to_json(result)
    else:
        raise ValueError(f"unsupported export suffix in {path!r}")
    with open(path, "w") as fh:
        fh.write(text)
