"""Result export: CSV and JSON for external plotting tools.

``python -m repro.harness`` prints text; programmatic users (or anyone
regenerating the paper's figures with matplotlib/gnuplot) can dump any
result via these helpers instead.

This module also owns the :class:`MetricsLog` — the collector that lets
``python -m repro.harness <exp> --metrics out/`` write a structured
metrics JSON next to every experiment result: each simulated cluster run
inside an experiment records its end-of-run
:class:`~repro.obs.MetricsRegistry` snapshot here, tagged with the
workload that produced it (see docs/observability.md).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from .results import SeriesResult, TableResult

Result = Union[SeriesResult, TableResult]


@dataclass
class MetricsLog:
    """Accumulates per-run metrics snapshots during one experiment."""

    entries: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, app: str, interface: str, nprocs: int,
               snapshot: Dict[str, Any], **extra: Any) -> None:
        """Append one run's snapshot with its identifying metadata."""
        entry: Dict[str, Any] = {
            "app": app, "interface": interface, "nprocs": nprocs,
        }
        entry.update(extra)
        entry["metrics"] = snapshot
        self.entries.append(entry)

    def clear(self) -> None:
        """Drop everything (the runner clears between experiments)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def to_json(self, name: str = "", indent: int = 2) -> str:
        """All recorded runs as one JSON document."""
        return json.dumps(
            {"kind": "metrics_log", "name": name, "runs": self.entries},
            indent=indent,
        )


#: The collector :mod:`repro.harness.experiments` records into; the CLI
#: runner clears it before each experiment and dumps it afterwards.
GLOBAL_METRICS_LOG = MetricsLog()


def to_csv(result: Result) -> str:
    """Render a result as CSV text (header row + data rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    if isinstance(result, SeriesResult):
        names = list(result.series)
        writer.writerow([result.x_label] + names)
        for i, x in enumerate(result.xs):
            writer.writerow([x] + [result.series[n][i] for n in names])
    elif isinstance(result, TableResult):
        writer.writerow(["row"] + list(result.columns))
        for label, values in result.rows.items():
            writer.writerow([label] + list(values))
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return buf.getvalue()


def to_json(result: Result, indent: int = 2) -> str:
    """Render a result as a JSON document."""
    if isinstance(result, SeriesResult):
        doc = {
            "kind": "series",
            "name": result.name,
            "x_label": result.x_label,
            "xs": result.xs,
            "series": result.series,
            "notes": result.notes,
        }
    elif isinstance(result, TableResult):
        doc = {
            "kind": "table",
            "name": result.name,
            "columns": list(result.columns),
            "rows": result.rows,
            "notes": result.notes,
        }
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(doc, indent=indent)


def write_result(result: Result, path: str) -> None:
    """Write a result to ``path``; the suffix picks the format
    (``.csv`` or ``.json``)."""
    if path.endswith(".csv"):
        text = to_csv(result)
    elif path.endswith(".json"):
        text = to_json(result)
    else:
        raise ValueError(f"unsupported export suffix in {path!r}")
    with open(path, "w") as fh:
        fh.write(text)
