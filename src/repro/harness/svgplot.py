"""Dependency-free SVG line charts for harness results.

The evaluation's figures are line charts (speedup vs processors, latency
vs message size, ...).  This module renders a :class:`SeriesResult` to a
standalone SVG string so the paper's figures can be *regenerated as
images* without matplotlib — nothing but the standard library.

Usage::

    from repro.harness import run_experiment
    from repro.harness.svgplot import render_series_svg

    svg = render_series_svg(run_experiment("fig2"))
    open("fig2.svg", "w").write(svg)

or from the command line::

    python -m repro.harness fig2 --svg out/
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

from .results import SeriesResult

#: Color cycle (colorblind-safe-ish, dark on white).
PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
]

MARKERS = ["circle", "square", "diamond", "triangle"]


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n - 1)
    mag = 10 ** __import__("math").floor(__import__("math").log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    first = step * __import__("math").floor(lo / step)
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        if t >= lo - 1e-9 * span:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:.3g}"


def _marker(kind: str, x: float, y: float, color: str) -> str:
    if kind == "square":
        return (f'<rect x="{x-3:.1f}" y="{y-3:.1f}" width="6" height="6" '
                f'fill="{color}"/>')
    if kind == "diamond":
        return (f'<polygon points="{x:.1f},{y-4:.1f} {x+4:.1f},{y:.1f} '
                f'{x:.1f},{y+4:.1f} {x-4:.1f},{y:.1f}" fill="{color}"/>')
    if kind == "triangle":
        return (f'<polygon points="{x:.1f},{y-4:.1f} {x+4:.1f},{y+3:.1f} '
                f'{x-4:.1f},{y+3:.1f}" fill="{color}"/>')
    return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.2" fill="{color}"/>'


def render_series_svg(
    result: SeriesResult,
    width: int = 640,
    height: int = 420,
    series: Optional[Sequence[str]] = None,
    y_label: str = "",
    title: Optional[str] = None,
) -> str:
    """Render selected series of ``result`` as an SVG line chart."""
    result.validate()
    names = list(series) if series else list(result.series)
    for n in names:
        if n not in result.series:
            raise KeyError(f"series {n!r} not in result {result.name!r}")
    if not names or not result.xs:
        raise ValueError("nothing to plot")

    margin_l, margin_r, margin_t, margin_b = 64, 16, 36, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs = result.xs
    ys_all = [v for n in names for v in result.series[n]]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_all + [0.0]), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    parts.append(
        f'<text x="{width/2:.0f}" y="20" text-anchor="middle" '
        f'font-size="14">{html.escape(title or result.name)}</text>'
    )

    # axes + grid
    for t in _nice_ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width-margin_r}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{margin_l-6}" y="{y+4:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    for t in _nice_ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{height-margin_b}" stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{height-margin_b+16}" '
            f'text-anchor="middle">{_fmt(t)}</text>'
        )
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333333"/>'
    )
    parts.append(
        f'<text x="{width/2:.0f}" y="{height-10}" text-anchor="middle">'
        f'{html.escape(result.x_label)}</text>'
    )
    if y_label:
        parts.append(
            f'<text x="16" y="{height/2:.0f}" text-anchor="middle" '
            f'transform="rotate(-90 16 {height/2:.0f})">'
            f'{html.escape(y_label)}</text>'
        )

    # series
    for i, name in enumerate(names):
        color = PALETTE[i % len(PALETTE)]
        marker = MARKERS[i % len(MARKERS)]
        pts = [(sx(x), sy(y)) for x, y in zip(xs, result.series[name])]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in pts:
            parts.append(_marker(marker, x, y, color))
        # legend entry
        ly = margin_t + 8 + i * 16
        lx = margin_l + 10
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx+18}" y2="{ly}" '
            f'stroke="{color}" stroke-width="1.8"/>'
        )
        parts.append(_marker(marker, lx + 9, ly, color))
        parts.append(
            f'<text x="{lx+24}" y="{ly+4}">{html.escape(name)}</text>'
        )

    parts.append("</svg>")
    return "".join(parts)
