"""Generic design-space sweeps over simulation parameters.

The paper's evaluation sweeps two knobs (shared page size, Message Cache
size); its discussion motivates others — "as network interface
processors are getting more and more powerful, substantial overhead can
be reduced if protocol processing can be done in the network interface".
This utility sweeps *any* :class:`~repro.params.SimParams` field against
any application workload, so such what-ifs are one call::

    sweep_param("cholesky", workload, "ni_freq_hz",
                [16.5e6, 33e6, 66e6, 132e6])
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..params import SimParams
from .parallel import RunSpec, run_map
from .results import SeriesResult


def sweep_param(
    app: str,
    workload,
    param_name: str,
    values: Sequence,
    nprocs: int = 8,
    interfaces: Sequence[str] = ("cni", "standard"),
    base_params: Optional[SimParams] = None,
    metric: str = "elapsed_ms",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Run ``app`` across ``values`` of one parameter.

    ``metric`` selects the y series: ``elapsed_ms``, ``speedup_vs_first``
    (normalized to each interface's first point) or ``hit_ratio_pct``.
    The (interface x value) grid runs through the parallel executor's
    shared warm pool (docs/parallel_runs.md), so chained sweeps don't
    re-pay worker spawn; ``jobs`` overrides
    :func:`~repro.harness.parallel.default_jobs`.
    """
    base = base_params or SimParams()
    if not values:
        raise ValueError(f"sweep of {param_name!r} needs at least one value")
    if not hasattr(base, param_name):
        raise AttributeError(f"SimParams has no field {param_name!r}")
    if metric not in ("elapsed_ms", "speedup_vs_first", "hit_ratio_pct"):
        raise ValueError(f"unknown metric {metric!r}")
    result = SeriesResult(
        name=f"sweep-{param_name}-{app}",
        x_label=param_name,
        xs=[float(v) for v in values],
    )
    specs = [
        RunSpec(app, base.replace(**{param_name: v,
                                     "num_processors": nprocs}),
                iface, workload)
        for iface in interfaces for v in values
    ]
    runs = iter(run_map(specs, jobs=jobs))
    for iface in interfaces:
        raw = []
        for _v in values:
            stats = next(runs)
            if metric == "hit_ratio_pct":
                raw.append(100.0 * stats.network_cache_hit_ratio)
            else:
                raw.append(stats.elapsed_ns / 1e6)
        if metric == "speedup_vs_first":
            first = raw[0]
            if first == 0:
                raise ValueError(
                    f"speedup_vs_first is undefined: the first point "
                    f"({param_name}={values[0]!r}, {iface}) took 0 ms")
            raw = [first / v for v in raw]
        result.series[f"{iface}_{metric}"] = raw
    result.validate()
    return result
