"""Parallel execution of independent simulation runs.

Every experiment in this harness is a grid of *independent* simulated
cluster runs (interface x parameter value x processor count).  The runs
share nothing at runtime — each builds its own :class:`~repro.runtime.Cluster`
— so they fan out across a process pool the way Balsam fans independent
jobs across a pilot allocation, with one hard requirement on top:
**bit-for-bit determinism**.  A sweep executed with ``--jobs 8`` must
produce exactly the per-point :meth:`~repro.engine.RunStats.digest`
values that ``--jobs 1`` produces (the in-process debugging path), which
the executor guarantees by

* describing each run as an immutable, picklable :class:`RunSpec`;
* seeding each worker's global RNGs from the spec's position in the
  sweep (the simulation's own randomness — fault plans, Water's initial
  state — is already carried by explicit seeds inside the spec);
* collecting results strictly in submission order and doing all shared
  mutation (the :data:`~repro.harness.export.GLOBAL_METRICS_LOG`
  recording) in the parent process.

Worker metric trees come back inside ``RunStats.metrics`` /
``RunStats.metric_kinds`` and fold into one sweep-wide tree through the
existing dotted-hierarchy merge (:func:`merge_run_metrics` →
:func:`repro.obs.registry_from_snapshot` + :meth:`MetricsRegistry.merge`).

See docs/parallel_runs.md for the design and the `--jobs` CLI usage.
"""

from __future__ import annotations

import hashlib
import os
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import RunStats
from ..obs import MetricsRegistry, registry_from_snapshot
from ..params import SimParams

__all__ = [
    "RunFailure",
    "RunSpec",
    "default_jobs",
    "execute_run",
    "merge_run_metrics",
    "run_map",
    "set_default_jobs",
]

#: Worker-RNG seed base, mixed with each spec's sweep position.
_SEED_BASE = 0x5EED_C0DE

#: Module-wide default worker count used when ``run_map(jobs=None)``.
#: Starts at 1 (today's in-process behaviour) so library callers and the
#: test suite are unaffected until the CLI — or a user — opts in.
_default_jobs: int = 1


def default_jobs() -> int:
    """The worker count ``run_map`` uses when ``jobs`` is not given."""
    return _default_jobs


def set_default_jobs(jobs: Optional[int]) -> int:
    """Set the module-wide default worker count; returns the value set.

    ``None`` means "all cores" (``os.cpu_count()``); the CLI's ``--jobs``
    flag lands here.  Values below 1 are rejected.
    """
    global _default_jobs
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs={jobs} must be >= 1")
    _default_jobs = jobs
    return _default_jobs


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, ready to ship to a pool worker.

    Everything here must pickle: ``params`` is a frozen
    :class:`~repro.params.SimParams` (including any
    :class:`~repro.faults.FaultPlan`), ``workload`` one of the app config
    dataclasses (:class:`~repro.apps.JacobiConfig`,
    :class:`~repro.apps.WaterConfig`, :class:`~repro.apps.CholeskyConfig`,
    :class:`~repro.collectives.CollBenchConfig`).
    """

    app: str
    """Application kernel: ``jacobi``, ``water``, ``cholesky`` or
    ``collbench`` (the collective microbenchmark)."""

    params: SimParams
    """Full simulation configuration (processor count, fault plan, ...)."""

    interface: str = "cni"
    """Network interface: ``cni`` or ``standard``."""

    workload: Any = None
    """The app's config object (picklable dataclass)."""

    seed: Optional[int] = None
    """Worker global-RNG seed; when None it derives from the spec's
    position in the sweep, so jobs=1 and jobs=N seed identically."""

    meta: Tuple[Tuple[str, Any], ...] = ()
    """Extra ``(key, value)`` metadata attached to the run's
    :class:`~repro.harness.export.MetricsLog` record."""

    def describe(self) -> str:
        """One-line human-readable form (bench banners, logs)."""
        return (f"{self.app}/{self.interface}"
                f"/p{self.params.num_processors}")


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one run that died with a *typed* simulation
    error (``run_map(on_error="record")``; see docs/reliability.md).

    Picklable by construction — it crosses the process-pool boundary in
    place of the :class:`~repro.engine.RunStats` a healthy run returns —
    so a worker raising :class:`~repro.runtime.RuntimeTimeout` under a
    fault plan becomes one failed *point* of the sweep instead of a bare
    pool exception aborting the whole sweep.
    """

    spec_desc: str
    """``RunSpec.describe()`` of the failed run."""

    error_type: str
    """Exception class name (``RuntimeTimeout``, ``PeerDead``, ...)."""

    message: str
    """``str(exc)`` — deterministic, since the simulation is."""

    def digest(self) -> str:
        """Deterministic fingerprint (mirrors ``RunStats.digest`` so
        jobs=1 and jobs=N sweeps compare point-for-point)."""
        h = hashlib.sha256()
        for part in (self.spec_desc, self.error_type, self.message):
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()


def _typed_errors() -> tuple:
    """Exception types ``on_error="record"`` converts to RunFailure —
    every *typed* simulation outcome; anything else (a genuine harness
    bug) still propagates.  Imported lazily to keep this module light."""
    from ..collectives import CollectiveError
    from ..core.reliability import DeliveryFailed
    from ..engine import SimulationError
    from ..runtime.errors import MessagingError

    return (SimulationError, DeliveryFailed, CollectiveError,
            MessagingError)


def _seed_global_rngs(spec: RunSpec, index: int) -> None:
    """Give the executing process its own deterministic RNG state.

    The simulation's meaningful randomness travels in explicit seeds
    (``FaultPlan.seed``, ``WaterConfig.seed``); this guards against any
    incidental use of the *global* ``random`` / ``numpy.random`` state,
    which a forked worker would otherwise inherit mid-stream from the
    parent — the classic way parallel runs drift from serial ones.
    """
    seed = spec.seed if spec.seed is not None else _SEED_BASE + index
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))


def execute_run(spec: RunSpec, index: int = 0,
                on_error: str = "raise") -> Any:
    """Execute one spec in the current process and return its stats.

    This is both the pool-worker body and the ``--jobs 1`` in-process
    path, so the two are one code path by construction.  Dispatch goes
    through the workload registry (:func:`repro.apps.run`), so any
    registered workload is executable by spec with no executor edits.

    ``on_error="record"`` converts a *typed* simulation error (timeout,
    dead peer, delivery failure, stuck report — the expected outcomes
    under a fault plan) into a :class:`RunFailure` instead of raising.
    """
    from ..apps import run as run_workload

    _seed_global_rngs(spec, index)
    if on_error == "record":
        try:
            return run_workload(spec.app, spec.params, spec.interface,
                                spec.workload)[0]
        except _typed_errors() as exc:
            return RunFailure(spec.describe(), type(exc).__name__, str(exc))
    return run_workload(spec.app, spec.params, spec.interface,
                        spec.workload)[0]


def _worker(job: Tuple[int, RunSpec, str]) -> Tuple[int, Any]:
    index, spec, on_error = job
    return index, execute_run(spec, index, on_error=on_error)


def run_map(specs: Sequence[RunSpec], jobs: Optional[int] = None,
            record: bool = True, on_error: str = "raise") -> List[Any]:
    """Run every spec; return their :class:`RunStats` in spec order.

    ``jobs`` is the worker-process count (None → :func:`default_jobs`;
    1 → run in-process, no pool).  With ``record=True`` each run is
    recorded into :data:`~repro.harness.export.GLOBAL_METRICS_LOG` — in
    the parent, in spec order, with the run's ``digest`` attached — so
    ``--metrics`` exports are byte-identical at any jobs setting.

    ``on_error="record"`` returns a :class:`RunFailure` in the failed
    run's slot (typed errors only) instead of letting one dying worker
    abort the whole sweep; failures are skipped by the metrics-log
    recording since they produced no metrics.
    """
    specs = list(specs)
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error={on_error!r} must be 'raise' or 'record'")
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs={jobs} must be >= 1")
    if not specs:
        return []

    workers = min(jobs, len(specs))
    if workers <= 1:
        results = [execute_run(spec, i, on_error=on_error)
                   for i, spec in enumerate(specs)]
    else:
        jobs_iter = ((i, spec, on_error) for i, spec in enumerate(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = [stats for _i, stats in pool.map(_worker, jobs_iter)]

    if record:
        from .export import GLOBAL_METRICS_LOG

        for spec, stats in zip(specs, results):
            if isinstance(stats, RunFailure):
                continue
            GLOBAL_METRICS_LOG.record(
                spec.app, spec.interface, spec.params.num_processors,
                stats.metrics, digest=stats.digest(), **dict(spec.meta))
    return results


def merge_run_metrics(runs: Iterable[RunStats],
                      into: Optional[MetricsRegistry] = None,
                      prefix: str = "") -> MetricsRegistry:
    """Fold every run's metric tree into one registry.

    Each run's flat snapshot is rebuilt into a registry
    (:func:`repro.obs.registry_from_snapshot`, using the run's
    ``metric_kinds``) and merged through the standard dotted-hierarchy
    merge: counters sum, gauges max, histograms add bucket-wise.  This
    is how a parallel sweep gets its cluster-wide totals despite every
    run having executed in a different process.
    """
    merged = into if into is not None else MetricsRegistry()
    for stats in runs:
        merged.merge(registry_from_snapshot(stats.metrics,
                                            stats.metric_kinds),
                     prefix=prefix)
    return merged
