"""Parallel execution of independent simulation runs.

Every experiment in this harness is a grid of *independent* simulated
cluster runs (interface x parameter value x processor count).  The runs
share nothing at runtime — each builds its own :class:`~repro.runtime.Cluster`
— so they fan out across a process pool the way Balsam fans independent
jobs across a pilot allocation, with one hard requirement on top:
**bit-for-bit determinism**.  A sweep executed with ``--jobs 8`` must
produce exactly the per-point :meth:`~repro.engine.RunStats.digest`
values that ``--jobs 1`` produces (the in-process debugging path), which
the executor guarantees by

* describing each run as an immutable, picklable :class:`RunSpec`;
* seeding each worker's global RNGs from the spec's position in the
  sweep (the simulation's own randomness — fault plans, Water's initial
  state — is already carried by explicit seeds inside the spec);
* re-sequencing results by sweep position in the parent (chunks finish
  out of order; the result list and all shared mutation — the
  :data:`~repro.harness.export.GLOBAL_METRICS_LOG` recording — are
  strictly in spec order).

The pool itself is **warm**: created lazily on the first ``run_map``
that needs workers, sized by :func:`default_jobs`, and reused across
calls, so an experiment made of many small sweeps pays worker
spawn + interpreter import once per *process*, not once per sweep.
Workers pre-import the simulation stack on spawn
(:func:`_warm_worker`), specs ship in per-worker **chunks** whose shared
``SimParams`` / workload configs are pickled once per chunk rather than
once per point, and the pool is torn down by ``atexit`` (or immediately
when a worker raises an untyped error) so no orphan workers outlive the
harness.  Lifecycle and overhead are instrumented under the
``harness.pool.*`` metrics (:func:`pool_metrics`).

Worker metric trees come back inside ``RunStats.metrics`` /
``RunStats.metric_kinds`` and fold into one sweep-wide tree through the
existing dotted-hierarchy merge (:func:`merge_run_metrics` →
:func:`repro.obs.registry_from_snapshot` + :meth:`MetricsRegistry.merge`).

See docs/parallel_runs.md for the design and the `--jobs` CLI usage.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import random
import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import RunStats
from ..obs import MetricsRegistry, registry_from_snapshot
from ..params import SimParams

__all__ = [
    "POOL_METRICS",
    "RUN_DOC_SCHEMA_VERSION",
    "RunFailure",
    "RunSpec",
    "default_jobs",
    "effective_cores",
    "execute_run",
    "merge_run_metrics",
    "pool_metrics",
    "pool_size",
    "run_map",
    "set_default_jobs",
    "shutdown_pool",
]

#: Worker-RNG seed base, mixed with each spec's sweep position.
_SEED_BASE = 0x5EED_C0DE

#: Format version of the ``run_spec`` / ``run_failure`` JSON documents
#: (:meth:`RunSpec.to_json`).  Bump on any incompatible change to the
#: document shape; ``from_json`` rejects versions it does not read —
#: a store written by a different format must fail loudly, not be
#: half-read (docs/service.md).
#:
#: Version 2 added ``params.topology`` (the fabric spec string).  A
#: run_spec with no topology still *emits* version 1 — byte-identical
#: to a pre-topology document, so content-addressed RunStore keys for
#: legacy runs are stable across the upgrade — and readers accept both.
RUN_DOC_SCHEMA_VERSION = 2

#: Document versions :func:`_check_doc` accepts on read.
_READABLE_SCHEMA_VERSIONS = (1, RUN_DOC_SCHEMA_VERSION)


def _check_doc(doc: Any, kind: str) -> Dict[str, Any]:
    """Shared ``from_json`` validation: kind tag + schema version."""
    if isinstance(doc, str):
        doc = json.loads(doc)
    if not isinstance(doc, dict) or doc.get("kind") != kind:
        raise ValueError(f"not a {kind} document")
    version = doc.get("schema_version")
    if version not in _READABLE_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported {kind} schema_version {version!r}; this build "
            f"reads versions {list(_READABLE_SCHEMA_VERSIONS)}")
    return doc

#: Module-wide default worker count used when ``run_map(jobs=None)``.
#: Starts at 1 (today's in-process behaviour) so library callers and the
#: test suite are unaffected until the CLI — or a user — opts in.
_default_jobs: int = 1

#: Chunks per worker the chunksize heuristic aims for: enough chunks
#: that a slow point does not strand the other workers idle, few enough
#: that per-chunk submit/pickle overhead stays negligible.
_CHUNKS_PER_WORKER = 2

#: Dispatch-overhead histogram buckets (ns per point): spans IPC noise
#: (~tens of us) up to a full worker cold-start (~hundreds of ms).
_OVERHEAD_BUCKETS_NS: Tuple[float, ...] = (
    10_000.0, 30_000.0, 100_000.0, 300_000.0, 1_000_000.0, 3_000_000.0,
    10_000_000.0, 30_000_000.0, 100_000_000.0, 1_000_000_000.0,
)

#: Parent-side registry for the executor's own lifecycle metrics.  These
#: are *harness* metrics (one registry per parent process), deliberately
#: separate from the per-run simulation registries that ship back inside
#: ``RunStats.metrics`` — see the ``harness.pool.*`` catalog section in
#: docs/observability.md.
POOL_METRICS = MetricsRegistry()
_pool_scope = POOL_METRICS.scope("harness.pool")
_m_spawns = _pool_scope.counter("spawns")
_m_workers = _pool_scope.counter("workers_provisioned")
_m_warm_hits = _pool_scope.counter("warm_hits")
_m_shutdowns = _pool_scope.counter("shutdowns")
_m_chunks = _pool_scope.counter("chunks_dispatched")
_m_points = _pool_scope.counter("points_dispatched")
_m_inline = _pool_scope.counter("points_inline")
_m_size = _pool_scope.gauge("size")
_m_overhead = _pool_scope.histogram("dispatch_overhead_ns",
                                    _OVERHEAD_BUCKETS_NS)

#: The warm pool (created lazily, survives across ``run_map`` calls).
_pool: Optional[ProcessPoolExecutor] = None
_pool_size: int = 0
_atexit_registered = False


def default_jobs() -> int:
    """The worker count ``run_map`` uses when ``jobs`` is not given."""
    return _default_jobs


def effective_cores() -> int:
    """Cores actually usable by this process: scheduler affinity where
    the platform exposes it (containers routinely pin below
    ``cpu_count``), otherwise ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _force_pool() -> bool:
    """``REPRO_POOL_FORCE=1`` disables the cpu-aware worker clamp —
    tests and the bench dispatch-overhead arm use it to exercise the
    real pool even on a 1-core machine."""
    return os.environ.get("REPRO_POOL_FORCE", "") == "1"


def set_default_jobs(jobs: Optional[int]) -> int:
    """Set the module-wide default worker count; returns the value set.

    ``None`` means "all cores" (``os.cpu_count()``); the CLI's ``--jobs``
    flag lands here.  Values below 1 are rejected.
    """
    global _default_jobs
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs={jobs} must be >= 1")
    _default_jobs = jobs
    return _default_jobs


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, ready to ship to a pool worker.

    Everything here must pickle: ``params`` is a frozen
    :class:`~repro.params.SimParams` (including any
    :class:`~repro.faults.FaultPlan`), ``workload`` one of the app config
    dataclasses (:class:`~repro.apps.JacobiConfig`,
    :class:`~repro.apps.WaterConfig`, :class:`~repro.apps.CholeskyConfig`,
    :class:`~repro.collectives.CollBenchConfig`).
    """

    app: str
    """Application kernel: ``jacobi``, ``water``, ``cholesky`` or
    ``collbench`` (the collective microbenchmark)."""

    params: SimParams
    """Full simulation configuration (processor count, fault plan, ...)."""

    interface: str = "cni"
    """Network interface: ``cni`` or ``standard``."""

    workload: Any = None
    """The app's config object (picklable dataclass)."""

    seed: Optional[int] = None
    """Worker global-RNG seed; when None it derives from the spec's
    position in the sweep, so jobs=1 and jobs=N seed identically."""

    meta: Tuple[Tuple[str, Any], ...] = ()
    """Extra ``(key, value)`` metadata attached to the run's
    :class:`~repro.harness.export.MetricsLog` record."""

    def describe(self) -> str:
        """One-line human-readable form (bench banners, logs)."""
        return (f"{self.app}/{self.interface}"
                f"/p{self.params.num_processors}")

    def to_doc(self) -> Dict[str, Any]:
        """The spec as a versioned, JSON-ready document (plain data).

        Topology-free specs declare schema version 1: they contain
        nothing a version-1 reader cannot decode, and emitting the old
        version keeps their canonical bytes — and therefore their
        content-addressed :meth:`digest` — identical to pre-topology
        documents."""
        from .serde import encode_params, encode_workload

        params_doc = encode_params(self.params)
        version = 1 if "topology" not in params_doc else RUN_DOC_SCHEMA_VERSION
        return {
            "kind": "run_spec",
            "schema_version": version,
            "app": self.app,
            "interface": self.interface,
            "params": params_doc,
            "workload": encode_workload(self.workload),
            "seed": self.seed,
            "meta": [[k, v] for k, v in self.meta],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys — byte-stable for a given
        spec, which is what :meth:`digest` hashes)."""
        return json.dumps(self.to_doc(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, doc: Any) -> "RunSpec":
        """Rebuild a spec from :meth:`to_json` text (or the parsed
        document).  Unknown ``schema_version`` values, unknown params
        fields and unknown workload types all raise :class:`ValueError`
        — forward compatibility is an explicit error, never a guess."""
        from .serde import decode_params, decode_workload

        doc = _check_doc(doc, "run_spec")
        meta = tuple((k, v) for k, v in doc.get("meta", []))
        return cls(app=doc["app"],
                   params=decode_params(doc["params"]),
                   interface=doc.get("interface", "cni"),
                   workload=decode_workload(doc.get("workload")),
                   seed=doc.get("seed"),
                   meta=meta)

    def digest(self) -> str:
        """Content digest of everything that determines the run's result.

        The run-farm store (:mod:`repro.service`) is keyed by this:
        identical digest == identical simulation == the stored
        :class:`~repro.engine.RunStats` is the answer.  ``meta`` is
        excluded — it labels log records, it never reaches the
        simulation.
        """
        doc = self.to_doc()
        del doc["meta"]
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one run that died with a *typed* simulation
    error (``run_map(on_error="record")``; see docs/reliability.md).

    Picklable by construction — it crosses the process-pool boundary in
    place of the :class:`~repro.engine.RunStats` a healthy run returns —
    so a worker raising :class:`~repro.runtime.RuntimeTimeout` under a
    fault plan becomes one failed *point* of the sweep instead of a bare
    pool exception aborting the whole sweep.
    """

    spec_desc: str
    """``RunSpec.describe()`` of the failed run."""

    error_type: str
    """Exception class name (``RuntimeTimeout``, ``PeerDead``, ...)."""

    message: str
    """``str(exc)`` — deterministic, since the simulation is."""

    def digest(self) -> str:
        """Deterministic fingerprint (mirrors ``RunStats.digest`` so
        jobs=1 and jobs=N sweeps compare point-for-point)."""
        h = hashlib.sha256()
        for part in (self.spec_desc, self.error_type, self.message):
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def to_json(self, indent: Optional[int] = None) -> str:
        """Versioned JSON form (the run-farm store's failure records).

        Still version 1: the failure document's shape did not change
        when ``params.topology`` arrived (the spec travels here only as
        its ``describe()`` string)."""
        return json.dumps({
            "kind": "run_failure",
            "schema_version": 1,
            "spec_desc": self.spec_desc,
            "error_type": self.error_type,
            "message": self.message,
        }, sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, doc: Any) -> "RunFailure":
        """Rebuild from :meth:`to_json` text (or the parsed document)."""
        doc = _check_doc(doc, "run_failure")
        return cls(doc["spec_desc"], doc["error_type"], doc["message"])


def _typed_errors() -> tuple:
    """Exception types ``on_error="record"`` converts to RunFailure —
    every *typed* simulation outcome; anything else (a genuine harness
    bug) still propagates.  Imported lazily to keep this module light."""
    from ..collectives import CollectiveError
    from ..core.reliability import DeliveryFailed
    from ..engine import SimulationError
    from ..runtime.errors import MessagingError

    return (SimulationError, DeliveryFailed, CollectiveError,
            MessagingError)


def _seed_global_rngs(spec: RunSpec, index: int) -> None:
    """Give the executing process its own deterministic RNG state.

    The simulation's meaningful randomness travels in explicit seeds
    (``FaultPlan.seed``, ``WaterConfig.seed``); this guards against any
    incidental use of the *global* ``random`` / ``numpy.random`` state,
    which a forked worker would otherwise inherit mid-stream from the
    parent — the classic way parallel runs drift from serial ones.
    """
    seed = spec.seed if spec.seed is not None else _SEED_BASE + index
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))


def execute_run(spec: RunSpec, index: int = 0,
                on_error: str = "raise") -> Any:
    """Execute one spec in the current process and return its stats.

    This is both the pool-worker body and the ``--jobs 1`` in-process
    path, so the two are one code path by construction.  Dispatch goes
    through the workload registry (:func:`repro.apps.run`), so any
    registered workload is executable by spec with no executor edits.

    ``on_error="record"`` converts a *typed* simulation error (timeout,
    dead peer, delivery failure, stuck report — the expected outcomes
    under a fault plan) into a :class:`RunFailure` instead of raising.
    """
    from ..apps import run as run_workload

    _seed_global_rngs(spec, index)
    if on_error == "record":
        try:
            return run_workload(spec.app, spec.params, spec.interface,
                                spec.workload)[0]
        except _typed_errors() as exc:
            return RunFailure(spec.describe(), type(exc).__name__, str(exc))
    return run_workload(spec.app, spec.params, spec.interface,
                        spec.workload)[0]


# -- the warm pool -------------------------------------------------------------

def _warm_worker() -> None:
    """Worker initializer: run once per spawned worker, before any chunk.

    Pre-imports the full simulation stack (engine, DSM, runtime,
    collectives, workload registry) and touches numpy so the first real
    chunk a worker executes pays simulation cost only — no import or
    allocator cold-start inside a timed sweep.
    """
    import repro.apps  # noqa: F401  (workload registry -> engine/dsm/network)
    import repro.collectives  # noqa: F401
    import repro.runtime  # noqa: F401

    np.dot(np.zeros(4), np.zeros(4))  # prime numpy's dispatch caches


def _atexit_shutdown() -> None:
    shutdown_pool()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The warm pool, creating (or growing) it if needed.

    Sized ``max(workers, default_jobs())`` so the common CLI pattern —
    ``set_default_jobs(N)`` then many sweeps — provisions once up front.
    A pool that is already at least as large as the request is a *warm
    hit* and is reused as-is; a smaller one is torn down and replaced
    (``ProcessPoolExecutor`` cannot grow in place).
    """
    global _pool, _pool_size, _atexit_registered
    if _pool is not None:
        if _pool_size >= workers:
            _m_warm_hits.inc()
            return _pool
        shutdown_pool()
    size = max(workers, default_jobs())
    pool = ProcessPoolExecutor(max_workers=size, initializer=_warm_worker)
    _pool, _pool_size = pool, size
    _m_spawns.inc()
    _m_workers.inc(size)
    _m_size.set(size)
    if not _atexit_registered:
        atexit.register(_atexit_shutdown)
        _atexit_registered = True
    return pool


def pool_size() -> int:
    """Provisioned worker count of the live warm pool (0 when cold)."""
    return _pool_size if _pool is not None else 0


def pool_metrics() -> Dict[str, Any]:
    """Flat snapshot of the executor's ``harness.pool.*`` metrics."""
    return POOL_METRICS.snapshot()


def shutdown_pool(cancel_pending: bool = False) -> None:
    """Tear the warm pool down (idempotent; registered with ``atexit``).

    Waits for running chunks, so no orphan workers survive the call;
    ``cancel_pending=True`` additionally cancels chunks still queued —
    the error path uses this so one worker's untyped exception does not
    leave the rest of the sweep running against a dead parent.
    """
    global _pool, _pool_size
    pool, _pool, _pool_size = _pool, None, 0
    if pool is None:
        return
    _m_shutdowns.inc()
    _m_size.set(0)
    try:
        pool.shutdown(wait=True, cancel_futures=cancel_pending)
    except TypeError:  # pragma: no cover — Python < 3.9
        pool.shutdown(wait=True)


# -- chunked dispatch ----------------------------------------------------------

def _chunksize(points: int, workers: int) -> int:
    """Points per chunk: ~``_CHUNKS_PER_WORKER`` chunks per worker.

    Large enough that shared ``SimParams``/workload objects pickle once
    per chunk instead of once per point, small enough that one slow
    point cannot strand the other workers idle behind it.
    """
    return max(1, -(-points // (workers * _CHUNKS_PER_WORKER)))


def _encode_chunk(start: int, specs: Sequence[RunSpec],
                  on_error: str) -> Tuple[str, List[Any], List[Tuple]]:
    """Pack a contiguous run of specs for one pool submission.

    ``SimParams`` and workload configs repeat heavily across a sweep
    (eight points typically share one workload object and four params
    values), so each distinct object lands once in a shared table and
    points reference it by index — the chunk pickles the shared objects
    once, not once per point.
    """
    shared: List[Any] = []

    def share(obj: Any) -> int:
        for i, seen in enumerate(shared):
            if seen is obj:
                return i
            try:
                if type(seen) is type(obj) and seen == obj:
                    return i
            except Exception:
                pass  # exotic __eq__ (e.g. array-valued): identity only
        shared.append(obj)
        return len(shared) - 1

    points = [(start + i, spec.app, share(spec.params), spec.interface,
               share(spec.workload), spec.seed, spec.meta)
              for i, spec in enumerate(specs)]
    return on_error, shared, points


def _run_chunk(payload: Tuple[str, List[Any], List[Tuple]]
               ) -> Tuple[List[Tuple[int, Any]], float]:
    """Pool-worker body: execute one chunk, in chunk order.

    Each point is rebuilt into a :class:`RunSpec` and executed through
    :func:`execute_run` with its *global* sweep index, so RNG seeding is
    identical to the ``--jobs 1`` path.  Returns the indexed results
    plus the chunk's busy time, from which the parent derives per-point
    dispatch overhead.
    """
    on_error, shared, points = payload
    t0 = time.perf_counter()
    out = []
    for index, app, params_i, interface, workload_i, seed, meta in points:
        spec = RunSpec(app, shared[params_i], interface,
                       workload=shared[workload_i], seed=seed, meta=meta)
        out.append((index, execute_run(spec, index, on_error=on_error)))
    return out, time.perf_counter() - t0


def _dispatch_chunked(specs: Sequence[RunSpec], workers: int,
                      on_error: str, chunksize: Optional[int]) -> List[Any]:
    """Fan the specs over the warm pool; return results in spec order.

    Chunks complete out of order (``as_completed``), and each result is
    slotted back by its global index — so a fast worker never waits on a
    slow chunk submitted earlier, yet callers observe pure spec order.
    Any exception escaping a chunk (a worker raising an *untyped* error,
    or the pool breaking outright) tears the pool down before
    propagating: no orphan workers, and the next ``run_map`` cold-starts
    a fresh pool.
    """
    n = len(specs)
    size = chunksize if chunksize is not None else _chunksize(n, workers)
    if size < 1:
        raise ValueError(f"chunksize={size} must be >= 1")
    pool = _get_pool(workers)
    results: List[Any] = [None] * n
    submitted: Dict[Future, Tuple[float, int]] = {}
    for begin in range(0, n, size):
        chunk = _encode_chunk(begin, specs[begin:begin + size], on_error)
        fut = pool.submit(_run_chunk, chunk)
        submitted[fut] = (time.perf_counter(), len(chunk[2]))
    _m_chunks.inc(len(submitted))
    _m_points.inc(n)
    try:
        for fut in as_completed(submitted):
            out, busy_s = fut.result()
            wall_s = time.perf_counter() - submitted[fut][0]
            per_point_ns = max(0.0, wall_s - busy_s) * 1e9 / len(out)
            for index, stats in out:
                _m_overhead.observe(per_point_ns)
                results[index] = stats
    except BaseException:
        shutdown_pool(cancel_pending=True)
        raise
    return results


def run_map(specs: Sequence[RunSpec], jobs: Optional[int] = None,
            record: bool = True, on_error: str = "raise",
            chunksize: Optional[int] = None) -> List[Any]:
    """Run every spec; return their :class:`RunStats` in spec order.

    ``jobs`` is the worker-process count (None → :func:`default_jobs`;
    1 → run in-process, no pool).  ``jobs > 1`` dispatches chunks of
    specs onto the shared **warm pool** (created on first use, reused by
    every later call — see the module docstring), clamped to
    :func:`effective_cores` so over-subscribing a small machine can
    never run slower than serial (``REPRO_POOL_FORCE=1`` disables the
    clamp); ``chunksize`` overrides
    the points-per-chunk heuristic (:func:`_chunksize`).  With
    ``record=True`` each run is recorded into
    :data:`~repro.harness.export.GLOBAL_METRICS_LOG` — in the parent, in
    spec order, with the run's ``digest`` attached — so ``--metrics``
    exports are byte-identical at any jobs setting.

    ``on_error="record"`` returns a :class:`RunFailure` in the failed
    run's slot (typed errors only) instead of letting one dying worker
    abort the whole sweep; failures are skipped by the metrics-log
    recording since they produced no metrics.
    """
    specs = list(specs)
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error={on_error!r} must be 'raise' or 'record'")
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs={jobs} must be >= 1")
    if not specs:
        return []

    workers = min(jobs, len(specs))
    if workers > 1 and not _force_pool():
        # CPU-aware worker budget: two workers on one core is strictly a
        # loss (pure dispatch tax, zero parallelism), so ``--jobs 2`` on
        # a 1-core box runs in-process — never slower than serial —
        # while any multi-core machine gets the full requested fan-out.
        workers = min(workers, effective_cores())
    if workers <= 1:
        results = [execute_run(spec, i, on_error=on_error)
                   for i, spec in enumerate(specs)]
        _m_inline.inc(len(specs))
    else:
        results = _dispatch_chunked(specs, workers, on_error, chunksize)

    if record:
        from .export import GLOBAL_METRICS_LOG

        for spec, stats in zip(specs, results):
            if isinstance(stats, RunFailure):
                continue
            GLOBAL_METRICS_LOG.record(
                spec.app, spec.interface, spec.params.num_processors,
                stats.metrics, digest=stats.digest(), **dict(spec.meta))
    return results


def merge_run_metrics(runs: Iterable[RunStats],
                      into: Optional[MetricsRegistry] = None,
                      prefix: str = "") -> MetricsRegistry:
    """Fold every run's metric tree into one registry.

    Each run's flat snapshot is rebuilt into a registry
    (:func:`repro.obs.registry_from_snapshot`, using the run's
    ``metric_kinds``) and merged through the standard dotted-hierarchy
    merge: counters sum, gauges max, histograms add bucket-wise.  This
    is how a parallel sweep gets its cluster-wide totals despite every
    run having executed in a different process.
    """
    merged = into if into is not None else MetricsRegistry()
    for stats in runs:
        merged.merge(registry_from_snapshot(stats.metrics,
                                            stats.metric_kinds),
                     prefix=prefix)
    return merged
