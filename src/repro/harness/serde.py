"""JSON codecs for run descriptions: SimParams and workload configs.

The run-farm service (:mod:`repro.service`) stores and transports
:class:`~repro.harness.parallel.RunSpec` /
:class:`~repro.engine.RunStats` as JSON documents, which needs the two
non-trivial spec members — the frozen :class:`~repro.params.SimParams`
and the per-app workload config dataclasses — to round-trip through
plain data.  Rules:

* every encoder produces pure JSON types (dict/list/str/number/None),
  deterministically (``json.dumps(..., sort_keys=True)`` of an encoded
  document is canonical — :meth:`RunSpec.digest` relies on it);
* a :class:`~repro.faults.FaultPlan` travels as its ``describe()``
  string, which the ``--fault-plan`` grammar guarantees round-trips
  through :func:`~repro.faults.parse_fault_plan`;
* workload configs are *type-tagged* dataclass documents; the legal
  types are exactly the config classes the workload registry
  (:data:`repro.apps.WORKLOADS`) knows about, plus the value types
  nested inside them (``BandedSPD`` with its numpy band storage), so a
  document can never instantiate an arbitrary class;
* decoders validate: unknown fields, unknown type tags and malformed
  payloads raise :class:`ValueError` with the offending name — a farm
  fed garbage answers 400, it does not crash.

Versioning lives one level up, in the documents that embed these
encodings (``run_spec`` / ``run_stats`` / ``run_failure`` — see
``schema_version`` in :mod:`repro.harness.parallel` and
:mod:`repro.engine.stats`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

import numpy as np

from ..params import SimParams

__all__ = [
    "decode_params",
    "decode_workload",
    "encode_params",
    "encode_workload",
]

_PARAM_FIELDS = {f.name for f in dataclasses.fields(SimParams)}


def encode_params(params: SimParams) -> Dict[str, Any]:
    """``SimParams`` as a flat JSON dict (fault plan as grammar text).

    ``topology`` is omitted entirely when None: a spec on the default
    single-switch fabric must encode byte-for-byte like a pre-topology
    document, so every content-addressed RunStore key for legacy runs
    survives the schema growing the field.
    """
    doc: Dict[str, Any] = {}
    for name in _PARAM_FIELDS:
        value = getattr(params, name)
        if name == "fault_plan":
            value = None if value is None else value.describe()
        elif name == "topology" and value is None:
            continue
        doc[name] = value
    return doc


def decode_params(doc: Dict[str, Any]) -> SimParams:
    """Rebuild ``SimParams`` from :func:`encode_params` output.

    Unknown fields raise :class:`ValueError` — a document written by a
    newer build with parameters this one does not model must not be
    silently reinterpreted (its digest would lie).
    """
    if not isinstance(doc, dict):
        raise ValueError(f"params document must be a dict, got "
                         f"{type(doc).__name__}")
    unknown = set(doc) - _PARAM_FIELDS
    if unknown:
        raise ValueError(f"unknown SimParams fields: {sorted(unknown)}")
    kwargs = dict(doc)
    plan = kwargs.get("fault_plan")
    if plan is not None:
        from ..faults import parse_fault_plan

        if not isinstance(plan, str):
            raise ValueError("fault_plan must travel as its describe() "
                             f"string, got {type(plan).__name__}")
        kwargs["fault_plan"] = parse_fault_plan(plan)
    return SimParams(**kwargs)


# -- workload configs ----------------------------------------------------------

def _config_types() -> Dict[str, type]:
    """Type tag -> class for every decodable workload-config document.

    Derived from the workload registry at call time, so a newly
    registered workload's config is serializable with no serde edits.
    ``BandedSPD`` is included explicitly: it is not a registered config
    itself but nests inside ``CholeskyConfig``.
    """
    from ..apps import WORKLOADS
    from ..apps.matrices import BandedSPD

    types: Dict[str, type] = {"BandedSPD": BandedSPD}
    for w in WORKLOADS.values():
        types[w.config_type.__name__] = w.config_type
    return types


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return {"__kind__": "ndarray", "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": value.ravel().tolist()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return encode_workload(value)
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(f"cannot encode workload value of type "
                     f"{type(value).__name__}")


def _decode_value(value: Any, types: Dict[str, type]) -> Any:
    if isinstance(value, dict):
        kind = value.get("__kind__")
        if kind == "ndarray":
            arr = np.array(value["data"],
                           dtype=np.dtype(value["dtype"]))
            return arr.reshape(value["shape"])
        if kind == "config":
            return _decode_config(value, types)
        raise ValueError(f"unknown encoded value kind {kind!r}")
    if isinstance(value, list):
        return [_decode_value(v, types) for v in value]
    return value


def encode_workload(config: Any) -> Optional[Dict[str, Any]]:
    """A workload config dataclass as a type-tagged JSON document
    (None passes through: some specs carry no config)."""
    if config is None:
        return None
    if not (dataclasses.is_dataclass(config)
            and not isinstance(config, type)):
        raise ValueError(f"workload config must be a dataclass instance, "
                         f"got {type(config).__name__}")
    return {
        "__kind__": "config",
        "type": type(config).__name__,
        "fields": {f.name: _encode_value(getattr(config, f.name))
                   for f in dataclasses.fields(config)},
    }


def _decode_config(doc: Dict[str, Any], types: Dict[str, type]) -> Any:
    tag = doc.get("type")
    cls = types.get(tag)
    if cls is None:
        raise ValueError(
            f"unknown workload config type {tag!r} "
            f"(known: {sorted(types)})")
    fields = doc.get("fields")
    if not isinstance(fields, dict):
        raise ValueError(f"config {tag!r}: missing fields document")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"config {tag!r}: unknown fields "
                         f"{sorted(unknown)}")
    kwargs = {name: _decode_value(value, types)
              for name, value in fields.items()}
    return cls(**kwargs)


def decode_workload(doc: Optional[Dict[str, Any]]) -> Any:
    """Rebuild a workload config from :func:`encode_workload` output."""
    if doc is None:
        return None
    if not isinstance(doc, dict) or doc.get("__kind__") != "config":
        raise ValueError("workload document must be a type-tagged config "
                         "dict (or null)")
    return _decode_config(doc, _config_types())
