"""``python -m repro.harness`` — regenerate the paper's tables/figures."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
