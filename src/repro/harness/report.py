"""Plain-text rendering of harness results (the rows the paper plots)."""

from __future__ import annotations

from typing import List

from .results import SeriesResult, TableResult


def format_series(result: SeriesResult, width: int = 12) -> str:
    """Render a figure's data as an aligned text table."""
    names = list(result.series)
    header = [result.x_label.rjust(width)] + [n.rjust(max(width, len(n)))
                                              for n in names]
    lines = [" ".join(header)]
    for i, x in enumerate(result.xs):
        cells = [f"{x:>{width}.6g}"]
        for n in names:
            w = max(width, len(n))
            cells.append(f"{result.series[n][i]:>{w}.6g}")
        lines.append(" ".join(cells))
    out = [f"== {result.name} =="] + lines
    if result.notes:
        out.append(f"   ({result.notes})")
    return "\n".join(out)


def format_table(result: TableResult, width: int = 18) -> str:
    """Render a table's data with labelled rows."""
    label_w = max([len(r) for r in result.rows] + [8])
    header = " ".join(
        ["row".ljust(label_w)] + [c.rjust(max(width, len(c)))
                                  for c in result.columns]
    )
    lines = [f"== {result.name} ==", header]
    for label, values in result.rows.items():
        cells = [label.ljust(label_w)]
        for c, v in zip(result.columns, values):
            w = max(width, len(c))
            cells.append(f"{v:>{w}.6g}")
        lines.append(" ".join(cells))
    if result.notes:
        lines.append(f"   ({result.notes})")
    return "\n".join(lines)


def ascii_plot(result: SeriesResult, series_name: str, height: int = 12,
               width: int = 60) -> str:
    """A rough terminal plot of one series (useful when eyeballing the
    shape against the paper's figure)."""
    ys = result.series[series_name]
    if not ys:
        return "(empty series)"
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    rows: List[List[str]] = [[" "] * width for _ in range(height)]
    n = len(ys)
    for i, y in enumerate(ys):
        col = int(i * (width - 1) / max(1, n - 1))
        row = int((y - lo) / span * (height - 1))
        rows[height - 1 - row][col] = "*"
    out = [f"-- {result.name}:{series_name} (min={lo:.4g} max={hi:.4g}) --"]
    out.extend("".join(r) for r in rows)
    return "\n".join(out)
