"""``python -m repro.harness metrics`` — the per-node metrics table.

Runs one representative workload and prints the observability layer's
per-node counters (Message Cache, ADC rings, PATHFINDER, AIH, bus), plus
cluster-wide aggregates.  This is the quick way to eyeball where cycles
and traffic go without setting up a full experiment::

    python -m repro.harness metrics                       # jacobi, cni, 4 procs
    python -m repro.harness metrics --app water --nprocs 8
    python -m repro.harness metrics --interface standard
    python -m repro.harness metrics --json out/metrics.json
    python -m repro.harness metrics --topology torus:2x2     # net.* fabric view

See docs/observability.md for what each column (and every exported
metric) means.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from ..obs import aggregate_nodes, format_node_table, snapshot_to_json
from ..params import SimParams

#: Cluster-wide summary lines printed under the table, as
#: (label, relative per-node metric) pairs summed across nodes.
SUMMARY_ROWS = (
    ("message cache hits", "nic.mcache.hits"),
    ("message cache misses", "nic.mcache.misses"),
    ("pathfinder matches", "nic.pathfinder.matches"),
    ("aih dispatches", "nic.aih.dispatches"),
    ("bus snooped writeback words", "bus.snooped_writeback_words"),
    ("bus DMA transfers", "bus.dma_transfers"),
)


def _take(argv: List[str], name: str) -> Optional[str]:
    if name in argv:
        i = argv.index(name)
        if i + 1 >= len(argv):
            raise SystemExit(f"{name} needs an argument")
        value = argv[i + 1]
        del argv[i:i + 2]
        return value
    return None


def run_metrics_workload(app: str, interface: str, nprocs: int, scale,
                         topology: Optional[str] = None):
    """Run the representative workload; returns its RunStats."""
    from ..apps import run
    from .runner import _chol14

    configs = {
        "jacobi": lambda: scale.jacobi_small,
        "water": lambda: scale.water_small,
        "cholesky": lambda: _chol14(scale),
    }
    if app not in configs:
        raise SystemExit(f"unknown app {app!r} (jacobi, water or cholesky)")
    params = SimParams().replace(num_processors=nprocs, topology=topology)
    return run(app, params, interface, configs[app]())[0]


def metrics_main(argv: List[str], scale) -> int:
    """Entry point for the ``metrics`` subcommand."""
    argv = list(argv)
    app = _take(argv, "--app") or "jacobi"
    interface = _take(argv, "--interface") or "cni"
    nprocs_arg = _take(argv, "--nprocs") or "4"
    try:
        nprocs = int(nprocs_arg)
        if nprocs < 1:
            raise ValueError("must be >= 1")
    except ValueError as exc:
        print(f"--nprocs: {nprocs_arg!r}: {exc}", file=sys.stderr)
        return 2
    json_path = _take(argv, "--json")
    topology = _take(argv, "--topology")
    if topology is not None:
        from ..network.spec import parse_topology

        try:
            parse_topology(topology)
        except ValueError as exc:
            print(f"--topology: {exc}", file=sys.stderr)
            return 2
    if argv:
        print(f"unrecognized arguments: {' '.join(argv)}",
              file=sys.stderr)
        return 2
    if interface not in ("cni", "standard"):
        print(f"--interface: {interface!r} must be 'cni' or 'standard'",
              file=sys.stderr)
        return 2

    try:
        stats = run_metrics_workload(app, interface, nprocs, scale,
                                     topology=topology)
    except ValueError as exc:
        print(f"--topology: {exc}", file=sys.stderr)
        return 2
    snapshot = stats.metrics
    title = (f"per-node metrics — {app}, {interface} interface, "
             f"{nprocs} processors ({scale.name} scale)")
    print(format_node_table(snapshot, title=title))
    totals = aggregate_nodes(snapshot)
    print("\ncluster totals:")
    for label, rel in SUMMARY_ROWS:
        print(f"  {label:<30} {totals.get(rel, 0.0):>12g}")

    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        meta = {"app": app, "interface": interface, "nprocs": nprocs,
                "scale": scale.name}
        if topology is not None:
            meta["topology"] = topology
        with open(json_path, "w") as fh:
            fh.write(snapshot_to_json(snapshot, meta=meta))
        print(f"\nwrote {json_path}")
    return 0
