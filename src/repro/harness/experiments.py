"""One function per table/figure of the paper's evaluation (Section 3).

Every function takes explicit workload parameters whose defaults are the
*paper's* configuration; the benchmark suite passes scaled-down values so
a full regeneration stays laptop-sized (set ``REPRO_FULL=1`` to run the
paper-sized sweeps — see benchmarks/README note in EXPERIMENTS.md).

Speedups are computed the way the paper computes them: execution time on
one processor of the *same* cluster type divided by execution time on P
processors.

Every grid-shaped experiment builds its runs as
:class:`~repro.harness.parallel.RunSpec` lists and executes them through
:func:`~repro.harness.parallel.run_map`, so they fan out across worker
processes under ``--jobs N`` while producing bit-identical results (see
docs/parallel_runs.md).  ``run_map`` dispatches onto one process-wide
*warm* pool, so a session regenerating many small sweeps back to back
(``all`` at quick scale) pays worker spawn and interpreter import once,
not once per experiment.  A spec's ``app`` string is resolved by the
workload registry (:func:`repro.apps.run`), so experiment code never
names a ``run_*`` function directly — any registered workload is
sweepable.  The two microbenchmarks
(:func:`latency_microbenchmark`, :func:`bandwidth_microbenchmark`) stay
in-process: their kernels are ad-hoc closures over a marks dict, which
is exactly the non-picklable shape the executor refuses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..engine import RunStats
from ..faults import CellLoss, FaultPlan
from ..obs import aggregate_nodes
from ..params import SimParams
from ..runtime import Cluster, MessagingService
from .export import GLOBAL_METRICS_LOG
from .parallel import RunSpec, run_map
from .results import SeriesResult, TableResult

DEFAULT_PROCS = (1, 2, 4, 8, 16, 32)


def _run_app(app: str, params: SimParams, interface: str, workload) -> RunStats:
    """Run one point in-process and record it (single-run convenience)."""
    return run_map([RunSpec(app, params, interface, workload)], jobs=1)[0]


def speedup_experiment(
    app: str,
    workload,
    procs: Sequence[int] = DEFAULT_PROCS,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Figures 2-4, 6-8, 10-11: speedup + network cache hit ratio vs
    processor count, CNI and standard."""
    base = base_params or SimParams()
    result = SeriesResult(
        name=name or f"{app}-speedup",
        x_label="processors",
        xs=[float(p) for p in procs],
    )
    specs = [RunSpec(app, base.replace(num_processors=1), iface, workload)
             for iface in ("cni", "standard")]
    specs += [RunSpec(app, base.replace(num_processors=int(p)), iface,
                      workload)
              for p in procs for iface in ("cni", "standard")]
    runs = run_map(specs, jobs=jobs)
    t1: Dict[str, float] = {
        "cni": runs[0].elapsed_ns, "standard": runs[1].elapsed_ns,
    }
    for spec, stats in zip(specs[2:], runs[2:]):
        iface = spec.interface
        result.add_point(f"{iface}_speedup", t1[iface] / stats.elapsed_ns)
        if iface == "cni":
            result.add_point(
                "network_cache_hit_ratio",
                100.0 * stats.network_cache_hit_ratio,
            )
    result.validate()
    return result


def page_size_experiment(
    app: str,
    workload,
    page_sizes: Sequence[int],
    nprocs: int = 8,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Figures 5, 9, 12: speedup sensitivity to shared page size.

    Speedup at each page size is against the one-processor run *at that
    page size* (the paper's axes are speedup vs page size at 8 procs).
    """
    base = base_params or SimParams()
    result = SeriesResult(
        name=name or f"{app}-pagesize",
        x_label="page_size_bytes",
        xs=[float(s) for s in page_sizes],
    )
    specs = []
    for size in page_sizes:
        for iface in ("cni", "standard"):
            sized = base.replace(page_size_bytes=int(size))
            specs.append(RunSpec(app, sized.replace(num_processors=1),
                                 iface, workload))
            specs.append(RunSpec(app, sized.replace(num_processors=nprocs),
                                 iface, workload))
    runs = run_map(specs, jobs=jobs)
    for spec, t1_stats, tp_stats in zip(specs[::2], runs[::2], runs[1::2]):
        result.add_point(f"{spec.interface}_speedup",
                         t1_stats.elapsed_ns / tp_stats.elapsed_ns)
    result.validate()
    return result


def overhead_table_experiment(
    app: str,
    workload,
    nprocs: int = 8,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> TableResult:
    """Tables 2-4: synch overhead / synch delay / computation / total,
    in CPU cycles summed over the processors, CNI vs standard."""
    base = base_params or SimParams()
    result = TableResult(
        name=name or f"{app}-overhead",
        columns=["time_cni_cycles", "time_standard_cycles"],
    )
    params = base.replace(num_processors=nprocs)
    specs = [RunSpec(app, params, iface, workload)
             for iface in ("cni", "standard")]
    runs = run_map(specs, jobs=jobs)
    tables = {spec.interface: stats.overhead_table(params.cpu_freq_hz)
              for spec, stats in zip(specs, runs)}
    for row in ("synch_overhead", "synch_delay", "computation", "total"):
        result.add_row(row, [tables["cni"][row], tables["standard"][row]])
    return result


def message_cache_size_experiment(
    workloads: Dict[str, object],
    cache_sizes: Sequence[int],
    nprocs: int = 8,
    base_params: Optional[SimParams] = None,
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Figure 13: network cache hit ratio vs Message Cache size for the
    8-processor versions of the three applications."""
    base = base_params or SimParams()
    result = SeriesResult(
        name="mcache-size",
        x_label="message_cache_bytes",
        xs=[float(s) for s in cache_sizes],
    )
    specs = [
        RunSpec(app, base.replace(num_processors=nprocs,
                                  message_cache_bytes=int(size)),
                "cni", workload)
        for size in cache_sizes for app, workload in workloads.items()
    ]
    runs = run_map(specs, jobs=jobs)
    for spec, stats in zip(specs, runs):
        result.add_point(spec.app, 100.0 * stats.network_cache_hit_ratio)
    result.validate()
    return result


def latency_microbenchmark(
    message_sizes: Sequence[int],
    base_params: Optional[SimParams] = None,
) -> SeriesResult:
    """Figure 14: best-case node-to-node latency vs message size.

    The paper assumes a 100% network cache hit ratio for the CNI curve,
    so the measurement warms the Message Cache with one send and times
    the second, unmodified send from initiation to delivery at the
    receiving application.
    """
    base = base_params or SimParams()
    result = SeriesResult(
        name="latency-microbench",
        x_label="message_bytes",
        xs=[float(s) for s in message_sizes],
    )
    for size in message_sizes:
        for iface in ("cni", "standard"):
            result.add_point(
                f"{iface}_latency_us",
                one_way_latency_ns(int(size), iface, base) / 1000.0,
            )
    result.validate()
    return result


def one_way_latency_ns(size: int, interface: str, base: SimParams) -> float:
    """Measure one warmed node-to-node message latency."""
    params = base.replace(num_processors=2, dsm_address_space_pages=16)
    cluster = Cluster(params, interface=interface)
    marks = {}
    buffer_bytes = max(4096, 1 << (size - 1).bit_length()) if size else 4096

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=buffer_bytes)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(max(size, 8))
            yield from svc.send(1, size)     # warm the Message Cache
            yield from ctx.barrier()
            marks["t0"] = ctx.sim.now
            yield from svc.send(1, size)     # the measured send
        else:
            yield from svc.recv()
            yield from ctx.barrier()
            yield from svc.recv()
            marks["t1"] = ctx.sim.now

    cluster.run(kernel)
    GLOBAL_METRICS_LOG.record("latency_microbench", interface, 2,
                              cluster.metrics.snapshot(),
                              message_bytes=size)
    return marks["t1"] - marks["t0"]


def bandwidth_microbenchmark(
    message_sizes: Sequence[int],
    messages_per_burst: int = 32,
    base_params: Optional[SimParams] = None,
) -> SeriesResult:
    """Extension (not a paper figure): application-to-application
    bandwidth vs message size.

    The work the paper builds on (OSIRIS, [4]) chased *bandwidth*; the
    CNI chases latency without giving bandwidth up.  A sender streams a
    burst of same-buffer messages; bandwidth is payload bytes over the
    time until the last message reaches the receiving application.
    """
    base = base_params or SimParams()
    result = SeriesResult(
        name="bandwidth-microbench",
        x_label="message_bytes",
        xs=[float(s) for s in message_sizes],
    )
    for size in message_sizes:
        for iface in ("cni", "standard"):
            mbps = _burst_bandwidth_mbps(
                int(size), messages_per_burst, iface, base
            )
            result.add_point(f"{iface}_mbps", mbps)
    result.validate()
    return result


def _burst_bandwidth_mbps(size: int, count: int, interface: str,
                          base: SimParams) -> float:
    params = base.replace(num_processors=2, dsm_address_space_pages=16)
    cluster = Cluster(params, interface=interface)
    marks = {}
    buffer_bytes = max(4096, 1 << (max(size, 1) - 1).bit_length())

    def kernel(ctx):
        svc = MessagingService(ctx, n_recv_buffers=count + 2,
                               buffer_bytes=buffer_bytes)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(max(size, 8))
            marks["t0"] = ctx.sim.now
            for _ in range(count):
                yield from svc.send(1, size)
        else:
            for _ in range(count):
                yield from svc.recv()
            marks["t1"] = ctx.sim.now

    cluster.run(kernel)
    seconds = (marks["t1"] - marks["t0"]) / 1e9
    return (size * count * 8) / seconds / 1e6 if seconds > 0 else 0.0


def unrestricted_cell_experiment(
    workloads: Dict[str, object],
    nprocs: int = 8,
    base_params: Optional[SimParams] = None,
    jobs: Optional[int] = None,
) -> TableResult:
    """Table 5: % execution-time improvement for the CNI cluster when
    the ATM's 53-byte cell becomes unlimited (no SAR overhead)."""
    base = base_params or SimParams()
    result = TableResult(
        name="unrestricted-cell",
        columns=["pct_improvement"],
    )
    params = base.replace(num_processors=nprocs)
    specs = []
    for app, workload in workloads.items():
        specs.append(RunSpec(app, params, "cni", workload))
        specs.append(RunSpec(app, params.replace(unrestricted_cell_size=True),
                             "cni", workload))
    runs = run_map(specs, jobs=jobs)
    for spec, with_cells, no_cells in zip(specs[::2], runs[::2], runs[1::2]):
        pct = 100.0 * (1.0 - no_cells.elapsed_ns / with_cells.elapsed_ns)
        result.add_row(spec.app, [pct])
    return result


def fault_sweep_experiment(
    app: str,
    workload,
    loss_rates: Sequence[float],
    nprocs: int = 4,
    seed: int = 90,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Robustness extension (not a paper figure): completion time,
    goodput and retransmission work vs seeded cell-loss rate, with the
    reliable transport carrying the workload on both interfaces.

    Goodput counts only payload bytes delivered to dispatch after
    duplicate suppression (``nic.rx.payload_bytes``), so retransmitted
    copies do not inflate it.
    """
    base = base_params or SimParams()
    result = SeriesResult(
        name=name or f"{app}-faults",
        x_label="cell_loss_rate",
        xs=[float(r) for r in loss_rates],
    )
    specs = []
    for rate in loss_rates:
        plan = (FaultPlan(seed=seed, schedules=(CellLoss(rate=float(rate)),))
                if rate > 0 else base.fault_plan)
        params = base.replace(num_processors=nprocs,
                              reliable_transport=True,
                              fault_plan=plan)
        for iface in ("cni", "standard"):
            specs.append(RunSpec(app, params, iface, workload,
                                 meta=(("cell_loss_rate", float(rate)),)))
    runs = run_map(specs, jobs=jobs)
    for spec, stats in zip(specs, runs):
        iface = spec.interface
        agg = aggregate_nodes(stats.metrics)
        payload = agg.get("nic.rx.payload_bytes", 0.0)
        seconds = stats.elapsed_ns / 1e9
        result.add_point(f"{iface}_completion_ms", stats.elapsed_ns / 1e6)
        result.add_point(
            f"{iface}_goodput_mbps",
            payload * 8 / seconds / 1e6 if seconds > 0 else 0.0)
        result.add_point(f"{iface}_retransmits",
                         agg.get("nic.reliab.retransmits", 0.0))
    result.validate()
    return result


def failures_experiment(
    nprocs: int = 4,
    seed: int = 97,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> TableResult:
    """Crash-stop fault tolerance demonstration (docs/reliability.md):
    representative workloads under crash / link-outage / cell-loss
    plans, with deadlines and the heartbeat detector armed.  Every run
    must terminate — success or a *typed* error — and the table reports
    which; a hang would surface as a ``StuckError`` aborting the
    experiment.  ``tools/chaos_campaign.py`` is the exhaustive sweep
    over every registered workload; this is the harness-sized sample.
    """
    from ..apps import JacobiConfig
    from ..collectives import CollBenchConfig
    from ..faults import LinkDown, NodeCrash
    from .parallel import RunFailure

    base = base_params or SimParams()
    base = base.replace(
        num_processors=nprocs,
        reliable_transport=True,
        op_deadline_ns=50_000_000.0,
        heartbeat_interval_ns=500_000.0,
        heartbeat_miss_budget=4,
        runtime_send_retries=1,
    )
    plans = [
        ("clean", None),
        ("crash", FaultPlan(seed=seed, schedules=(
            NodeCrash(node=nprocs - 1, at_ns=200_000.0),))),
        ("linkdown", FaultPlan(seed=seed, schedules=(
            LinkDown(src=0, dst=1, from_ns=0.0, to_ns=400_000.0),))),
        ("loss", FaultPlan(seed=seed, schedules=(
            CellLoss(rate=0.005),))),
    ]
    workloads = [
        ("jacobi", JacobiConfig(n=32, iterations=2)),
        ("collbench", CollBenchConfig(op="allreduce", rounds=4,
                                      compute_cycles=500)),
    ]
    result = TableResult(
        name=name or "failures",
        columns=["ok", "typed_error", "elapsed_ms"],
    )
    specs = []
    labels = []
    for app, workload in workloads:
        for plan_name, plan in plans:
            specs.append(RunSpec(app, base.replace(fault_plan=plan),
                                 "cni", workload))
            labels.append(f"{app}/{plan_name}")
    runs = run_map(specs, jobs=jobs, record=False, on_error="record")
    errors = []
    for label, outcome in zip(labels, runs):
        if isinstance(outcome, RunFailure):
            result.add_row(label, [0.0, 1.0, 0.0])
            errors.append(f"{label}: {outcome.error_type}")
        else:
            result.add_row(label, [1.0, 0.0, outcome.elapsed_ns / 1e6])
    result.notes = ("every run terminated (no hangs); typed errors: "
                    + ("; ".join(errors) if errors else "none"))
    return result


def _coll_mean_op_us(metrics: Dict[str, object], op: str) -> float:
    """Mean app-observed latency of one collective op, in microseconds,
    from the per-node ``node<i>.coll.<op>_ns`` histograms (summing count
    and sum across nodes; :func:`aggregate_nodes` would reduce a
    histogram to its count only)."""
    total = 0.0
    count = 0.0
    suffix = f".coll.{op}_ns"
    for mname, value in metrics.items():
        if mname.endswith(suffix) and isinstance(value, dict):
            total += float(value.get("sum", 0.0))
            count += float(value.get("count", 0))
    return total / count / 1e3 if count else 0.0


def collective_latency_experiment(
    procs: Sequence[int],
    rounds: int = 8,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Collectives extension (not a paper figure): mean barrier and
    all-reduce latency vs processor count, NIC-resident engine (CNI)
    against the host-based engine (standard interface).

    The NIC rows are *asserted* interrupt-free: the run fails if any
    ``coll.host_steps`` / ``coll.host_interrupts`` were counted, or if
    a multi-node run shows no AIH dispatches — the zero-host-interrupt
    claim is checked, not assumed.  See docs/collectives.md.
    """
    from ..collectives import CollBenchConfig

    base = base_params or SimParams()
    result = SeriesResult(
        name=name or "collectives-latency",
        x_label="processors",
        xs=[float(p) for p in procs],
    )
    combos = (("nic", "cni"), ("host", "standard"))
    specs = []
    for p in procs:
        for engine, iface in combos:
            params = base.replace(num_processors=int(p),
                                  collectives=engine)
            for op in ("barrier", "allreduce"):
                specs.append(RunSpec(
                    "collbench", params, iface,
                    CollBenchConfig(op=op, rounds=rounds),
                    meta=(("coll_engine", engine), ("coll_op", op)),
                ))
    runs = run_map(specs, jobs=jobs)
    for spec, stats in zip(specs, runs):
        meta = dict(spec.meta)
        engine, op = meta["coll_engine"], meta["coll_op"]
        result.add_point(f"{engine}_{op}_us",
                         _coll_mean_op_us(stats.metrics, op))
        if engine == "nic":
            agg = aggregate_nodes(stats.metrics)
            hosted = (agg.get("coll.host_steps", 0.0)
                      + agg.get("coll.host_interrupts", 0.0))
            if hosted:
                raise AssertionError(
                    f"NIC-resident collectives took {hosted:.0f} host "
                    f"protocol steps ({spec.describe()})")
            if (spec.params.num_processors > 1
                    and agg.get("nic.aih.dispatches", 0.0) <= 0):
                raise AssertionError(
                    "NIC-resident collectives dispatched no AIH handlers "
                    f"({spec.describe()})")
    result.validate()
    result.notes = (f"{rounds} rounds/run; NIC rows asserted "
                    "interrupt-free on the collective path")
    return result


def _rtt_mean_one_way_us(stats: RunStats) -> float:
    """Mean one-way latency (µs) from rank 0's round-trip histogram."""
    hist = stats.metrics.get("node0.runtime.msg_rtt_ns")
    if not hist or not hist.get("count"):
        raise AssertionError("pingpong run recorded no msg_rtt_ns samples")
    return hist["sum"] / hist["count"] / 2.0 / 1000.0


def messaging_experiment(
    sizes: Sequence[int],
    rounds: int = 8,
    base_params: Optional[SimParams] = None,
    name: str = "",
    jobs: Optional[int] = None,
) -> SeriesResult:
    """Messaging-runtime extension (Figure-14 style, but user-to-user):
    one-way ping-pong latency vs message size on both interfaces, with
    the eager/rendezvous crossover at ``SimParams.rendezvous_threshold``
    (docs/runtime.md).

    Two claims are *asserted*, not just plotted: every run took the
    protocol its size dictates (eager at or below the threshold,
    rendezvous above — counted from ``runtime.eager_sends`` /
    ``runtime.rendezvous_sends``), and a one-sided ``remote_read`` arm
    shows a higher Message-Cache transmit hit ratio on the CNI than on
    the standard interface (where the ratio is necessarily zero — there
    is no cache to hit).
    """
    from ..apps import PingPongConfig

    base = base_params or SimParams()
    base = base.replace(num_processors=2)
    result = SeriesResult(
        name=name or "messaging-latency",
        x_label="message_bytes",
        xs=[float(s) for s in sizes],
    )
    specs = [
        RunSpec("pingpong", base, iface,
                PingPongConfig(rounds=rounds, message_bytes=int(size)),
                meta=(("arm", "msg"), ("message_bytes", int(size))))
        for size in sizes for iface in ("cni", "standard")
    ]
    read_bytes = min(4096, max(int(s) for s in sizes))
    specs += [
        RunSpec("pingpong", base, iface,
                PingPongConfig(rounds=rounds, message_bytes=read_bytes,
                               mode="read"),
                meta=(("arm", "read"),))
        for iface in ("cni", "standard")
    ]
    runs = run_map(specs, jobs=jobs)
    read_ratio: Dict[str, float] = {}
    for spec, stats in zip(specs, runs):
        arm = dict(spec.meta)["arm"]
        if arm == "read":
            read_ratio[spec.interface] = stats.network_cache_hit_ratio
            continue
        size = dict(spec.meta)["message_bytes"]
        result.add_point(f"{spec.interface}_latency_us",
                         _rtt_mean_one_way_us(stats))
        agg = aggregate_nodes(stats.metrics)
        eager = agg.get("runtime.eager_sends", 0.0)
        rdv = agg.get("runtime.rendezvous_sends", 0.0)
        want_eager = size <= spec.params.rendezvous_threshold
        # Both directions of every round go through the size-dispatched
        # path, so the counts are all-or-nothing.
        if want_eager and (eager != 2 * rounds or rdv != 0):
            raise AssertionError(
                f"{size}B ≤ threshold but counted eager={eager:.0f} "
                f"rendezvous={rdv:.0f} ({spec.describe()})")
        if not want_eager and (rdv != 2 * rounds or eager != 0):
            raise AssertionError(
                f"{size}B > threshold but counted eager={eager:.0f} "
                f"rendezvous={rdv:.0f} ({spec.describe()})")
    if read_ratio["cni"] <= read_ratio["standard"]:
        raise AssertionError(
            f"remote_read Message-Cache hit ratio not better on CNI: "
            f"cni={read_ratio['cni']:.3f} vs "
            f"standard={read_ratio['standard']:.3f}")
    result.validate()
    result.notes = (
        f"{rounds} rounds/run at threshold "
        f"{base.rendezvous_threshold}B; remote_read mcache hit ratio "
        f"cni={read_ratio['cni']:.3f} vs standard="
        f"{read_ratio['standard']:.3f}")
    return result


def table1_parameters() -> TableResult:
    """Table 1: the simulation parameters actually in force."""
    p = SimParams()
    result = TableResult(name="simulation-parameters", columns=["value"])
    rows = [
        ("cpu_frequency_mhz", p.cpu_freq_hz / 1e6),
        ("l1_access_cycles", p.l1_access_cycles),
        ("l1_size_kb", p.l1_size_bytes / 1024),
        ("l2_access_cycles", p.l2_access_cycles),
        ("l2_size_kb", p.l2_size_bytes / 1024),
        ("memory_latency_cycles", p.memory_latency_cycles),
        ("bus_acquisition_cycles", p.bus_acquisition_cycles),
        ("bus_cycles_per_word", p.bus_cycles_per_word),
        ("bus_frequency_mhz", p.bus_freq_hz / 1e6),
        ("switch_latency_ns", p.switch_latency_ns),
        ("ni_frequency_mhz", p.ni_freq_hz / 1e6),
        ("wire_latency_ns", p.wire_latency_ns),
        ("interrupt_latency_us", p.interrupt_latency_ns / 1000),
        ("message_cache_kb", p.message_cache_bytes / 1024),
    ]
    for label, value in rows:
        result.add_row(label, [float(value)])
    return result
