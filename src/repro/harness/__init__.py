"""Experiment harness: one entry per table/figure of the paper.

``python -m repro.harness fig2`` regenerates Figure 2's data; see
:mod:`repro.harness.runner` for the registry and scales.
"""

from .experiments import (
    bandwidth_microbenchmark,
    collective_latency_experiment,
    failures_experiment,
    fault_sweep_experiment,
    latency_microbenchmark,
    message_cache_size_experiment,
    one_way_latency_ns,
    overhead_table_experiment,
    page_size_experiment,
    speedup_experiment,
    table1_parameters,
    unrestricted_cell_experiment,
)
from .export import GLOBAL_METRICS_LOG, MetricsLog, to_csv, to_json, write_result
from .parallel import (
    RunFailure,
    RunSpec,
    default_jobs,
    effective_cores,
    execute_run,
    merge_run_metrics,
    pool_metrics,
    pool_size,
    run_map,
    set_default_jobs,
    shutdown_pool,
)
from .report import ascii_plot, format_series, format_table
from .svgplot import render_series_svg
from .sweeps import sweep_param
from .results import SeriesResult, TableResult
from .runner import EXPERIMENTS, PAPER, QUICK, Scale, active_scale, run_experiment

__all__ = [
    "EXPERIMENTS",
    "GLOBAL_METRICS_LOG",
    "MetricsLog",
    "PAPER",
    "QUICK",
    "RunFailure",
    "RunSpec",
    "Scale",
    "SeriesResult",
    "TableResult",
    "active_scale",
    "ascii_plot",
    "bandwidth_microbenchmark",
    "collective_latency_experiment",
    "default_jobs",
    "effective_cores",
    "execute_run",
    "failures_experiment",
    "fault_sweep_experiment",
    "format_series",
    "format_table",
    "latency_microbenchmark",
    "merge_run_metrics",
    "message_cache_size_experiment",
    "one_way_latency_ns",
    "overhead_table_experiment",
    "page_size_experiment",
    "pool_metrics",
    "pool_size",
    "render_series_svg",
    "run_experiment",
    "run_map",
    "set_default_jobs",
    "shutdown_pool",
    "speedup_experiment",
    "sweep_param",
    "table1_parameters",
    "to_csv",
    "to_json",
    "unrestricted_cell_experiment",
    "write_result",
]
