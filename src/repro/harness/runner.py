"""Experiment registry + command line driver.

Every table and figure of the paper has an id here (``fig2`` ... ``fig14``,
``table1`` ... ``table5``).  Each runs at one of two scales:

* ``quick`` — shrunken workloads with the same structure (default; this
  is what the pytest-benchmark suite runs);
* ``paper`` — the paper's workload sizes and processor counts (set
  ``REPRO_FULL=1`` or pass ``--full``; hours of simulation).

Usage::

    python -m repro.harness fig2 fig14 table5
    python -m repro.harness all
    REPRO_FULL=1 python -m repro.harness fig4
    python -m repro.harness fig4 --jobs 8               # parallel sweep points
    python -m repro.harness all --jobs 1                # serial (debugging)
    python -m repro.harness all --svg out/ --csv out/   # export files too
    python -m repro.harness all --metrics out/          # + metrics JSON per exp
    python -m repro.harness metrics --app water         # per-node metric table
    python -m repro.harness faults                      # loss-rate sweep
    python -m repro.harness collectives                 # NIC vs host engines
    python -m repro.harness fig4 --collectives host     # force an engine
    python -m repro.harness fig2 --fault-plan 'seed=7;cell_loss(rate=0.01)'
    python -m repro.harness fig2 --topology torus:4x4        # pick a fabric

``--jobs N`` fans an experiment's independent simulation runs across N
worker processes (default: all cores; results are bit-identical at any
N — see docs/parallel_runs.md).  ``--fault-plan SPEC`` injects faults
into any experiment (and enables the reliable transport so runs survive
them); see :func:`repro.faults.parse_fault_plan` for the grammar.
``--topology SPEC`` selects the fabric every run is wired to
(``banyan:32``, ``fattree:k=4``, ``torus:4x4x4[:adaptive]`` — see
docs/network.md).

Experiment text output is also appended to
``results/<scale>_scale_results.txt`` (gitignored), the artifact
``repro.harness.compare`` reads to regenerate EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..apps import (
    CholeskyConfig,
    JacobiConfig,
    WaterConfig,
    bcsstk14_like,
    bcsstk15_like,
)
from ..params import SimParams
from .experiments import (
    collective_latency_experiment,
    failures_experiment,
    fault_sweep_experiment,
    latency_microbenchmark,
    message_cache_size_experiment,
    messaging_experiment,
    overhead_table_experiment,
    page_size_experiment,
    speedup_experiment,
    table1_parameters,
    unrestricted_cell_experiment,
)
from .report import format_series, format_table
from .results import SeriesResult, TableResult

Result = Union[SeriesResult, TableResult]


@dataclass(frozen=True)
class Scale:
    """Workload sizing for one run of the harness."""

    name: str
    jacobi_small: JacobiConfig
    jacobi_medium: JacobiConfig
    jacobi_large: JacobiConfig
    water_small: WaterConfig
    water_medium: WaterConfig
    water_large: WaterConfig
    cholesky_scale14: float
    cholesky_scale15: float
    supernode: int
    procs: Sequence[int]
    nprocs_fixed: int
    page_sizes: Sequence[int]
    mcache_sizes: Sequence[int]
    message_sizes: Sequence[int]
    loss_rates: Sequence[float]
    coll_rounds: int = 8
    #: Sizes for the messaging-runtime latency sweep; straddle
    #: ``SimParams.rendezvous_threshold`` so the knee is visible.
    messaging_sizes: Sequence[int] = (256, 1024, 2048, 4096, 6144, 8192,
                                      12288)
    messaging_rounds: int = 6


QUICK = Scale(
    name="quick",
    jacobi_small=JacobiConfig(n=64, iterations=5),
    jacobi_medium=JacobiConfig(n=96, iterations=5),
    jacobi_large=JacobiConfig(n=128, iterations=5),
    water_small=WaterConfig(n_molecules=27, steps=2),
    water_medium=WaterConfig(n_molecules=48, steps=2),
    water_large=WaterConfig(n_molecules=64, steps=2),
    cholesky_scale14=0.06,
    cholesky_scale15=0.05,
    supernode=4,
    procs=(1, 2, 4, 8),
    nprocs_fixed=4,
    page_sizes=(1024, 2048, 4096, 8192),
    mcache_sizes=(8192, 16384, 32768, 65536, 131072, 262144),
    message_sizes=(0, 512, 1024, 2048, 3072, 4096),
    loss_rates=(0.0, 0.002, 0.01),
    coll_rounds=6,
    messaging_sizes=(256, 1024, 2048, 4096, 6144, 8192, 12288),
    messaging_rounds=4,
)

PAPER = Scale(
    name="paper",
    jacobi_small=JacobiConfig(n=128, iterations=20),
    jacobi_medium=JacobiConfig(n=256, iterations=20),
    jacobi_large=JacobiConfig(n=1024, iterations=20),
    water_small=WaterConfig(n_molecules=64, steps=2),
    water_medium=WaterConfig(n_molecules=216, steps=2),
    water_large=WaterConfig(n_molecules=343, steps=2),
    cholesky_scale14=1.0,
    cholesky_scale15=1.0,
    supernode=16,
    procs=(1, 2, 4, 8, 16, 32),
    nprocs_fixed=8,
    page_sizes=(1024, 2048, 4096, 8192, 16384),
    mcache_sizes=(8192, 32768, 131072, 262144, 524288, 1048576),
    message_sizes=(0, 512, 1024, 2048, 3072, 4096),
    loss_rates=(0.0, 0.001, 0.005, 0.01, 0.02),
    coll_rounds=24,
    messaging_sizes=(256, 512, 1024, 2048, 4096, 6144, 8192, 12288,
                     16384),
    messaging_rounds=12,
)


def active_scale() -> Scale:
    """QUICK unless ``REPRO_FULL=1`` asks for the paper's sizes."""
    return PAPER if os.environ.get("REPRO_FULL") == "1" else QUICK


def _chol14(scale: Scale) -> CholeskyConfig:
    return CholeskyConfig(matrix=bcsstk14_like(scale=scale.cholesky_scale14),
                          supernode=scale.supernode)


def _chol15(scale: Scale) -> CholeskyConfig:
    return CholeskyConfig(matrix=bcsstk15_like(scale=scale.cholesky_scale15),
                          supernode=scale.supernode)


# ------------------------------------------------------------- experiments --

def exp_table1(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Table 1: simulation parameters."""
    return table1_parameters()


def exp_fig2(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 2: Jacobi speedup + hit ratio, small matrix."""
    return speedup_experiment("jacobi", scale.jacobi_small, scale.procs,
                              base_params=base, name="fig2-jacobi-small")


def exp_fig3(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 3: Jacobi, medium matrix."""
    return speedup_experiment("jacobi", scale.jacobi_medium, scale.procs,
                              base_params=base, name="fig3-jacobi-medium")


def exp_fig4(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 4: Jacobi, large matrix."""
    return speedup_experiment("jacobi", scale.jacobi_large, scale.procs,
                              base_params=base, name="fig4-jacobi-large")


def exp_fig5(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 5: Jacobi page-size sensitivity."""
    return page_size_experiment("jacobi", scale.jacobi_large,
                                scale.page_sizes, scale.nprocs_fixed,
                                base_params=base, name="fig5-jacobi-pagesize")


def exp_table2(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Table 2: Jacobi overhead breakdown."""
    return overhead_table_experiment("jacobi", scale.jacobi_large,
                                     scale.nprocs_fixed,
                                     base_params=base, name="table2-jacobi-overhead")


def exp_fig6(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 6: Water speedup, small input."""
    return speedup_experiment("water", scale.water_small, scale.procs,
                              base_params=base, name="fig6-water-small")


def exp_fig7(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 7: Water, medium input."""
    return speedup_experiment("water", scale.water_medium, scale.procs,
                              base_params=base, name="fig7-water-medium")


def exp_fig8(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 8: Water, large input."""
    return speedup_experiment("water", scale.water_large, scale.procs,
                              base_params=base, name="fig8-water-large")


def exp_fig9(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 9: Water page-size sensitivity."""
    return page_size_experiment("water", scale.water_medium,
                                scale.page_sizes, scale.nprocs_fixed,
                                base_params=base, name="fig9-water-pagesize")


def exp_table3(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Table 3: Water overhead breakdown."""
    return overhead_table_experiment("water", scale.water_medium,
                                     scale.nprocs_fixed,
                                     base_params=base, name="table3-water-overhead")


def exp_fig10(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 10: Cholesky speedup, bcsstk14."""
    return speedup_experiment("cholesky", _chol14(scale), scale.procs,
                              base_params=base, name="fig10-cholesky-bcsstk14")


def exp_fig11(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 11: Cholesky speedup, bcsstk15."""
    return speedup_experiment("cholesky", _chol15(scale), scale.procs,
                              base_params=base, name="fig11-cholesky-bcsstk15")


def exp_fig12(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 12: Cholesky page-size sensitivity."""
    return page_size_experiment("cholesky", _chol14(scale),
                                scale.page_sizes, scale.nprocs_fixed,
                                base_params=base, name="fig12-cholesky-pagesize")


def exp_table4(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Table 4: Cholesky overhead breakdown."""
    return overhead_table_experiment("cholesky", _chol14(scale),
                                     scale.nprocs_fixed,
                                     base_params=base, name="table4-cholesky-overhead")


def exp_fig13(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 13: hit ratio vs Message Cache size, three apps.

    Jacobi runs the small matrix: the paper observes that "a slight
    increase of the Message Cache beyond 32KB brings the network cache
    hit ratio to its optimal limit ... because of the quantity and
    nature of the shared data", which pins the boundary working set near
    32 KB — the 128x128 case (the 1024x1024 grid's boundary set is
    ~64 KB and stays capacity-limited, visible in Figure 4's ratios).
    """
    return message_cache_size_experiment(
        {
            "jacobi": scale.jacobi_small,
            "water": scale.water_medium,
            "cholesky": _chol14(scale),
        },
        scale.mcache_sizes,
        scale.nprocs_fixed,
        base_params=base,
    )


def exp_fig14(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Figure 14: node-to-node latency microbenchmark."""
    return latency_microbenchmark(scale.message_sizes, base_params=base)


def exp_table5(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Table 5: unrestricted-cell-size improvement."""
    return unrestricted_cell_experiment(
        {
            "jacobi": scale.jacobi_large,
            "water": scale.water_large,
            "cholesky": _chol14(scale),
        },
        scale.nprocs_fixed,
        base_params=base,
    )


def exp_faults(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Robustness extension: Jacobi under a seeded cell-loss sweep with
    the reliable transport on, both interfaces (completion time, goodput
    and retransmissions vs loss rate)."""
    return fault_sweep_experiment("jacobi", scale.jacobi_small,
                                  scale.loss_rates,
                                  nprocs=min(scale.nprocs_fixed, 4),
                                  base_params=base, name="faults-jacobi")


def exp_collectives(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Collectives extension: barrier/all-reduce latency vs processor
    count, NIC-resident vs host-based engine (docs/collectives.md)."""
    return collective_latency_experiment(scale.procs,
                                         rounds=scale.coll_rounds,
                                         base_params=base,
                                         name="collectives-latency")


def exp_messaging(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Messaging-runtime extension: ping-pong latency vs size with the
    eager/rendezvous knee, plus the remote_read Message-Cache check
    (docs/runtime.md)."""
    return messaging_experiment(scale.messaging_sizes,
                                rounds=scale.messaging_rounds,
                                base_params=base,
                                name="messaging-latency")


def exp_failures(scale: Scale, base: Optional[SimParams] = None) -> Result:
    """Crash-stop fault-tolerance extension: representative workloads
    under crash / link-outage / loss plans, every run terminating with
    success or a typed error (docs/reliability.md)."""
    return failures_experiment(nprocs=min(scale.nprocs_fixed, 4),
                               base_params=base, name="failures")


EXPERIMENTS: Dict[str, Callable[..., Result]] = {
    "table1": exp_table1,
    "fig2": exp_fig2,
    "fig3": exp_fig3,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "table2": exp_table2,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "table3": exp_table3,
    "fig10": exp_fig10,
    "fig11": exp_fig11,
    "fig12": exp_fig12,
    "table4": exp_table4,
    "fig13": exp_fig13,
    "fig14": exp_fig14,
    "table5": exp_table5,
    "faults": exp_faults,
    "collectives": exp_collectives,
    "messaging": exp_messaging,
    "failures": exp_failures,
}


def run_experiment(exp_id: str, scale: Scale = None,
                   base_params: Optional[SimParams] = None) -> Result:
    """Run one experiment by id.  ``base_params`` overrides the default
    Table 1 configuration (the ``--fault-plan`` CLI path builds a base
    with a fault plan and the reliable transport enabled)."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id](scale or active_scale(), base_params)


def _take_option(argv: List[str], name: str) -> Optional[str]:
    if name in argv:
        i = argv.index(name)
        if i + 1 >= len(argv):
            raise SystemExit(f"{name} needs a value")
        value = argv[i + 1]
        del argv[i:i + 2]
        return value
    return None


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in argv
    argv = [a for a in argv if a != "--full"]
    svg_dir = _take_option(argv, "--svg")
    csv_dir = _take_option(argv, "--csv")
    metrics_dir = _take_option(argv, "--metrics")
    fault_spec = _take_option(argv, "--fault-plan")
    coll_arg = _take_option(argv, "--collectives")
    jobs_arg = _take_option(argv, "--jobs")
    deadline_arg = _take_option(argv, "--deadline-ns")
    heartbeat_arg = _take_option(argv, "--heartbeat-ns")
    topology_arg = _take_option(argv, "--topology")
    results_dir = _take_option(argv, "--results") or "results"
    from .parallel import set_default_jobs

    try:
        jobs = set_default_jobs(int(jobs_arg) if jobs_arg is not None
                                else None)
    except ValueError as exc:
        print(f"--jobs: {exc}", file=sys.stderr)
        return 1
    base_params = None
    if fault_spec:
        from ..faults import parse_fault_plan

        try:
            plan = parse_fault_plan(fault_spec)
        except ValueError as exc:
            print(f"--fault-plan: {exc}", file=sys.stderr)
            return 1
        base_params = SimParams().replace(fault_plan=plan,
                                          reliable_transport=True)
        print(f"fault plan: {base_params.fault_plan.describe()} "
              f"(reliable transport on)")
    if coll_arg:
        if coll_arg not in ("nic", "host"):
            print(f"--collectives: {coll_arg!r} must be 'nic' or 'host'",
                  file=sys.stderr)
            return 1
        base_params = (base_params or SimParams()).replace(
            collectives=coll_arg)
        print(f"collectives engine forced: {coll_arg}")
    if deadline_arg:
        try:
            deadline_ns = float(deadline_arg)
        except ValueError:
            print(f"--deadline-ns: {deadline_arg!r} is not a number",
                  file=sys.stderr)
            return 1
        base_params = (base_params or SimParams()).replace(
            op_deadline_ns=deadline_ns)
        print(f"operation deadline: {deadline_ns:.0f} ns")
    if heartbeat_arg:
        try:
            heartbeat_ns = float(heartbeat_arg)
        except ValueError:
            print(f"--heartbeat-ns: {heartbeat_arg!r} is not a number",
                  file=sys.stderr)
            return 1
        base_params = (base_params or SimParams()).replace(
            heartbeat_interval_ns=heartbeat_ns)
        print(f"heartbeat interval: {heartbeat_ns:.0f} ns")
    if topology_arg:
        from ..network.spec import parse_topology

        try:
            spec = parse_topology(topology_arg)
            base = base_params or SimParams()
            # Experiments set num_processors per point, so clamp the
            # base to the fabric's capacity here; a point that asks for
            # more nodes than the fabric attaches still fails its own
            # validation with the "does not fit" message.
            base_params = base.replace(
                topology=topology_arg,
                num_processors=min(base.num_processors, spec.capacity))
        except ValueError as exc:
            print(f"--topology: {exc}", file=sys.stderr)
            return 1
        print(f"fabric topology: {spec.canonical()} "
              f"({spec.capacity} attachment points)")
    scale = PAPER if (full or os.environ.get("REPRO_FULL") == "1") else QUICK
    if not argv:
        print(__doc__)
        print("experiments:", " ".join(sorted(EXPERIMENTS)))
        return 2
    if argv[0] == "metrics":
        from .metrics_cli import metrics_main

        # The metrics subcommand builds its own params from --nprocs;
        # hand the already-validated spec through rather than binding
        # it to this driver's base_params.
        extra = ["--topology", topology_arg] if topology_arg else []
        return metrics_main(argv[1:] + extra, scale)
    ids = sorted(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {' '.join(unknown)} "
              f"(choose from {' '.join(sorted(EXPERIMENTS))})",
              file=sys.stderr)
        return 2
    if jobs > 1:
        print(f"parallel executor: --jobs {jobs}")
    results_path = os.path.join(results_dir,
                                f"{scale.name}_scale_results.txt")
    os.makedirs(results_dir, exist_ok=True)
    with open(results_path, "w"):
        pass  # one invocation == one results file; re-runs start fresh
    for exp_id in ids:
        from .export import GLOBAL_METRICS_LOG

        GLOBAL_METRICS_LOG.clear()
        result = run_experiment(exp_id, scale, base_params)
        if isinstance(result, SeriesResult):
            text = format_series(result)
        else:
            text = format_table(result)
        print(text)
        with open(results_path, "a") as fh:
            fh.write(text + "\n\n")
        if svg_dir and isinstance(result, SeriesResult):
            from .svgplot import render_series_svg

            os.makedirs(svg_dir, exist_ok=True)
            path = os.path.join(svg_dir, f"{exp_id}.svg")
            with open(path, "w") as fh:
                fh.write(render_series_svg(result))
            print(f"   wrote {path}")
        if csv_dir:
            from .export import to_csv

            os.makedirs(csv_dir, exist_ok=True)
            path = os.path.join(csv_dir, f"{exp_id}.csv")
            with open(path, "w") as fh:
                fh.write(to_csv(result))
            print(f"   wrote {path}")
        if metrics_dir:
            os.makedirs(metrics_dir, exist_ok=True)
            path = os.path.join(metrics_dir, f"{exp_id}.metrics.json")
            with open(path, "w") as fh:
                fh.write(GLOBAL_METRICS_LOG.to_json(name=exp_id))
            print(f"   wrote {path} ({len(GLOBAL_METRICS_LOG)} runs)")
        print()
    print(f"wrote {results_path}")
    return 0
