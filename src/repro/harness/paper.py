"""The paper's published numbers and claims, transcribed for comparison.

Everything here is read off Sarkar & Bailey (HPDC 1996) directly: the
absolute rows of Tables 2-5 and the qualitative claims each figure makes.
``repro.harness.compare`` joins these with measured results to render
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Tables 2-4, in 1e9 cycles as printed in the paper (8 processors).
PAPER_OVERHEAD_TABLES: Dict[str, Dict[str, Dict[str, float]]] = {
    "table2": {  # Jacobi, 1024x1024, 2 KB shared pages
        "synch_overhead": {"cni": 0.054e9, "standard": 0.063e9},
        "synch_delay": {"cni": 0.086e9, "standard": 0.099e9},
        "computation": {"cni": 1.164e9, "standard": 1.165e9},
        "total": {"cni": 1.304e9, "standard": 1.330e9},
    },
    "table3": {  # Water, 216 molecules
        "synch_overhead": {"cni": 0.17e9, "standard": 0.30e9},
        "synch_delay": {"cni": 2.24e9, "standard": 2.45e9},
        "computation": {"cni": 2.95e9, "standard": 2.95e9},
        "total": {"cni": 5.36e9, "standard": 5.70e9},
    },
    "table4": {  # Cholesky, bcsstk14
        "synch_overhead": {"cni": 3.39e9, "standard": 3.35e9},
        "synch_delay": {"cni": 61.8e9, "standard": 65.1e9},
        "computation": {"cni": 21.5e9, "standard": 21.5e9},
        "total": {"cni": 85.70e9, "standard": 89.0e9},
    },
}

#: Table 5: % improvement with unrestricted ATM cell size (8 procs).
PAPER_TABLE5: Dict[str, float] = {
    "jacobi": 5.69,     # 1024x1024
    "water": 13.31,     # 343 molecules
    "cholesky": 25.29,  # bcsstk14
}

#: Figure 14's headline: 4 KB transfer latency reduction.
PAPER_FIG14_REDUCTION_AT_4KB = 0.33


@dataclass(frozen=True)
class FigureClaim:
    """What a figure is evidence for, and how we verify the shape."""

    exp_id: str
    paper_says: str
    checks: List[str] = field(default_factory=list)


FIGURE_CLAIMS: List[FigureClaim] = [
    FigureClaim(
        "fig2",
        "Jacobi 128x128: both configurations speed up; performance is "
        "mediocre at 32 processors; the CNI degrades less; hit ratio "
        "96.5-99.5% rising with processors.",
        ["cni_speedup >= standard_speedup at every point",
         "hit ratio high and rising with processors"],
    ),
    FigureClaim(
        "fig3",
        "Jacobi 256x256: better scaling than 128x128; CNI above standard.",
        ["peak cni_speedup(fig3) >= peak cni_speedup(fig2)"],
    ),
    FigureClaim(
        "fig4",
        "Jacobi 1024x1024: best scaling of the three; the coarse grain "
        "means the CNI/standard difference is not substantial.",
        ["peak cni_speedup(fig4) >= peak cni_speedup(fig3)",
         "cni/standard gap smaller than for Water/Cholesky"],
    ),
    FigureClaim(
        "fig5",
        "Jacobi page-size sweep: the CNI is less sensitive to page size "
        "because of the lower cost of page transfers.",
        ["relative spread of cni_speedup <= spread of standard_speedup"],
    ),
    FigureClaim(
        "fig6",
        "Water 64: hit ratio sensitive to processor count; CNI scales "
        "better.",
        ["cni_speedup >= standard_speedup", "hit ratio varies with procs"],
    ),
    FigureClaim(
        "fig7", "Water 216: as fig6 at a larger input.",
        ["cni_speedup >= standard_speedup"],
    ),
    FigureClaim(
        "fig8", "Water 343: as fig6 at the largest input.",
        ["cni_speedup >= standard_speedup"],
    ),
    FigureClaim(
        "fig9",
        "Water page-size sweep: CNI less sensitive despite some false "
        "sharing at large pages.",
        ["relative spread of cni_speedup <= spread of standard_speedup"],
    ),
    FigureClaim(
        "fig10",
        "Cholesky bcsstk14: fine-grained; receive caching helps page "
        "migration a great deal; the CNI/standard gap is the largest of "
        "the three applications.",
        ["cni_speedup >= standard_speedup with the largest relative gap"],
    ),
    FigureClaim(
        "fig11",
        "Cholesky bcsstk15 shows better speedup because of the larger "
        "matrix.",
        ["peak cni_speedup(fig11) >= peak cni_speedup(fig10)"],
    ),
    FigureClaim(
        "fig12",
        "Cholesky is very sensitive to page size (page migration "
        "overhead); the CNI reduces that sensitivity a lot.",
        ["relative spread of cni_speedup <= spread of standard_speedup"],
    ),
    FigureClaim(
        "fig13",
        "Hit ratio vs Message Cache size: Jacobi and Water saturate just "
        "past 32 KB; Cholesky saturates near 90% only at 512 KB.",
        ["all curves non-decreasing and saturating"],
    ),
    FigureClaim(
        "fig14",
        "Node-to-node latency ~linear in message size; CNI lower by as "
        "much as 33% for a 4 KB page transfer.",
        ["both curves monotone; CNI uniformly lower; 15-55% reduction "
         "at 4 KB"],
    ),
]


def claim_for(exp_id: str) -> Optional[FigureClaim]:
    """The figure claim for ``exp_id`` (None for tables)."""
    for c in FIGURE_CLAIMS:
        if c.exp_id == exp_id:
            return c
    return None
