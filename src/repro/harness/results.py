"""Result containers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class SeriesResult:
    """An x-vs-several-ys result (one figure)."""

    name: str
    x_label: str
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, series_name: str, value: float) -> None:
        """Append one y value to ``series_name``."""
        self.series.setdefault(series_name, []).append(value)

    def get(self, series_name: str) -> List[float]:
        """One named series."""
        return self.series[series_name]

    def validate(self) -> None:
        """Every series must align with the x axis."""
        for name, ys in self.series.items():
            if len(ys) != len(self.xs):
                raise ValueError(
                    f"{self.name}: series {name!r} has {len(ys)} points "
                    f"for {len(self.xs)} x values"
                )


@dataclass
class TableResult:
    """A labelled-rows result (one table)."""

    name: str
    columns: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, label: str, values: Sequence[float]) -> None:
        """Add one row; must match the column count."""
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: row {label!r} has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows[label] = values

    def cell(self, row: str, column: str) -> float:
        """Single-cell access by labels."""
        return self.rows[row][self.columns.index(column)]
