"""Paper-vs-measured comparison: parse harness output, render EXPERIMENTS.md.

Workflow (the runner writes these files itself; see ``--results``)::

    python -m repro.harness all              # -> results/quick_scale_results.txt
    REPRO_FULL=1 python -m repro.harness all # -> results/paper_scale_results.txt
    python -m repro.harness.compare results/quick_scale_results.txt \
        results/paper_scale_results.txt > EXPERIMENTS.md

The parser reads back the text format :mod:`repro.harness.report` emits,
so the comparison document is regenerable from the same artifacts a user
produces.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple, Union

from .paper import (
    FIGURE_CLAIMS,
    PAPER_FIG14_REDUCTION_AT_4KB,
    PAPER_OVERHEAD_TABLES,
    PAPER_TABLE5,
    claim_for,
)
from .results import SeriesResult, TableResult

Result = Union[SeriesResult, TableResult]

#: Known, explained divergences — rendered alongside the verdicts so the
#: document stays honest without looking broken.
DIVERGENCE_NOTES: Dict[str, str] = {
    "fig12": (
        "At the paper's workload size our CNI curve has the *larger* "
        "relative spread: the Message Cache's advantage is biggest at "
        "small pages (many buffers, cheap migration) and collapses at "
        "16 KB pages (a 32 KB cache holds two buffers), so the CNI's "
        "higher peak makes its normalized sensitivity larger even "
        "though it beats the standard interface at every page size. "
        "The paper's claim holds in the absolute sense that CNI >= "
        "standard throughout the sweep."
    ),
    "fig10": (
        "Absolute Cholesky speedups in our reproduction peak near 1.5-1.7x "
        "at 8 processors and fall below 1x at 32: the banded stand-in's "
        "task graph (16 elimination branches) and the shared bag-of-tasks "
        "serialize at high processor counts, and per-task work is small "
        "against distributed-lock latency.  The claims the paper actually "
        "makes — receive caching matters, and the CNI/standard gap is the "
        "largest of the three applications (CNI ~1.6-1.8x the standard "
        "interface throughout) — hold at every point."
    ),
    "fig4": (
        "Hit ratio at 1024x1024 is capacity-limited in our model: the "
        "boundary working set (two 8 KB rows x two grids x send+receive "
        "sides) is ~64 KB against the 32 KB Message Cache, so ratios "
        "sit near 70% at 8+ processors instead of the paper's 93-99%. "
        "Figure 13 confirms the same run reaches ~97% once the cache "
        "exceeds 128 KB."
    ),
}


def parse_results_file(path: str) -> Dict[str, Result]:
    """Parse a ``== name ==`` results dump back into result objects.

    Result names are normalized to experiment ids where possible
    (``fig5-jacobi-pagesize`` -> ``fig5``).
    """
    with open(path) as fh:
        lines = [ln.rstrip("\n") for ln in fh]
    out: Dict[str, Result] = {}
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if not (line.startswith("== ") and line.endswith(" ==")):
            i += 1
            continue
        name = line[3:-3].strip()
        header = lines[i + 1].split()
        body: List[List[str]] = []
        j = i + 2
        while j < len(lines) and lines[j].strip() and not \
                lines[j].strip().startswith("=="):
            if not lines[j].strip().startswith("("):
                body.append(lines[j].split())
            j += 1
        result = _build_result(name, header, body)
        out[_normalize(name)] = result
        i = j
    return out


def _normalize(name: str) -> str:
    head = name.split("-")[0]
    if head.startswith(("fig", "table")):
        return head
    aliases = {
        "mcache": "fig13",
        "latency": "fig14",
        "unrestricted": "table5",
        "simulation": "table1",
        "bandwidth": "bandwidth",
    }
    return aliases.get(head, name)


def _build_result(name: str, header: List[str],
                  body: List[List[str]]) -> Result:
    if header and header[0] == "row":
        table = TableResult(name=name, columns=header[1:])
        for row in body:
            table.add_row(row[0], [float(v) for v in row[1:]])
        return table
    series = SeriesResult(name=name, x_label=header[0],
                          xs=[float(r[0]) for r in body])
    for c, col in enumerate(header[1:], start=1):
        series.series[col] = [float(r[c]) for r in body]
    series.validate()
    return series


# ---------------------------------------------------------------- verdicts --

def _spread(ys: List[float]) -> float:
    return (max(ys) - min(ys)) / max(ys) if ys and max(ys) else 0.0


def figure_verdict(exp_id: str, r: SeriesResult) -> Tuple[str, str]:
    """(verdict, evidence) for one figure's shape claims."""
    try:
        if exp_id in ("fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                      "fig10", "fig11"):
            cni = r.get("cni_speedup")
            std = r.get("standard_speedup")
            ok = all(c >= s * 0.95 for c, s in zip(cni, std))
            ev = (f"CNI {cni[-1]:.2f}x vs standard {std[-1]:.2f}x at "
                  f"{int(r.xs[-1])} procs")
            if "network_cache_hit_ratio" in r.series:
                hits = r.get("network_cache_hit_ratio")
                ev += f"; hit ratio {hits[1]:.1f}->{hits[-1]:.1f}%"
            return ("holds" if ok else "DIVERGES", ev)
        if exp_id in ("fig5", "fig9", "fig12"):
            cni = r.get("cni_speedup")
            std = r.get("standard_speedup")
            ok = _spread(cni) <= _spread(std) + 0.05 and all(
                c >= s * 0.95 for c, s in zip(cni, std))
            return ("holds" if ok else "DIVERGES",
                    f"spread CNI {100*_spread(cni):.1f}% vs standard "
                    f"{100*_spread(std):.1f}%")
        if exp_id == "fig13":
            ok = True
            evs = []
            for app in ("jacobi", "water", "cholesky"):
                ys = r.get(app)
                ok = ok and all(b >= a - 3.0 for a, b in zip(ys, ys[1:]))
                evs.append(f"{app} {ys[0]:.0f}->{ys[-1]:.0f}%")
            return ("holds" if ok else "DIVERGES", ", ".join(evs))
        if exp_id == "fig14":
            cni = r.get("cni_latency_us")
            std = r.get("standard_latency_us")
            red = 1 - cni[-1] / std[-1]
            ok = all(c < s for c, s in zip(cni, std)) and 0.15 <= red <= 0.55
            return ("holds" if ok else "DIVERGES",
                    f"{100*red:.0f}% lower at {int(r.xs[-1])} B "
                    f"(paper: up to {100*PAPER_FIG14_REDUCTION_AT_4KB:.0f}%)")
    except KeyError as exc:
        return ("n/a", f"series missing: {exc}")
    return ("n/a", "no automated check")


def table_verdict(exp_id: str, r: TableResult) -> Tuple[str, str]:
    """(verdict, evidence) for one table's claims."""
    if exp_id in PAPER_OVERHEAD_TABLES:
        cni = {row: r.cell(row, "time_cni_cycles") for row in r.rows}
        std = {row: r.cell(row, "time_standard_cycles") for row in r.rows}
        ok = (cni["synch_delay"] <= std["synch_delay"]
              and cni["total"] < std["total"])
        paper = PAPER_OVERHEAD_TABLES[exp_id]
        p_gain = 1 - paper["total"]["cni"] / paper["total"]["standard"]
        m_gain = 1 - cni["total"] / std["total"]
        return ("holds" if ok else "DIVERGES",
                f"CNI total {100*m_gain:.1f}% lower "
                f"(paper: {100*p_gain:.1f}%)")
    if exp_id == "table5":
        evs = []
        ok = True
        for app, paper_pct in PAPER_TABLE5.items():
            if app in r.rows:
                got = r.cell(app, "pct_improvement")
                ok = ok and got > 0.5
                evs.append(f"{app} {got:.1f}% (paper {paper_pct:.2f}%)")
        return ("holds" if ok else "DIVERGES", ", ".join(evs))
    return ("n/a", "reference values not tabulated")


# ---------------------------------------------------------------- renderer --

def render_experiments_md(
    quick: Dict[str, Result],
    paper: Optional[Dict[str, Result]] = None,
) -> str:
    """Build the EXPERIMENTS.md document."""
    paper = paper or {}
    out: List[str] = []
    out.append("# EXPERIMENTS — paper vs. measured\n")
    out.append(
        "Generated by `python -m repro.harness.compare` from harness "
        "output files.\nColumns: the paper's claim for each table/figure, "
        "and whether the\nregenerated data holds that claim at the "
        "`quick` scale (CI-sized\nworkloads) and the `paper` scale "
        "(REPRO_FULL=1: the paper's workload\nsizes).  Absolute cycle "
        "counts are not comparable across simulators;\nclaims are about "
        "orderings, trends and relative gaps — see DESIGN.md.\n"
    )
    ids = [c.exp_id for c in FIGURE_CLAIMS] + ["table2", "table3", "table4",
                                               "table5"]
    for exp_id in ids:
        claim = claim_for(exp_id)
        out.append(f"\n## {exp_id}\n")
        if claim is not None:
            out.append(f"**Paper:** {claim.paper_says}\n")
        elif exp_id in PAPER_OVERHEAD_TABLES:
            p = PAPER_OVERHEAD_TABLES[exp_id]
            out.append(
                "**Paper (10^9 cycles, 8 procs):** "
                + "; ".join(
                    f"{row} {p[row]['cni']/1e9:g}/{p[row]['standard']/1e9:g}"
                    f" (CNI/std)"
                    for row in ("synch_overhead", "synch_delay",
                                "computation", "total")
                ) + "\n"
            )
        elif exp_id == "table5":
            out.append(
                "**Paper (% improvement, unrestricted cell size):** "
                + ", ".join(f"{k} {v}%" for k, v in PAPER_TABLE5.items())
                + "\n"
            )
        for scale_name, results in (("quick", quick), ("paper", paper)):
            r = results.get(exp_id)
            if r is None:
                out.append(f"- *{scale_name} scale*: (not measured)")
                continue
            if isinstance(r, SeriesResult):
                verdict, ev = figure_verdict(exp_id, r)
            else:
                verdict, ev = table_verdict(exp_id, r)
            out.append(f"- *{scale_name} scale*: **{verdict}** — {ev}")
        if exp_id in DIVERGENCE_NOTES:
            out.append("\n*Note:* " + DIVERGENCE_NOTES[exp_id])
    out.append(
        "\n## Raw data\n\n"
        "The per-point numbers behind every verdict are in "
        "`results/quick_scale_results.txt` and "
        "`results/paper_scale_results.txt` (regenerate with "
        "`python -m repro.harness all` and `REPRO_FULL=1 python -m "
        "repro.harness all`; add `--jobs N` to fan the grid across "
        "cores — see [docs/parallel_runs.md](docs/parallel_runs.md)).  "
        "SVG renderings of any figure: "
        "`python -m repro.harness figN --svg out/`.\n"
    )
    out.append("")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: compare one or two results files, print EXPERIMENTS.md."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(argv) <= 2:
        print("usage: python -m repro.harness.compare "
              "QUICK_RESULTS [PAPER_RESULTS]", file=sys.stderr)
        return 2
    quick = parse_results_file(argv[0])
    paper = parse_results_file(argv[1]) if len(argv) == 2 else None
    print(render_experiments_md(quick, paper))
    return 0


if __name__ == "__main__":
    sys.exit(main())
