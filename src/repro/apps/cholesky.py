"""Cholesky — the paper's fine-grained benchmark (from SPLASH).

Section 3.1: "Cholesky is a fine-grained application that factorizes a
sparse positive-definite matrix.  Each processor modifies a column or a
set of columns called supernodes ... Access to the columns and
supernodes are synchronized through column locks.  Columns or supernodes
are allocated to a processor using the bag of tasks paradigm.  Pages
tend to move from the releaser to the acquirer ... one page usually
contains many columns, so concurrent write sharing and the use of write
notices increases the parallelism and reduces the amount of data
exchanged."

Reimplementation: right-looking supernodal factorization of a banded SPD
matrix (see :mod:`.matrices` for the BCSSTK stand-ins).

* Column ``j`` of the matrix is one contiguous row of the shared band
  array, so a page carries many columns — the paper's sharing pattern.
* A *supernode* is a run of consecutive columns.  A supernode becomes a
  task once every earlier supernode in band reach has pushed its updates
  into it; readiness is tracked by shared per-supernode counters.
* Tasks live in a shared **bag** protected by a lock; idle processors
  poll the bag (spinning with backoff, as the SPLASH code does).
* Updating a later supernode's columns takes that supernode's **column
  lock**, giving exactly the releaser-to-acquirer page migration the
  paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Tuple

import numpy as np

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context
from .base import SharedArray, SharedScalarTable
from .matrices import BandedSPD, band_cholesky_reference, bcsstk14_like
from .registry import register_workload

#: Lock-id namespaces.
BAG_LOCK = 1
SN_LOCK_BASE = 100

#: Cycle costs: one multiply-add in a column update / cdiv.
CYCLES_PER_FLOP = 2.0

#: Initial spin backoff while the bag is empty (cycles of useless host
#: work); doubles on consecutive empty polls up to the cap so that idle
#: workers do not serialize the bag lock against actual task pushes.
SPIN_BACKOFF_CYCLES = 2500
SPIN_BACKOFF_MAX_CYCLES = 80_000


@dataclass(frozen=True)
class CholeskyConfig:
    """One Cholesky experiment."""

    matrix: BandedSPD = None  # type: ignore[assignment]
    supernode: int = 8

    def __post_init__(self):
        if self.matrix is None:
            object.__setattr__(self, "matrix", bcsstk14_like(scale=0.1))
        if self.supernode < 1:
            raise ValueError("supernode width must be positive")

    @property
    def n_supernodes(self) -> int:
        return -(-self.matrix.n // self.supernode)

    def sn_columns(self, s: int) -> Tuple[int, int]:
        """Column range [lo, hi) of supernode ``s``."""
        lo = s * self.supernode
        return lo, min(lo + self.supernode, self.matrix.n)

    def _connected(self, s: int, t: int) -> bool:
        """Whether supernode ``s``'s columns update supernode ``t``'s.

        True iff some column ``j`` of ``s`` has a structural entry at a
        row inside ``t`` — band reach restricted to ``j``'s elimination
        block (cross-block entries are zero by construction)."""
        lo, hi = self.sn_columns(s)
        tlo, thi = self.sn_columns(t)
        m = self.matrix
        for j in range(lo, hi):
            k_hi = min(m.bandwidth, m.n - 1 - j, thi - 1 - j)
            k_lo = max(1, tlo - j)
            if k_lo > k_hi:
                continue
            if m.block_size is None:
                return True
            blk = j // m.block_size
            first = max(j + k_lo, blk * m.block_size)
            last = min(j + k_hi, (blk + 1) * m.block_size - 1)
            if first <= last:
                return True
        return False

    def predecessors(self, s: int) -> int:
        """How many earlier supernodes reach supernode ``s``."""
        reach_sn = -(-self.matrix.bandwidth // self.supernode)
        return sum(
            1
            for k in range(max(0, s - reach_sn - 1), s)
            if self._connected(k, s)
        )

    def successors(self, s: int) -> List[int]:
        """Later supernodes that columns of ``s`` update."""
        _lo, hi = self.sn_columns(s)
        out = []
        for t in range(s + 1, self.n_supernodes):
            tlo, _thi = self.sn_columns(t)
            if hi - 1 + self.matrix.bandwidth < tlo:
                break
            if self._connected(s, t):
                out.append(t)
        return out


class CholeskyShared:
    """The shared state of one factorization run."""

    def __init__(self, cluster: Cluster, cfg: CholeskyConfig):
        m = cfg.matrix
        self.bands = SharedArray(
            cluster.alloc_shared((m.n, m.bandwidth + 1)), "chol-bands"
        )
        self.bands.data[:] = m.bands
        s = cfg.n_supernodes
        # control block: bag entries + head/tail + per-supernode pending
        # + done counter, in shared memory like the SPLASH task queue.
        self.bag = SharedScalarTable(
            SharedArray(cluster.alloc_shared((s + 2,)), "chol-bag"))
        self.pending = SharedScalarTable(
            SharedArray(cluster.alloc_shared((s + 1,)), "chol-pending"))
        for t in range(s):
            self.pending.arr.data[t] = cfg.predecessors(t)
        self.pending.arr.data[s] = 0.0  # done counter
        head = 0
        for t in range(s):
            if cfg.predecessors(t) == 0:
                self.bag.arr.data[2 + head] = t
                head += 1
        self.bag.arr.data[0] = 0.0    # head
        self.bag.arr.data[1] = head   # tail
        self.s = s


def _factor_internal(cfg: CholeskyConfig, bands: np.ndarray,
                     lo: int, hi: int) -> int:
    """cdiv of columns [lo, hi) plus updates landing *inside* [lo, hi).

    Real arithmetic, canonical column order; returns the flop count for
    pricing.  External updates (into later supernodes) are applied
    separately under each target's own column lock."""
    n, b = cfg.matrix.n, cfg.matrix.bandwidth
    flops = 0
    for j in range(lo, hi):
        d = np.sqrt(bands[j, 0])
        bands[j, :] /= d
        reach = min(b, n - 1 - j, hi - 1 - j)
        flops += b + 2
        for k in range(1, reach + 1):
            ell = bands[j, k]
            if ell != 0.0:
                bands[j + k, : b + 1 - k] -= ell * bands[j, k:]
                flops += 2 * (b + 1 - k)
    return flops


def _apply_external(cfg: CholeskyConfig, bands: np.ndarray,
                    lo: int, hi: int, tlo: int, thi: int) -> int:
    """Updates from finished columns [lo, hi) into targets [tlo, thi)."""
    n, b = cfg.matrix.n, cfg.matrix.bandwidth
    flops = 0
    for j in range(lo, hi):
        k_lo = max(1, tlo - j)
        k_hi = min(b, n - 1 - j, thi - 1 - j)
        for k in range(k_lo, k_hi + 1):
            ell = bands[j, k]
            if ell != 0.0:
                bands[j + k, : b + 1 - k] -= ell * bands[j, k:]
                flops += 2 * (b + 1 - k)
    return flops


def cholesky_kernel(ctx: Context, cfg: CholeskyConfig,
                    sh: CholeskyShared) -> Generator:
    """SPMD worker: pull ready supernodes from the bag until all done."""
    m = cfg.matrix
    s_total = sh.s
    done_idx = s_total  # index of the done counter in `pending`
    backoff = SPIN_BACKOFF_CYCLES

    while True:
        # ---- poll the bag (the done counter lives under the same lock) ----
        yield from ctx.acquire(BAG_LOCK)
        head = yield from sh.bag.get(ctx, 0)
        tail = yield from sh.bag.get(ctx, 1)
        task = -1
        all_done = False
        if head < tail:
            task = int((yield from sh.bag.get(ctx, 2 + int(head))))
            yield from sh.bag.set(ctx, 0, head + 1)
        else:
            done = yield from sh.pending.get(ctx, done_idx)
            all_done = int(done) >= s_total
        yield from ctx.release(BAG_LOCK)

        if task < 0:
            if all_done:
                break
            yield from ctx.idle(backoff)
            backoff = min(2 * backoff, SPIN_BACKOFF_MAX_CYCLES)
            continue
        backoff = SPIN_BACKOFF_CYCLES

        # ---- factor the supernode (own column lock only) -------------------
        lo, hi = cfg.sn_columns(task)
        succ = cfg.successors(task)
        yield from ctx.acquire(SN_LOCK_BASE + task)
        yield from ctx.read_runs(
            sh.bands.runs_for((slice(lo, hi), slice(None))))
        yield from ctx.write_runs(
            sh.bands.runs_for((slice(lo, hi), slice(None))))
        flops = _factor_internal(cfg, sh.bands.data, lo, hi)
        yield from ctx.compute(flops * CYCLES_PER_FLOP)

        # ---- push updates into each later supernode under its own
        # column lock (short critical sections: the paper's column-lock
        # discipline), decrementing its readiness counter while held.
        newly_ready = []
        for t in succ:
            tlo, thi = cfg.sn_columns(t)
            yield from ctx.acquire(SN_LOCK_BASE + t)
            yield from ctx.read_runs(
                sh.bands.runs_for((slice(tlo, thi), slice(None))))
            yield from ctx.write_runs(
                sh.bands.runs_for((slice(tlo, thi), slice(None))))
            f = _apply_external(cfg, sh.bands.data, lo, hi, tlo, thi)
            yield from ctx.compute(f * CYCLES_PER_FLOP)
            left = yield from sh.pending.add(ctx, t, -1.0)
            if left == 0:
                newly_ready.append(t)
            yield from ctx.release(SN_LOCK_BASE + t)
        # One bag critical section per task: push any newly ready
        # supernodes and bump the completion counter together.
        yield from ctx.acquire(BAG_LOCK)
        if newly_ready:
            tail = yield from sh.bag.get(ctx, 1)
            for t in sorted(newly_ready):
                yield from sh.bag.set(ctx, 2 + int(tail), t)
                tail += 1
            yield from sh.bag.set(ctx, 1, tail)
        yield from sh.pending.add(ctx, done_idx, 1.0)
        yield from ctx.release(BAG_LOCK)
        yield from ctx.release(SN_LOCK_BASE + task)
    yield from ctx.barrier(0)
    return None


def dsm_pages_needed(cfg: CholeskyConfig, params: SimParams) -> int:
    """Segment sizing helper."""
    band_bytes = cfg.matrix.n * (cfg.matrix.bandwidth + 1) * 8
    return -(-band_bytes // params.page_size_bytes) + 8


@register_workload("cholesky", CholeskyConfig, default_config=CholeskyConfig,
                   description="fine-grained SPLASH sparse factorization")
def run_cholesky(params: SimParams, interface: str,
                 cfg: CholeskyConfig) -> Tuple[RunStats, np.ndarray]:
    """Run one Cholesky experiment; returns (stats, factor bands)."""
    params = params.replace(
        dsm_address_space_pages=max(params.dsm_address_space_pages,
                                    dsm_pages_needed(cfg, params))
    )
    cluster = Cluster(params, interface=interface)
    sh = CholeskyShared(cluster, cfg)
    stats = cluster.run(lambda ctx: cholesky_kernel(ctx, cfg, sh))
    return stats, sh.bands.data.copy()
