"""Jacobi iteration — the paper's coarse-grained benchmark.

Section 3.1: "Jacobi is a coarse-grained application with two major
synchronization points per iteration and a high computation/
communication ratio.  Each point in the strip is iteratively calculated
from the values of its neighbors."  Run with 128x128, 256x256, 512x512
and 1024x1024 matrices in the paper's figures.

Structure: the grid is block-partitioned by rows; each processor updates
its strip from the previous grid (reading one boundary row from each
neighbour) into the next grid, with a barrier after the sweep and a
barrier after the (pointer) swap — the two synchronization points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Tuple

import numpy as np

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context
from .base import SharedArray
from .registry import register_workload

#: CPU cycles charged per grid-point relaxation: four loads, three adds,
#: one multiply, one store plus index arithmetic and loop overhead on a
#: 166 MHz Alpha — the "high computation/communication ratio" the paper
#: attributes to Jacobi comes from this constant being large relative to
#: the per-page communication costs.
CYCLES_PER_POINT = 40.0


@dataclass(frozen=True)
class JacobiConfig:
    """One Jacobi experiment."""

    n: int = 128
    iterations: int = 10

    def __post_init__(self):
        if self.n < 4:
            raise ValueError("grid too small")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")


def _strip(n: int, rank: int, nprocs: int) -> Tuple[int, int]:
    """Interior rows [lo, hi) owned by ``rank`` (rows 0 and n-1 fixed)."""
    interior = n - 2
    per = interior // nprocs
    extra = interior % nprocs
    lo = 1 + rank * per + min(rank, extra)
    hi = lo + per + (1 if rank < extra else 0)
    return lo, hi


def initialize_grid(n: int) -> np.ndarray:
    """The boundary-value problem both implementations solve: a hot top
    edge, cold other edges, zero interior."""
    g = np.zeros((n, n))
    g[0, :] = 100.0
    return g


def sequential_reference(cfg: JacobiConfig) -> np.ndarray:
    """Pure-numpy reference result for correctness checks."""
    cur = initialize_grid(cfg.n)
    nxt = cur.copy()
    for _ in range(cfg.iterations):
        nxt[1:-1, 1:-1] = 0.25 * (
            cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
        )
        cur, nxt = nxt, cur
    return cur


def jacobi_kernel(ctx: Context, cfg: JacobiConfig,
                  grids: List[SharedArray]) -> Generator:
    """SPMD Jacobi worker."""
    n = cfg.n
    lo, hi = _strip(n, ctx.rank, ctx.nprocs)
    cur, nxt = grids
    for it in range(cfg.iterations):
        if hi > lo:
            # Read the strip plus its two boundary rows from `cur`...
            yield from ctx.read_runs(cur.runs_for((slice(lo - 1, hi + 1),
                                                   slice(None))))
            # ...compute (priced per point, executed for real)...
            yield from ctx.compute((hi - lo) * (n - 2) * CYCLES_PER_POINT)
            # ...and write the strip of `nxt`.
            yield from ctx.write_runs(nxt.runs_for((slice(lo, hi),
                                                    slice(None))))
            nxt.data[lo:hi, 1:-1] = 0.25 * (
                cur.data[lo - 1:hi - 1, 1:-1] + cur.data[lo + 1:hi + 1, 1:-1]
                + cur.data[lo:hi, :-2] + cur.data[lo:hi, 2:]
            )
            # boundary columns stay fixed
            nxt.data[lo:hi, 0] = cur.data[lo:hi, 0]
            nxt.data[lo:hi, -1] = cur.data[lo:hi, -1]
        # Synchronization point 1: everybody's strip is written.
        yield from ctx.barrier(0)
        cur, nxt = nxt, cur
        # Synchronization point 2: the swap is globally agreed.
        yield from ctx.barrier(1)
    return None


def build_jacobi(cluster: Cluster, cfg: JacobiConfig) -> List[SharedArray]:
    """Allocate and initialize the two grids on a cluster."""
    a = SharedArray(cluster.alloc_shared((cfg.n, cfg.n)), "jacobi-a")
    b = SharedArray(cluster.alloc_shared((cfg.n, cfg.n)), "jacobi-b")
    a.data[:] = initialize_grid(cfg.n)
    b.data[:] = a.data
    return [a, b]


def dsm_pages_needed(cfg: JacobiConfig, params: SimParams) -> int:
    """Segment sizing helper for experiment drivers."""
    grid_pages = -(-cfg.n * cfg.n * 8 // params.page_size_bytes)
    return 2 * (grid_pages + 1) + 8


@register_workload("jacobi", JacobiConfig, default_config=JacobiConfig,
                   description="coarse-grained iterative grid relaxation")
def run_jacobi(params: SimParams, interface: str,
               cfg: JacobiConfig) -> Tuple[RunStats, np.ndarray]:
    """Run one Jacobi experiment; returns (stats, final grid)."""
    params = params.replace(
        dsm_address_space_pages=max(params.dsm_address_space_pages,
                                    dsm_pages_needed(cfg, params))
    )
    cluster = Cluster(params, interface=interface, home_scheme="block")
    grids = build_jacobi(cluster, cfg)
    stats = cluster.run(lambda ctx: jacobi_kernel(ctx, cfg, grids))
    final = grids[cfg.iterations % 2].data
    return stats, final.copy()
