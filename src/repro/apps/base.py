"""Shared-array access layer for the benchmark applications.

:class:`SharedArray` marries a DSM allocation with the context's
run-based access primitive: application code names a row/slice, the
array computes the exact contiguous byte runs it occupies, the context
prices them through the cache and DSM models, and the *real* numpy data
moves — execution-driven simulation in the sense of Section 3.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dsm import SharedAlloc
from ..runtime import Context

Key = Union[int, slice, Tuple]


class SharedArray:
    """An N-D shared array with priced accesses."""

    def __init__(self, alloc: SharedAlloc, name: str = "shared"):
        self.alloc = alloc
        self.name = name
        self.data = alloc.data
        self.itemsize = self.data.dtype.itemsize
        if not self.data.flags["C_CONTIGUOUS"]:
            raise ValueError("shared arrays must be C-contiguous")

    @property
    def base_vaddr(self) -> int:
        """Virtual base address of the array."""
        return self.alloc.base_vaddr

    @property
    def shape(self):
        """Array shape."""
        return self.data.shape

    # ------------------------------------------------------------------ runs --
    def runs_for(self, key: Key) -> List[Tuple[int, int]]:
        """Contiguous byte runs (vaddr, nbytes) covered by ``key``.

        Supports integer and step-1 slice indexing per dimension; a
        selection that is contiguous in C order collapses to one run,
        otherwise one run per row of the leading selected dimension.
        """
        view = self.data[key]
        if view.size == 0:
            return []
        if isinstance(view, np.ndarray) and view.ndim > 0:
            if view.base is None:
                raise ValueError(
                    "fancy indexing copies data and has no address runs; "
                    "use basic (slice/int) indexing on shared arrays"
                )
            if not view.flags["C_CONTIGUOUS"]:
                return self._row_runs(view)
            start = view.__array_interface__["data"][0] - \
                self.data.__array_interface__["data"][0]
            return [(self.base_vaddr + start, int(view.nbytes))]
        # scalar
        offset = self._scalar_offset(key)
        return [(self.base_vaddr + offset, self.itemsize)]

    def _scalar_offset(self, key: Key) -> int:
        idx = key if isinstance(key, tuple) else (key,)
        idx = tuple(
            (i if i >= 0 else self.data.shape[d] + i)
            for d, i in enumerate(idx)
        )
        return int(np.ravel_multi_index(idx, self.data.shape)) * self.itemsize

    def _row_runs(self, view: np.ndarray) -> List[Tuple[int, int]]:
        """Non-contiguous view: one run per contiguous last-axis row.

        The view is walked with basic indexing only (``reshape`` would
        silently copy a non-contiguous view and yield addresses outside
        the shared segment)."""
        base_ptr = self.data.__array_interface__["data"][0]
        runs: List[Tuple[int, int]] = []
        if view.ndim == 1:
            rows = [view]
        else:
            rows = (view[idx] for idx in np.ndindex(view.shape[:-1]))
        for row in rows:
            if row.strides[-1] != self.itemsize:
                raise ValueError(
                    "strided last-axis selections are not supported on "
                    "shared arrays (rows must be contiguous)"
                )
            start = row.__array_interface__["data"][0] - base_ptr
            runs.append(
                (self.base_vaddr + start, int(row.shape[0] * self.itemsize))
            )
        return runs

    # ---------------------------------------------------------------- access --
    def read(self, ctx: Context, key: Key) -> Generator:
        """Priced read; returns a copy of the selected data."""
        yield from ctx.read_runs(self.runs_for(key))
        return np.array(self.data[key], copy=True)

    def write(self, ctx: Context, key: Key, value) -> Generator:
        """Priced write; assigns ``value`` into the selection."""
        yield from ctx.write_runs(self.runs_for(key))
        self.data[key] = value
        return None

    def update(self, ctx: Context, key: Key, fn) -> Generator:
        """Priced read-modify-write: ``data[key] = fn(data[key])``."""
        runs = self.runs_for(key)
        yield from ctx.read_runs(runs)
        new = fn(np.array(self.data[key], copy=True))
        yield from ctx.write_runs(runs)
        self.data[key] = new
        return None


class SharedScalarTable:
    """Small shared control variables (counters, flags) — each padded to
    its own value slot inside one shared page, accessed under locks.

    Used for bag-of-tasks heads/tails and readiness counters; keeping
    them in one page concentrates the synchronization traffic the way
    the SPLASH codes' shared control blocks do.
    """

    def __init__(self, arr: SharedArray):
        if arr.data.ndim != 1:
            raise ValueError("scalar table must be one-dimensional")
        self.arr = arr

    def get(self, ctx: Context, idx: int) -> Generator:
        """Priced scalar read."""
        value = yield from self.arr.read(ctx, idx)
        return float(value)

    def set(self, ctx: Context, idx: int, value: float) -> Generator:
        """Priced scalar write."""
        yield from self.arr.write(ctx, idx, value)
        return None

    def add(self, ctx: Context, idx: int, delta: float) -> Generator:
        """Priced scalar increment; returns the new value."""
        value = yield from self.arr.read(ctx, idx)
        new = float(value) + delta
        yield from self.arr.write(ctx, idx, new)
        return new
