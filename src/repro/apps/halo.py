"""2-D halo exchange — the messaging runtime's stencil workload.

The communication skeleton of a distributed stencil code: ranks form a
2-D process grid, and every iteration each rank computes, then swaps a
halo strip with its (up to four) non-periodic neighbours using plain
two-sided sends.  With ``halo_bytes`` at or below the rendezvous
threshold the exchange rides the eager path; above it every strip does
an RTS/CTS handshake first (docs/runtime.md).

Messages are self-checking: each carries its ``(sender, iteration)``
and receivers verify the sender is an actual neighbour and that the
total count comes out right.  (Per-iteration set equality would be too
strong — a fast neighbour's iteration ``i+1`` strip may overtake a slow
neighbour's iteration ``i`` strip, which is fine for a stencil as long
as each pairwise channel stays ordered.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Tuple

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context, MessagingService
from .registry import register_workload

_HALO_DSM_PAGES = 16


@dataclass(frozen=True)
class HaloConfig:
    """One halo-exchange experiment."""

    iters: int = 4
    halo_bytes: int = 1024
    compute_cycles: int = 2000

    def __post_init__(self):
        if self.iters < 1:
            raise ValueError("need at least one iteration")
        if self.halo_bytes < 1:
            raise ValueError("halo_bytes must be >= 1")
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be >= 0")


def process_grid(nprocs: int) -> Tuple[int, int]:
    """Most-square factorization ``(px, py)`` with ``px * py == nprocs``."""
    px = 1
    for d in range(1, int(nprocs ** 0.5) + 1):
        if nprocs % d == 0:
            px = d
    return px, nprocs // px


def neighbours(rank: int, nprocs: int) -> List[int]:
    """Up/down/left/right neighbour ranks (non-periodic grid)."""
    px, py = process_grid(nprocs)
    x, y = rank % px, rank // px
    out = []
    if y > 0:
        out.append(rank - px)
    if y < py - 1:
        out.append(rank + px)
    if x > 0:
        out.append(rank - 1)
    if x < px - 1:
        out.append(rank + 1)
    return out


def halo_kernel(ctx: Context, cfg: HaloConfig) -> Generator:
    """SPMD halo-exchange worker."""
    svc = MessagingService(ctx, buffer_bytes=max(8192, cfg.halo_bytes))
    nbrs = neighbours(ctx.rank, ctx.nprocs)
    received = 0
    for it in range(cfg.iters):
        yield from ctx.compute(cfg.compute_cycles)
        for nb in nbrs:
            yield from svc.send(nb, cfg.halo_bytes, payload=(ctx.rank, it))
        for _ in nbrs:
            desc = yield from svc.recv()
            sender, _sent_it = desc.payload
            if sender not in nbrs:
                raise AssertionError(
                    f"rank {ctx.rank} got a strip from non-neighbour {sender}")
            if desc.length != cfg.halo_bytes:
                raise AssertionError(
                    f"expected {cfg.halo_bytes}-byte strip, got {desc.length}")
            received += 1
    if received != cfg.iters * len(nbrs):
        raise AssertionError(
            f"rank {ctx.rank}: {received} strips received, "
            f"expected {cfg.iters * len(nbrs)}")
    yield from ctx.barrier(0)
    return None


@register_workload("halo", HaloConfig, default_config=HaloConfig,
                   description="2-D stencil halo exchange over the "
                               "messaging runtime")
def run_halo(params: SimParams, interface: str,
             cfg: HaloConfig) -> Tuple[RunStats, None]:
    """Run one halo-exchange experiment; returns (stats, None)."""
    params = params.replace(dsm_address_space_pages=_HALO_DSM_PAGES)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(lambda ctx: halo_kernel(ctx, cfg))
    return stats, None
