"""Synthetic stand-ins for the Harwell-Boeing matrices.

The paper factorizes BCSSTK14 (1806x1806, ~63k stored entries; a roof
structure stiffness matrix) and BCSSTK15 (3948x3948, ~117k entries; an
offshore-platform module).  The originals are not redistributable in an
offline environment, so we generate *banded* FEM-like symmetric
positive-definite matrices matched in dimension and per-column fill;
DESIGN.md's substitution table records this.  What the experiments
depend on — column count, columns-per-page, update reach (bandwidth),
and the task-dependency structure — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BandedSPD:
    """A symmetric positive-definite band matrix in lower-band storage.

    ``bands[j, i]`` holds ``A[j + i, j]`` for ``0 <= i <= bandwidth``
    (entries past the matrix edge are zero).  Column ``j`` of the matrix
    is exactly row ``j`` of ``bands`` — the contiguity the parallel
    factorization's page behaviour relies on.

    ``block_size`` (optional) marks a nested-dissection-like structure:
    entries coupling different ``block_size``-column blocks are zero, so
    the elimination tree is a *forest* of independent chains — the bushy
    task graph that gives real sparse Cholesky its parallelism (a plain
    band has an almost purely sequential elimination chain).  Cholesky is
    closed under this structure: a column's cross-block entries are zero,
    so its outer-product update cannot create cross-block fill.
    """

    n: int
    bandwidth: int
    bands: np.ndarray
    block_size: Optional[int] = None

    def __post_init__(self):
        if self.bands.shape != (self.n, self.bandwidth + 1):
            raise ValueError(
                f"band storage shape {self.bands.shape} does not match "
                f"n={self.n}, bandwidth={self.bandwidth}"
            )
        if self.block_size is not None and self.block_size < 1:
            raise ValueError("block_size must be positive")

    def same_block(self, i: int, j: int) -> bool:
        """Whether rows/columns ``i`` and ``j`` may be coupled."""
        if self.block_size is None:
            return True
        return i // self.block_size == j // self.block_size

    @property
    def stored_entries(self) -> int:
        """Nonzero budget (lower triangle + diagonal)."""
        return int(np.count_nonzero(self.bands))

    def to_dense(self) -> np.ndarray:
        """Dense symmetric reconstruction (tests on small instances)."""
        a = np.zeros((self.n, self.n))
        for i in range(self.bandwidth + 1):
            vals = self.bands[: self.n - i, i]
            idx = np.arange(self.n - i)
            a[idx + i, idx] = vals
            a[idx, idx + i] = vals
        return a


def synthetic_fem_spd(n: int, bandwidth: int, seed: int = 7,
                      block_size: Optional[int] = None) -> BandedSPD:
    """A banded SPD matrix with FEM-stiffness-like structure.

    Off-diagonals decay with distance from the diagonal (element
    coupling weakens with graph distance); the diagonal is made strictly
    dominant, which guarantees positive definiteness and a stable
    factorization without pivoting — as with the real BCSSTK matrices.
    With ``block_size``, entries coupling different blocks are zeroed
    (see :class:`BandedSPD`).
    """
    if n < 2 or bandwidth < 1 or bandwidth >= n:
        raise ValueError(f"bad band geometry n={n}, bandwidth={bandwidth}")
    rng = np.random.default_rng(seed)
    bands = np.zeros((n, bandwidth + 1))
    decay = np.exp(-np.arange(1, bandwidth + 1) / (bandwidth / 2.5))
    off = -rng.uniform(0.2, 1.0, (n, bandwidth)) * decay
    # zero the entries that would fall past the matrix edge
    for i in range(1, bandwidth + 1):
        off[n - i:, i - 1] = 0.0
    bands[:, 1:] = off
    if block_size is not None:
        cols = np.arange(n)[:, None]
        rows = cols + np.arange(1, bandwidth + 1)[None, :]
        cross = (rows // block_size) != (cols // block_size)
        bands[:, 1:][cross] = 0.0
    # strict diagonal dominance: |a_jj| > sum of |offdiag| in row j
    rowsum = np.zeros(n)
    for i in range(1, bandwidth + 1):
        rowsum[: n - i] += np.abs(bands[: n - i, i])  # below-diagonal
        rowsum[i:] += np.abs(bands[: n - i, i])       # symmetric above
    bands[:, 0] = rowsum + rng.uniform(1.0, 2.0, n)
    return BandedSPD(n=n, bandwidth=bandwidth, bands=bands,
                     block_size=block_size)


def bcsstk14_like(scale: float = 1.0, seed: int = 14) -> BandedSPD:
    """BCSSTK14 stand-in: 1806 columns, ~48 entries per column.

    The band is sized to the *factor's* envelope, not the raw matrix:
    sparse Cholesky fills in, and it is the factor's column density that
    drives both the flop count and the page-sharing behaviour the
    experiments measure (BCSSTK14's factor carries roughly twice the
    matrix's nonzeros).  ``scale`` shrinks the instance proportionally
    (test/bench scaling); 1.0 is the paper-sized instance.
    """
    n = max(32, int(round(1806 * scale)))
    bw = max(4, min(n - 1, int(round(48 * min(1.0, scale * 2)))))
    # ~16 independent elimination branches (nested-dissection leaves)
    block = max(bw + 1, n // 16)
    return synthetic_fem_spd(n, bw, seed=seed, block_size=block)


def bcsstk15_like(scale: float = 1.0, seed: int = 15) -> BandedSPD:
    """BCSSTK15 stand-in: 3948 columns, ~64 entries per column in the
    factor's envelope (the larger, denser instance that scales better in
    Figure 11)."""
    n = max(48, int(round(3948 * scale)))
    bw = max(6, min(n - 1, int(round(64 * min(1.0, scale * 2)))))
    # more branches than bcsstk14: the larger problem scales further
    block = max(bw + 1, n // 24)
    return synthetic_fem_spd(n, bw, seed=seed, block_size=block)


def band_cholesky_reference(m: BandedSPD) -> np.ndarray:
    """Sequential band Cholesky in band storage; returns L's bands.

    The parallel factorization must produce exactly this (same
    operations, same order per column)."""
    bands = m.bands.copy()
    n, b = m.n, m.bandwidth
    for j in range(n):
        d = np.sqrt(bands[j, 0])
        bands[j, :] /= d
        reach = min(b, n - 1 - j)
        for k in range(1, reach + 1):
            ell = bands[j, k]
            if ell != 0.0:
                bands[j + k, : b + 1 - k] -= ell * bands[j, k:]
    return bands
