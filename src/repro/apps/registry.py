"""The workload registry: one named entry point per benchmark kernel.

Every runnable workload — the paper's three applications plus the
collective microbenchmark — registers itself here under a short name,
and everything that dispatches *by* name (the parallel executor's
:class:`~repro.harness.parallel.RunSpec`, the metrics CLI, tools that
take an ``--app`` flag) resolves through :func:`run` instead of keeping
its own if/elif chain.  Adding a workload is then one decorator at its
definition site; the executor, the CLI and the docs pick it up without
edits.

The module deliberately imports nothing from the rest of the package so
that workload modules can import it at definition time without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["WORKLOADS", "Workload", "register_workload", "run", "workload"]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark kernel."""

    name: str
    """Registry key (``jacobi``, ``water``, ``cholesky``, ``collbench``)."""

    runner: Callable[..., Tuple[Any, Any]]
    """``runner(params, interface, config) -> (RunStats, app_result)``."""

    config_type: type
    """The picklable config dataclass the runner expects."""

    default_config: Optional[Callable[[], Any]] = None
    """Zero-argument factory used when :func:`run` gets ``config=None``;
    None means the workload has no sensible default (Cholesky needs a
    matrix) and a config is required."""

    description: str = ""
    """One line for ``--help`` text and docs tables."""


#: All registered workloads, keyed by name.  Populated by the
#: :func:`register_workload` decorators on the app modules' ``run_*``
#: functions when :mod:`repro.apps` is imported.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(name: str, config_type: type,
                      default_config: Optional[Callable[[], Any]] = None,
                      description: str = ""):
    """Decorator: register the decorated runner under ``name``.

    The runner is returned unchanged, so ``run_jacobi`` et al. keep
    their direct-call signature — registration only *adds* the by-name
    path, it never wraps or indirects the by-function one.
    """
    def deco(runner):
        if name in WORKLOADS:
            raise ValueError(f"workload {name!r} already registered")
        WORKLOADS[name] = Workload(name, runner, config_type,
                                   default_config, description)
        return runner
    return deco


def workload(name: str) -> Workload:
    """Look up a registered workload; raises ValueError for unknown names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        avail = ", ".join(sorted(WORKLOADS))
        raise ValueError(f"unknown app {name!r} (available: {avail})") from None


def run(name: str, params, interface: str = "cni",
        config: Any = None) -> Tuple[Any, Any]:
    """Run workload ``name`` and return ``(RunStats, app_result)``.

    ``config`` must be an instance of the workload's registered config
    type; ``None`` uses the workload's default configuration when it has
    one.  This is the single by-name entry point behind the parallel
    executor and the CLIs.
    """
    w = workload(name)
    if config is None:
        if w.default_config is None:
            raise TypeError(
                f"workload {name!r} has no default config; pass a "
                f"{w.config_type.__name__}")
        config = w.default_config()
    elif not isinstance(config, w.config_type):
        raise TypeError(
            f"workload {name!r} expects {w.config_type.__name__}, "
            f"got {type(config).__name__}")
    return w.runner(params, interface, config)
