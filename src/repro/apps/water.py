"""Water — the paper's medium-grained benchmark (from SPLASH).

Section 3.1: "Water ... simulates the molecular behavior of water, and
was run with the input sizes of 64, 216 and 343 molecules for 2 steps.
In each step, the various intra- and inter-molecular forces affecting
the molecule are calculated ... and then the parameters of the molecule
are updated.  The original algorithm was modified to postpone the
updates until the end of an iteration as in [Cox et al.].
Synchronization is performed by (1) acquiring a lock for updating the
parameters of a molecule and (2) through barriers."

This reimplementation keeps exactly that structure: a shared array of
molecule records (positions, forces, velocities padded to the SPLASH
record size so a page holds a handful of molecules), O(N^2) pairwise
forces computed on real coordinates, per-molecule locks for the
postponed force accumulation, and barriers between phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

import numpy as np

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context
from .base import SharedArray
from .registry import register_workload

#: Doubles per molecule record.  SPLASH water keeps predictor-corrector
#: derivatives for three atoms (order-7, 3 coords) plus forces; ~100
#: doubles per molecule, so a 4 KB page holds ~5 molecules.
MOL_RECORD_DOUBLES = 96

#: Within the record: [0:3] position, [3:6] velocity, [6:9] force; the
#: rest stands in for the derivative arrays (touched during updates).
POS, VEL, FRC = slice(0, 3), slice(3, 6), slice(6, 9)

#: Cycle costs.  SPLASH WATER's inter-molecular interaction is far
#: richer than a bare LJ kernel — O-O, O-H and H-H terms with cutoff
#: tests across 3x3 atom pairs — several hundred FLOPs plus loads per
#: pair; the per-molecule update runs an order-7 predictor-corrector
#: over three atoms.  These constants reproduce Table 3's
#: computation-to-synchronization balance on the 166 MHz machine.
CYCLES_PER_PAIR = 500.0
CYCLES_PER_UPDATE = 4000.0

#: Lock-id namespace offset for molecule locks.
MOL_LOCK_BASE = 1000


@dataclass(frozen=True)
class WaterConfig:
    """One Water experiment."""

    n_molecules: int = 64
    steps: int = 2
    seed: int = 42

    def __post_init__(self):
        if self.n_molecules < 2:
            raise ValueError("need at least two molecules")
        if self.steps < 1:
            raise ValueError("need at least one step")


def initial_state(cfg: WaterConfig) -> np.ndarray:
    """Molecule records on a jittered cubic lattice (the SPLASH setup)."""
    n = cfg.n_molecules
    rng = np.random.default_rng(cfg.seed)
    side = int(np.ceil(n ** (1 / 3)))
    coords = np.stack(
        np.meshgrid(*[np.arange(side)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)[:n].astype(float)
    recs = np.zeros((n, MOL_RECORD_DOUBLES))
    recs[:, POS] = coords * 3.1 + rng.normal(0, 0.05, (n, 3))
    recs[:, VEL] = rng.normal(0, 0.1, (n, 3))
    return recs


def _pair_forces(pos: np.ndarray, i: int) -> np.ndarray:
    """Lennard-Jones-style forces of molecule ``i`` on molecules > i.

    Returns an (n-i-1, 3) array; real arithmetic on real coordinates."""
    rest = pos[i + 1:]
    d = rest - pos[i]
    r2 = np.maximum((d * d).sum(axis=1), 1e-3)
    inv6 = (1.0 / r2) ** 3
    mag = 24.0 * (2.0 * inv6 * inv6 - inv6) / r2
    return mag[:, None] * d


def sequential_reference(cfg: WaterConfig) -> np.ndarray:
    """Pure-numpy reference of the same integrator."""
    recs = initial_state(cfg)
    n = cfg.n_molecules
    dt = 1e-3
    for _ in range(cfg.steps):
        forces = np.zeros((n, 3))
        for i in range(n - 1):
            f = _pair_forces(recs[:, POS], i)
            forces[i] -= f.sum(axis=0)
            forces[i + 1:] += f
        recs[:, VEL] += dt * forces
        recs[:, POS] += dt * recs[:, VEL]
        recs[:, FRC] = 0.0  # same convention as the parallel kernel
    return recs


def _my_molecules(n: int, rank: int, nprocs: int) -> range:
    per = n // nprocs
    extra = n % nprocs
    lo = rank * per + min(rank, extra)
    return range(lo, lo + per + (1 if rank < extra else 0))


def water_kernel(ctx: Context, cfg: WaterConfig, mol: SharedArray,
                 staging: SharedArray) -> Generator:
    """SPMD Water worker.

    The force exchange follows the Cox et al. restructuring the paper
    adopts ("the original algorithm was modified to postpone the updates
    until the end of an iteration"): each processor writes its pair-force
    contributions into its *own* region of a shared staging array (no
    locks, no false sharing), and after a barrier each molecule's owner
    sums the contributions and updates the molecule under its per-
    molecule lock — which, being owner-only, is usually a lazy-release
    re-acquisition with no traffic after the first step.
    """
    n = cfg.n_molecules
    mine = _my_molecules(n, ctx.rank, ctx.nprocs)
    dt = 1e-3
    for _step in range(cfg.steps):
        # ---- Phase 1: pair forces over my rows; stage contributions. ---
        yield from ctx.read_runs(mol.runs_for((slice(None), POS)))
        local = np.zeros((n, 3))
        pairs = 0
        pos = mol.data[:, POS].copy()
        for i in mine:
            if i >= n - 1:
                continue
            f = _pair_forces(pos, i)
            local[i] -= f.sum(axis=0)
            local[i + 1:] += f
            pairs += n - i - 1
        yield from ctx.compute(pairs * CYCLES_PER_PAIR)
        yield from ctx.write_runs(
            staging.runs_for((ctx.rank, slice(None), slice(None))))
        staging.data[ctx.rank] = local
        yield from ctx.barrier(0)

        # ---- Phase 2: owners reduce the staged contributions and
        # update their molecules under the per-molecule locks. ----------
        if len(mine):
            yield from ctx.read_runs(
                staging.runs_for((slice(None), slice(mine[0], mine[-1] + 1),
                                  slice(None))))
        for j in mine:
            yield from ctx.acquire(MOL_LOCK_BASE + j)
            yield from ctx.read_runs(mol.runs_for((j, slice(None))))
            yield from ctx.write_runs(mol.runs_for((j, slice(None))))
            force = staging.data[:, j, :].sum(axis=0)
            mol.data[j, FRC] = 0.0
            mol.data[j, VEL] += dt * force
            mol.data[j, POS] += dt * mol.data[j, VEL]
            yield from ctx.release(MOL_LOCK_BASE + j)
        yield from ctx.compute(len(mine) * CYCLES_PER_UPDATE)
        yield from ctx.barrier(1)
    return None


def build_water(cluster: Cluster, cfg: WaterConfig,
                nprocs: int) -> Tuple[SharedArray, SharedArray]:
    """Allocate and initialize the molecule records + staging array."""
    mol = SharedArray(
        cluster.alloc_shared((cfg.n_molecules, MOL_RECORD_DOUBLES)), "water"
    )
    mol.data[:] = initial_state(cfg)
    staging = SharedArray(
        cluster.alloc_shared((nprocs, cfg.n_molecules, 3)), "water-staging"
    )
    return mol, staging


def dsm_pages_needed(cfg: WaterConfig, params: SimParams) -> int:
    """Segment sizing helper."""
    rec_bytes = cfg.n_molecules * MOL_RECORD_DOUBLES * 8
    staging_bytes = params.num_processors * cfg.n_molecules * 3 * 8
    return (-(-rec_bytes // params.page_size_bytes)
            + -(-staging_bytes // params.page_size_bytes) + 10)


@register_workload("water", WaterConfig, default_config=WaterConfig,
                   description="medium-grained SPLASH molecular dynamics")
def run_water(params: SimParams, interface: str,
              cfg: WaterConfig) -> Tuple[RunStats, np.ndarray]:
    """Run one Water experiment; returns (stats, final records)."""
    params = params.replace(
        dsm_address_space_pages=max(params.dsm_address_space_pages,
                                    dsm_pages_needed(cfg, params))
    )
    cluster = Cluster(params, interface=interface)
    mol, staging = build_water(cluster, cfg, params.num_processors)
    stats = cluster.run(lambda ctx: water_kernel(ctx, cfg, mol, staging))
    return stats, mol.data.copy()
