"""Ping-pong — the messaging runtime's latency microbenchmark.

The Figure-14-style measurement: rank 0 sends a message of a fixed size
to rank 1, rank 1 sends it straight back, and half the measured round
trip is the one-way user-to-user latency.  Sweeping the size across
``SimParams.rendezvous_threshold`` exposes the eager/rendezvous knee
(the extra RTS/CTS round trip appears exactly above the threshold);
the ``read``/``write`` modes time the one-sided RDMA operations against
an exposed window instead (docs/runtime.md).

Round-trip samples land in the ``runtime.msg_rtt_ns`` histogram on
rank 0, which is what the ``messaging`` experiment reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context, MessagingService
from .registry import register_workload

#: Modest segment: the benchmark messages live in private buffers; the
#: shared segment only backs the barrier/collective machinery.
_PINGPONG_DSM_PAGES = 16


@dataclass(frozen=True)
class PingPongConfig:
    """One ping-pong experiment."""

    rounds: int = 8
    message_bytes: int = 2048
    #: ``msg`` — two-sided send/recv; ``read``/``write`` — one-sided
    #: RDMA against rank 1's exposed window.
    mode: str = "msg"

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.message_bytes < 0:
            raise ValueError("message_bytes must be >= 0")
        if self.mode not in ("msg", "read", "write"):
            raise ValueError(f"unknown ping-pong mode {self.mode!r}")


def pingpong_kernel(ctx: Context, cfg: PingPongConfig) -> Generator:
    """SPMD ping-pong worker (only ranks 0 and 1 exchange)."""
    svc = MessagingService(
        ctx, buffer_bytes=max(8192, cfg.message_bytes))
    if cfg.mode in ("read", "write"):
        yield from _one_sided(ctx, svc, cfg)
        return None
    if ctx.rank == 0:
        for r in range(cfg.rounds):
            t0 = ctx.sim.now
            yield from svc.send(1, cfg.message_bytes, payload=("ping", r))
            desc = yield from svc.recv()
            if desc.payload != ("pong", r):
                raise AssertionError(
                    f"round {r}: expected ('pong', {r}), got {desc.payload!r}")
            if desc.length != cfg.message_bytes:
                raise AssertionError(
                    f"round {r}: expected {cfg.message_bytes} bytes, "
                    f"got {desc.length}")
            svc.observe_rtt(ctx.sim.now - t0)
    elif ctx.rank == 1:
        for r in range(cfg.rounds):
            desc = yield from svc.recv()
            if desc.payload != ("ping", r):
                raise AssertionError(
                    f"round {r}: expected ('ping', {r}), got {desc.payload!r}")
            yield from svc.send(0, cfg.message_bytes, payload=("pong", r))
    yield from ctx.barrier(0)
    return None


def _one_sided(ctx: Context, svc: MessagingService,
               cfg: PingPongConfig) -> Generator:
    """RDMA mode: rank 0 reads from / writes into rank 1's window.

    Every rank exposes symmetrically, so the window address is
    SPMD-identical cluster-wide and rank 0 can target rank 1's copy
    without an address exchange."""
    window = svc.expose(max(cfg.message_bytes, 1))
    yield from ctx.barrier(0)
    if ctx.rank == 0:
        for _ in range(cfg.rounds):
            t0 = ctx.sim.now
            if cfg.mode == "read":
                yield from svc.remote_read(1, window, cfg.message_bytes)
            else:
                yield from svc.remote_write(1, window, cfg.message_bytes)
            svc.observe_rtt(ctx.sim.now - t0)
    yield from ctx.barrier(1)
    return None


@register_workload("pingpong", PingPongConfig, default_config=PingPongConfig,
                   description="messaging-runtime latency microbenchmark")
def run_pingpong(params: SimParams, interface: str,
                 cfg: PingPongConfig) -> Tuple[RunStats, None]:
    """Run one ping-pong experiment; returns (stats, None)."""
    if params.num_processors < 2:
        raise ValueError("ping-pong needs at least 2 processors")
    params = params.replace(dsm_address_space_pages=_PINGPONG_DSM_PAGES)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(lambda ctx: pingpong_kernel(ctx, cfg))
    return stats, None
