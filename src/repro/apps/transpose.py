"""Bulk all-to-all — the messaging runtime's bandwidth workload.

The communication skeleton of a distributed matrix transpose (or FFT
redistribution): every round, each rank sends one block to every other
rank and receives one block from every other rank.  With the default
``block_bytes`` above the rendezvous threshold this is the stress test
for the rendezvous protocol's *early CTS*: all ranks fire their RTSs
simultaneously while none has posted a receive, and the exchange only
completes because the engine allocates the landing buffer and answers
CTS without application involvement (docs/runtime.md — a
receiver-driven rendezvous would deadlock here).

Blocks carry ``(sender, round)`` payloads; each rank verifies it got
exactly ``rounds`` blocks from every peer.  (The census is taken over
the whole run, not per round: a fast peer's round ``r+1`` block may
overtake a slow peer's still-streaming round ``r`` block, which the
exchange tolerates by construction.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

from ..engine import RunStats
from ..params import SimParams
from ..runtime import Cluster, Context, MessagingService
from .registry import register_workload

_TRANSPOSE_DSM_PAGES = 16


@dataclass(frozen=True)
class TransposeConfig:
    """One all-to-all experiment."""

    rounds: int = 2
    block_bytes: int = 8192

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")


def transpose_kernel(ctx: Context, cfg: TransposeConfig) -> Generator:
    """SPMD all-to-all worker (shifted-peer schedule)."""
    svc = MessagingService(
        ctx,
        n_recv_buffers=max(16, 2 * ctx.nprocs),
        buffer_bytes=max(8192, cfg.block_bytes),
    )
    n = ctx.nprocs
    got = {}
    for rnd in range(cfg.rounds):
        for offset in range(1, n):
            dst = (ctx.rank + offset) % n
            yield from svc.send(dst, cfg.block_bytes,
                                payload=(ctx.rank, rnd))
        for _ in range(n - 1):
            desc = yield from svc.recv()
            sender, _sent_rnd = desc.payload
            got[sender] = got.get(sender, 0) + 1
            if desc.length != cfg.block_bytes:
                raise AssertionError(
                    f"expected {cfg.block_bytes}-byte block, "
                    f"got {desc.length}")
    expected = {p: cfg.rounds for p in range(n) if p != ctx.rank}
    if got != expected:
        raise AssertionError(
            f"rank {ctx.rank}: block census {got} != {expected}")
    yield from ctx.barrier(0)
    return None


@register_workload("transpose", TransposeConfig,
                   default_config=TransposeConfig,
                   description="bulk all-to-all (rendezvous stress) over "
                               "the messaging runtime")
def run_transpose(params: SimParams, interface: str,
                  cfg: TransposeConfig) -> Tuple[RunStats, None]:
    """Run one all-to-all experiment; returns (stats, None)."""
    params = params.replace(dsm_address_space_pages=_TRANSPOSE_DSM_PAGES)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(lambda ctx: transpose_kernel(ctx, cfg))
    return stats, None
