"""The paper's benchmark applications, reimplemented execution-driven.

Jacobi (coarse), Water (medium, SPLASH) and Cholesky (fine, SPLASH) —
Section 3.1's granularity spectrum — plus the synthetic BCSSTK matrix
generators and the shared-array access layer they are written against.

Each application registers itself in the workload registry
(:data:`WORKLOADS`), so the whole suite is also runnable by name::

    from repro import SimParams
    from repro.apps import run

    stats, grid = run("jacobi", SimParams().replace(num_processors=8),
                      "cni", JacobiConfig(n=128, iterations=10))

which is exactly how the parallel executor and the CLIs dispatch (see
docs/api.md).  The collective microbenchmark registers here too under
``collbench``, and the messaging-runtime family (docs/runtime.md) under
``pingpong``, ``halo`` and ``transpose``.
"""

from .base import SharedArray, SharedScalarTable
from .cholesky import (
    CholeskyConfig,
    CholeskyShared,
    cholesky_kernel,
    run_cholesky,
)
from .jacobi import (
    JacobiConfig,
    build_jacobi,
    jacobi_kernel,
    run_jacobi,
)
from .jacobi import sequential_reference as jacobi_reference
from .halo import (
    HaloConfig,
    halo_kernel,
    neighbours,
    process_grid,
    run_halo,
)
from .matrices import (
    BandedSPD,
    band_cholesky_reference,
    bcsstk14_like,
    bcsstk15_like,
    synthetic_fem_spd,
)
from .pingpong import (
    PingPongConfig,
    pingpong_kernel,
    run_pingpong,
)
from .registry import WORKLOADS, Workload, register_workload, run, workload
from .transpose import (
    TransposeConfig,
    run_transpose,
    transpose_kernel,
)
from .water import (
    WaterConfig,
    build_water,
    run_water,
    water_kernel,
)
from .water import sequential_reference as water_reference

# The collective microbenchmark lives in repro.collectives (it exercises
# the collective engine, not the DSM), but it is dispatched by the same
# executor, so it registers alongside the applications.  Imported here —
# not from collectives.bench — because repro.runtime imports
# repro.collectives during this package's own ``.base`` import; by this
# line both are fully initialized and the import is cycle-free.
from ..collectives.bench import CollBenchConfig, run_collective_bench

register_workload(
    "collbench", CollBenchConfig, default_config=CollBenchConfig,
    description="collective-engine microbenchmark (barrier/all-reduce)",
)(run_collective_bench)

__all__ = [
    "BandedSPD",
    "CholeskyConfig",
    "CholeskyShared",
    "HaloConfig",
    "JacobiConfig",
    "PingPongConfig",
    "SharedArray",
    "SharedScalarTable",
    "TransposeConfig",
    "WORKLOADS",
    "WaterConfig",
    "Workload",
    "band_cholesky_reference",
    "bcsstk14_like",
    "bcsstk15_like",
    "build_jacobi",
    "build_water",
    "cholesky_kernel",
    "halo_kernel",
    "jacobi_kernel",
    "jacobi_reference",
    "neighbours",
    "pingpong_kernel",
    "process_grid",
    "register_workload",
    "run",
    "run_cholesky",
    "run_halo",
    "run_jacobi",
    "run_pingpong",
    "run_transpose",
    "run_water",
    "synthetic_fem_spd",
    "transpose_kernel",
    "water_kernel",
    "water_reference",
    "workload",
]
