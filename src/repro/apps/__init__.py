"""The paper's benchmark applications, reimplemented execution-driven.

Jacobi (coarse), Water (medium, SPLASH) and Cholesky (fine, SPLASH) —
Section 3.1's granularity spectrum — plus the synthetic BCSSTK matrix
generators and the shared-array access layer they are written against.
"""

from .base import SharedArray, SharedScalarTable
from .cholesky import (
    CholeskyConfig,
    CholeskyShared,
    cholesky_kernel,
    run_cholesky,
)
from .jacobi import (
    JacobiConfig,
    build_jacobi,
    jacobi_kernel,
    run_jacobi,
)
from .jacobi import sequential_reference as jacobi_reference
from .matrices import (
    BandedSPD,
    band_cholesky_reference,
    bcsstk14_like,
    bcsstk15_like,
    synthetic_fem_spd,
)
from .water import (
    WaterConfig,
    build_water,
    run_water,
    water_kernel,
)
from .water import sequential_reference as water_reference

__all__ = [
    "BandedSPD",
    "CholeskyConfig",
    "CholeskyShared",
    "JacobiConfig",
    "SharedArray",
    "SharedScalarTable",
    "WaterConfig",
    "band_cholesky_reference",
    "bcsstk14_like",
    "bcsstk15_like",
    "build_jacobi",
    "build_water",
    "cholesky_kernel",
    "jacobi_kernel",
    "jacobi_reference",
    "run_cholesky",
    "run_jacobi",
    "run_water",
    "synthetic_fem_spd",
    "water_kernel",
    "water_reference",
]
