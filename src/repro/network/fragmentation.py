"""AAL5-style segmentation and reassembly (SAR).

The paper's closing analysis (Table 5) blames the 53-byte ATM cell: every
large transfer pays per-cell segmentation and reassembly work on the
33 MHz NI processor.  This module makes that cost explicit and provides
the "mythical networking technology ... with unlimited cell size" as the
``unrestricted_cell_size`` parameter (one cell per packet, no SAR
overhead beyond the fixed per-packet work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..params import SimParams
from .cell import AtmCell, CellTrain, Packet


class Segmenter:
    """Turns packets into cells (or cell trains) and prices the work."""

    def __init__(self, params: SimParams):
        self.params = params
        self.packets_segmented = 0
        self.cells_produced = 0
        #: wire_bytes -> cell count.  Packet sizes cluster tightly (page
        #: transfers, diffs, a handful of control sizes), so the
        #: arithmetic in ``cells_for_packet`` is paid once per distinct
        #: size instead of once per packet.  Safe because SimParams is
        #: frozen for the lifetime of a run.
        self._cell_count_cache: Dict[int, int] = {}
        #: n_cells -> NI-processor SAR nanoseconds (same reasoning).
        self._sar_ns_cache: Dict[int, float] = {}

    def cell_count(self, packet: Packet) -> int:
        """Number of cells ``packet`` occupies on the wire."""
        wire = packet.wire_bytes
        n = self._cell_count_cache.get(wire)
        if n is None:
            n = self.params.cells_for_packet(wire)
            self._cell_count_cache[wire] = n
        return n

    def make_train(self, packet: Packet) -> CellTrain:
        """Batched segmentation: the form the simulated network carries."""
        n = self.cell_count(packet)
        self.packets_segmented += 1
        self.cells_produced += n
        return CellTrain(packet, n)

    def segment(self, packet: Packet) -> List[AtmCell]:
        """Full per-cell expansion (tests, failure injection).

        The payload of the last cell carries the AAL5 trailer; cell
        payload lengths account for header + payload + trailer exactly.
        """
        total = packet.wire_bytes + self.params.aal5_trailer_bytes
        per = self.params.atm_payload_bytes
        if self.params.unrestricted_cell_size:
            return [AtmCell(vci=packet.channel_id, packet_id=packet.packet_id,
                            seq=0, eop=True, payload_len=total)]
        cells = []
        n = max(1, -(-total // per))
        for i in range(n):
            this = min(per, total - i * per)
            cells.append(
                AtmCell(
                    vci=packet.channel_id,
                    packet_id=packet.packet_id,
                    seq=i,
                    eop=(i == n - 1),
                    payload_len=this,
                )
            )
        return cells

    def sar_time_ns(self, n_cells: int) -> float:
        """NI-processor time to segment (or reassemble) ``n_cells``.

        With unrestricted cells the per-cell loop collapses to a single
        iteration, which is exactly how Table 5's improvement arises.
        """
        t = self._sar_ns_cache.get(n_cells)
        if t is None:
            t = self.params.ni_cycles_ns(
                self.params.ni_cell_sar_cycles * n_cells)
            self._sar_ns_cache[n_cells] = t
        return t


@dataclass
class ReassemblyStats:
    """Counters for the receive-side SAR."""

    packets_ok: int = 0
    packets_dropped: int = 0
    cells_consumed: int = 0
    partials_evicted: int = 0
    """Incomplete packets abandoned (stale-partial timeout, capacity
    eviction or explicit abort); each is also a ``packets_dropped``."""


class Reassembler:
    """Receive-side AAL5 reassembly with integrity checking.

    Two input forms mirror the segmenter: a :class:`CellTrain` (fast
    path: intact unless cells were marked lost or corrupted) and a raw
    cell list (tests / loss / reordering).  AAL5 has no per-cell
    sequence numbers — a length/CRC mismatch at end-of-packet drops the
    whole packet, which is what we model.

    A partial packet whose end-of-packet cell never arrives (its tail
    was dropped in transit) would otherwise sit in the reassembly map
    forever; passing ``now`` to :meth:`accept_cell` ages such partials
    out after ``params.reassembly_timeout_ns``, and ``max_partials``
    bounds the map against pathological interleaving.
    """

    def __init__(self, params: SimParams, max_partials: int = 256):
        self.params = params
        self.max_partials = max_partials
        self.stats = ReassemblyStats()
        #: n_cells -> SAR nanoseconds (see Segmenter._sar_ns_cache).
        self._sar_ns_cache: Dict[int, float] = {}
        self._partial: Dict[Tuple[int, int], List[AtmCell]] = {}
        #: last cell-arrival time per partial (same keys as _partial)
        self._last_cell_ns: Dict[Tuple[int, int], float] = {}

    def accept_train(self, train: CellTrain) -> Optional[Packet]:
        """Reassemble a batched train; None unless it arrived intact."""
        self.stats.cells_consumed += train.n_cells - train.lost_cells
        if not train.intact:
            self.stats.packets_dropped += 1
            return None
        self.stats.packets_ok += 1
        return train.packet

    def accept_cell(self, cell: AtmCell, packet: Packet,
                    now: Optional[float] = None) -> Optional[Packet]:
        """Feed one cell; returns the packet when it completes.

        ``packet`` is the simulation-side object the cells refer to (the
        model does not serialize payload bytes into cells); identity is
        checked via ``packet_id``.  ``now`` (simulated time) enables
        stale-partial eviction; callers without a clock may omit it.
        """
        key = (cell.vci, cell.packet_id)
        if key not in self._partial and len(self._partial) >= self.max_partials:
            self._evict(next(iter(self._partial)))
        self._partial.setdefault(key, []).append(cell)
        self.stats.cells_consumed += 1
        if now is not None:
            self._last_cell_ns[key] = now
            self._evict_stale(now)
        if not cell.eop:
            return None
        cells = self._partial.pop(key)
        self._last_cell_ns.pop(key, None)
        expected = self.params.cells_for_packet(packet.wire_bytes)
        seqs = [c.seq for c in cells]
        if len(cells) != expected or sorted(seqs) != list(range(expected)):
            # AAL5 length/CRC failure: drop the packet.
            self.stats.packets_dropped += 1
            return None
        if seqs != sorted(seqs):
            # ATM VCs preserve order; reordering means the fabric is
            # broken — drop and count, don't crash the simulation.
            self.stats.packets_dropped += 1
            return None
        if any(c.corrupt for c in cells):
            # Every cell present, but a payload was damaged in transit:
            # the AAL5 CRC over the reassembled packet fails.
            self.stats.packets_dropped += 1
            return None
        self.stats.packets_ok += 1
        return packet

    def abort(self, vci: int, packet_id: int) -> bool:
        """Explicitly abandon a partial packet; True if one existed."""
        key = (vci, packet_id)
        if key not in self._partial:
            return False
        self._evict(key)
        return True

    def _evict(self, key: Tuple[int, int]) -> None:
        del self._partial[key]
        self._last_cell_ns.pop(key, None)
        self.stats.packets_dropped += 1
        self.stats.partials_evicted += 1

    def _evict_stale(self, now: float) -> None:
        deadline = now - self.params.reassembly_timeout_ns
        stale = [key for key, last in self._last_cell_ns.items()
                 if last < deadline]
        for key in stale:
            self._evict(key)

    def pending_packets(self) -> int:
        """Packets with cells buffered but no end-of-packet yet."""
        return len(self._partial)

    def sar_time_ns(self, n_cells: int) -> float:
        """NI-processor time for reassembly of ``n_cells``."""
        t = self._sar_ns_cache.get(n_cells)
        if t is None:
            t = self.params.ni_cycles_ns(
                self.params.ni_cell_sar_cycles * n_cells)
            self._sar_ns_cache[n_cells] = t
        return t
