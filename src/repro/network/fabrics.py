"""Pluggable fabric topologies: banyan, fat-tree, 3-D torus.

The :class:`Topology` interface is what :class:`repro.network.Network`
routes every cell train through; ``SimParams.topology`` selects the
concrete fabric via the grammar in :mod:`repro.network.spec`
(``banyan:32``, ``fattree:k=4``, ``torus:4x4x4``).  Three fabrics
register here:

* :class:`BanyanTopology` — the paper's single banyan switch.  The
  default (``SimParams.topology = None``) delegates to the exact
  pre-topology-layer switch model, so every legacy run is bit-identical.
* :class:`FatTreeTopology` — a three-level fat-tree of banyan elements
  (k-ary: k pods of k/2 edge + k/2 aggregation switches, (k/2)^2 core
  switches, k^3/4 hosts) with deterministic up/down routing: the up-path
  and the core switch are a pure function of the destination, so the
  down-path is the destination-rooted tree and every (src, dst) pair has
  exactly one route.
* :class:`TorusTopology` — an APEnet+-style 2-D/3-D torus direct
  network.  ``dor`` routing is classic dimension-order (fix X, then Y,
  then Z, travelling the shorter way around each ring); ``adaptive`` is
  minimal-adaptive — at each router the train takes the least-queued
  productive link, falling back to dimension order on ties (the escape
  path that keeps routing deterministic and progress guaranteed).

Shared timing model (multi-hop fabrics)::

    per switch crossed   cut-through latency   (SimParams.switch_latency_ns)
    per inter-switch link  propagation          (SimParams.wire_latency_ns)
    per link             serialization at the  link's own rate, holding the
                         link — concurrent trains queue FIFO (output-queue
                         congestion)

Head-of-line blocking is modelled at switch input ports: a train that
arrived on link L and is waiting for a busy output holds L's input port
at that switch, so a later train arriving on the same L queues behind it
even when its own output is free.  A train never holds more than one
input port and one output link at a time, and output links are held for
bounded serialization time only — the acquisition graph is acyclic, so
the model cannot deadlock.  Per-link rates default to
``SimParams.link_rate_bps``; pass ``rate_overrides`` (link name → bps)
to model heterogeneous fabrics.

The host injection/ejection wires stay where they always were — charged
by ``Network`` around :meth:`Topology.transit` — which is what keeps the
banyan path bit-identical.  Fabric counters live on the topology object
and surface as the ``net.*`` metric scope (docs/network.md) whenever a
topology is explicitly selected.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..engine import Resource, Simulator
from ..params import SimParams
from .spec import TopologyError, TopologySpec, parse_topology
from .switch import SingleSwitch

__all__ = [
    "BanyanTopology",
    "FatTreeTopology",
    "Link",
    "Topology",
    "TorusTopology",
    "build_topology",
]


class Link:
    """One directed fabric link: a FIFO resource plus its line rate."""

    __slots__ = ("name", "res", "rate_bps", "latency_ns", "_params")

    def __init__(self, sim: Simulator, name: str, params: SimParams,
                 rate_bps: Optional[float] = None,
                 latency_ns: float = 0.0):
        self.name = name
        self.res = Resource(sim, f"link:{name}")
        self.rate_bps = rate_bps if rate_bps is not None else params.link_rate_bps
        if self.rate_bps <= 0:
            raise TopologyError(f"link {name}: rate must be positive")
        self.latency_ns = latency_ns
        self._params = params

    def serialize_ns(self, wire_bytes: int) -> float:
        """Line-rate serialization time of one packet's cells here."""
        base = self._params.train_wire_time_ns(wire_bytes)
        return base * (self._params.link_rate_bps / self.rate_bps)


class Topology:
    """A cluster fabric: timed delivery of cell trains between nodes.

    Subclasses supply :meth:`route` (the pure path, for analysis and
    tests) and :meth:`transit` (the timed traversal).  The base class
    owns the shared counters (``net.*`` catalog, docs/network.md), the
    link/input-port tables, and the per-hop timed walk.
    """

    kind = "abstract"

    def __init__(self, sim: Simulator, params: SimParams,
                 spec: TopologySpec,
                 rate_overrides: Optional[Dict[str, float]] = None):
        self.sim = sim
        self.params = params
        self.spec = spec
        self._rate_overrides = dict(rate_overrides or {})
        self.links: Dict[str, Link] = {}
        self._in_ports: Dict[Tuple[str, str], Resource] = {}
        # -- net.* counters (registered by Network.register_metrics) ----
        self.crossings = 0        # switch/router traversals
        self.link_hops = 0        # links traversed
        self.link_waits = 0       # arrivals that queued on a busy link
        self.hol_blocks = 0       # arrivals that queued on an input port
        self.adaptive_detours = 0  # torus adaptive picked a non-DOR dim

    # -- construction helpers ------------------------------------------------
    def _add_link(self, name: str, latency_ns: float = 0.0) -> Link:
        link = Link(self.sim, name, self.params,
                    rate_bps=self._rate_overrides.get(name),
                    latency_ns=latency_ns)
        self.links[name] = link
        return link

    def _in_port(self, switch: str, arrived_on: Optional[Link]
                 ) -> Optional[Resource]:
        """The input-port resource for trains entering ``switch`` on
        ``arrived_on`` (None for host injection — the source NIC already
        serializes its own sends)."""
        if arrived_on is None:
            return None
        key = (switch, arrived_on.name)
        port = self._in_ports.get(key)
        if port is None:
            port = Resource(self.sim, f"in:{switch}<{arrived_on.name}")
            self._in_ports[key] = port
        return port

    # -- interface -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Nodes this fabric can attach."""
        return self.spec.capacity

    def describe(self) -> str:
        """Canonical spec string (round-trips through the grammar)."""
        return self.spec.canonical()

    def check_nodes(self, n: int) -> None:
        """Raise when ``n`` nodes exceed this fabric's attachment points."""
        if n > self.capacity:
            raise TopologyError(
                f"{n} nodes exceed the {self.describe()} fabric's "
                f"{self.capacity} attachment points")

    def route(self, src: int, dst: int) -> List[str]:
        """The (zero-load) path as an ordered list of link names."""
        raise NotImplementedError

    def transit(self, src: int, dst: int, n_cells: int,
                wire_bytes: int) -> Generator:
        """Coroutine: move one train through the fabric.  Returns when
        the train's last cell has left its final link."""
        raise NotImplementedError

    def min_transit_ns(self, wire_bytes: int) -> float:
        """Best-case (uncontended, nearest-pair) fabric latency,
        excluding the two host wires ``Network`` charges around it."""
        raise NotImplementedError

    def max_link_queue(self) -> int:
        """Deepest output queue across all links (diagnostics gauge)."""
        depth = 0
        for link in self.links.values():
            if link.res.queue_length > depth:
                depth = link.res.queue_length
        return depth

    def register_metrics(self, scope) -> None:
        """Register the fabric's ``net.*`` counters on ``scope``."""
        scope.counter("crossings", fn=lambda: self.crossings)
        scope.counter("link_hops", fn=lambda: self.link_hops)
        scope.counter("link_waits", fn=lambda: self.link_waits)
        scope.counter("hol_blocks", fn=lambda: self.hol_blocks)
        scope.counter("adaptive_detours", fn=lambda: self.adaptive_detours)
        scope.gauge("max_link_queue", fn=self.max_link_queue)

    # -- the shared timed walk -----------------------------------------------
    def _traverse_hop(self, switch: Optional[str], arrived_on: Optional[Link],
                      link: Link, wire_bytes: int) -> Generator:
        """One hop: cross ``switch`` (if any), then stream onto ``link``.

        Crossing charges the cut-through latency and contends for the
        input port (head-of-line blocking); the link itself is held for
        propagation + serialization, queueing concurrent trains FIFO.
        """
        in_port = None
        if switch is not None:
            yield self.params.switch_latency_ns
            self.crossings += 1
            in_port = self._in_port(switch, arrived_on)
        if in_port is not None:
            if in_port.busy:
                self.hol_blocks += 1
            yield from in_port.acquire()
        if link.res.busy:
            self.link_waits += 1
        yield from link.res.acquire()
        if in_port is not None:
            in_port.release()
        try:
            if link.latency_ns:
                yield link.latency_ns
            yield link.serialize_ns(wire_bytes)
        finally:
            link.res.release()
        self.link_hops += 1
        return None


class BanyanTopology(Topology):
    """The paper's single banyan switch behind the topology interface.

    Timing delegates verbatim to :class:`~repro.network.switch.SingleSwitch`
    — the default fabric's digests are frozen, and this class is how they
    stay frozen.
    """

    kind = "banyan"

    def __init__(self, sim: Simulator, params: SimParams,
                 spec: Optional[TopologySpec] = None,
                 rate_overrides: Optional[Dict[str, float]] = None):
        if spec is None:
            spec = TopologySpec("banyan", ports=params.switch_ports)
        super().__init__(sim, params, spec, rate_overrides)
        self.switch = SingleSwitch(sim, params, ports=spec.ports)

    def check_nodes(self, n: int) -> None:
        # The pre-topology-layer message, verbatim (it is load-bearing
        # for callers that match on it).
        if n > self.capacity:
            raise TopologyError(
                f"{n} nodes exceed the {self.capacity}-port switch")

    def route(self, src: int, dst: int) -> List[str]:
        self.switch.fabric._check_port(src)
        self.switch.fabric._check_port(dst)
        return [f"sw.out{dst}"]

    def transit(self, src: int, dst: int, n_cells: int,
                wire_bytes: int) -> Generator:
        yield from self.switch.transit(src, dst, n_cells, wire_bytes)
        self.crossings += 1
        self.link_hops += 1
        return None

    def min_transit_ns(self, wire_bytes: int) -> float:
        return (self.params.switch_latency_ns
                + self.params.train_wire_time_ns(wire_bytes))

    def max_link_queue(self) -> int:
        return max(self.switch.output_queue_length(p)
                   for p in range(self.switch.fabric.ports))


class FatTreeTopology(Topology):
    """Three-level k-ary fat-tree of banyan switching elements.

    Host ``i`` sits in pod ``i // (k^2/4)`` under edge switch
    ``(i % (k^2/4)) // (k/2)``.  Up/down routing is destination-rooted:
    the aggregation position is ``dst mod k/2`` and the core index
    derives from the destination's edge position, so the down-path from
    the core to ``dst`` is the same for every source — one unique route
    per (src, dst) pair.
    """

    kind = "fattree"

    def __init__(self, sim: Simulator, params: SimParams,
                 spec: TopologySpec,
                 rate_overrides: Optional[Dict[str, float]] = None):
        super().__init__(sim, params, spec, rate_overrides)
        k = spec.k
        self.k = k
        self.half = k // 2
        self.pods = k
        self.hosts = k ** 3 // 4
        wire = params.wire_latency_ns
        for host in range(self.hosts):
            self._add_link(f"host{host}.up")
            self._add_link(f"host{host}.down")
        for pod in range(self.pods):
            for e in range(self.half):
                for a in range(self.half):
                    self._add_link(f"p{pod}.e{e}.up.a{a}", latency_ns=wire)
                    self._add_link(f"p{pod}.a{a}.down.e{e}", latency_ns=wire)
            for a in range(self.half):
                for c in range(self.half):
                    core = a * self.half + c
                    self._add_link(f"p{pod}.a{a}.up.c{core}",
                                   latency_ns=wire)
                    self._add_link(f"c{core}.down.p{pod}", latency_ns=wire)

    # -- host coordinates ----------------------------------------------------
    def _locate(self, host: int) -> Tuple[int, int, int]:
        """(pod, edge, port) of a host."""
        if not 0 <= host < self.hosts:
            raise TopologyError(
                f"host {host} out of range 0..{self.hosts - 1}")
        per_pod = self.k * self.k // 4  # k^2/4 hosts per pod
        pod, rest = divmod(host, per_pod)
        edge, port = divmod(rest, self.half)
        return pod, edge, port

    def _hops(self, src: int, dst: int
              ) -> List[Tuple[Optional[str], str]]:
        """The unique up/down path as (switch, link-name) hops."""
        sp, se, _ = self._locate(src)
        dp, de, _ = self._locate(dst)
        a = dst % self.half                       # agg position, dst-rooted
        core = a * self.half + (dst // self.half) % self.half
        hops: List[Tuple[Optional[str], str]] = [(None, f"host{src}.up")]
        if (sp, se) == (dp, de):
            hops.append((f"edge{sp}.{se}", f"host{dst}.down"))
            return hops
        if sp == dp:
            hops.append((f"edge{sp}.{se}", f"p{sp}.e{se}.up.a{a}"))
            hops.append((f"agg{sp}.{a}", f"p{sp}.a{a}.down.e{de}"))
            hops.append((f"edge{dp}.{de}", f"host{dst}.down"))
            return hops
        hops.append((f"edge{sp}.{se}", f"p{sp}.e{se}.up.a{a}"))
        hops.append((f"agg{sp}.{a}", f"p{sp}.a{a}.up.c{core}"))
        hops.append((f"core{core}", f"c{core}.down.p{dp}"))
        hops.append((f"agg{dp}.{a}", f"p{dp}.a{a}.down.e{de}"))
        hops.append((f"edge{dp}.{de}", f"host{dst}.down"))
        return hops

    def route(self, src: int, dst: int) -> List[str]:
        return [name for _sw, name in self._hops(src, dst)]

    def transit(self, src: int, dst: int, n_cells: int,
                wire_bytes: int) -> Generator:
        arrived: Optional[Link] = None
        for switch, name in self._hops(src, dst):
            link = self.links[name]
            yield from self._traverse_hop(switch, arrived, link, wire_bytes)
            arrived = link
        return None

    def min_transit_ns(self, wire_bytes: int) -> float:
        # Nearest pair: two hosts under one edge switch (2 host links,
        # one crossing, no inter-switch propagation).
        serialize = self.params.train_wire_time_ns(wire_bytes)
        return self.params.switch_latency_ns + 2 * serialize


class TorusTopology(Topology):
    """APEnet+-style 2-D/3-D torus with DOR or minimal-adaptive routing.

    Node ``n`` has coordinates ``(x, y, z)`` with ``x`` fastest
    (``n = x + X*(y + Y*z)``); each node's router owns one directed link
    per dimension and direction, with wraparound.  Every route is
    minimal: the direction of travel in each dimension is fixed to the
    shorter way around the ring (ties break positive), so ``dor`` and
    ``adaptive`` differ only in the *order* dimensions are corrected —
    adaptive picks the least-queued productive link at each router and
    falls back to dimension order on ties.
    """

    kind = "torus"

    def __init__(self, sim: Simulator, params: SimParams,
                 spec: TopologySpec,
                 rate_overrides: Optional[Dict[str, float]] = None):
        super().__init__(sim, params, spec, rate_overrides)
        self.dims = tuple(spec.dims)
        self.routing = spec.routing
        self.nodes = spec.capacity
        wire = params.wire_latency_ns
        for n in range(self.nodes):
            for dim, size in enumerate(self.dims):
                if size < 2:
                    continue
                for sign in (+1, -1):
                    self._add_link(self._link_name(n, dim, sign),
                                   latency_ns=wire)

    # -- coordinates ---------------------------------------------------------
    def _coords(self, n: int) -> Tuple[int, ...]:
        if not 0 <= n < self.nodes:
            raise TopologyError(f"node {n} out of range 0..{self.nodes - 1}")
        out = []
        for size in self.dims:
            n, c = divmod(n, size)
            out.append(c)
        return tuple(out)

    def _node(self, coords: Tuple[int, ...]) -> int:
        n = 0
        for size, c in zip(reversed(self.dims), reversed(coords)):
            n = n * size + c
        return n

    def _link_name(self, node: int, dim: int, sign: int) -> str:
        return f"n{node}.d{dim}{'+' if sign > 0 else '-'}"

    def _neighbor(self, node: int, dim: int, sign: int) -> int:
        coords = list(self._coords(node))
        coords[dim] = (coords[dim] + sign) % self.dims[dim]
        return self._node(tuple(coords))

    def _deltas(self, src: int, dst: int) -> List[Tuple[int, int, int]]:
        """Remaining travel per dimension: (dim, sign, steps), minimal
        direction with ties broken positive — the moves both routing
        modes draw from."""
        sc, dc = self._coords(src), self._coords(dst)
        moves = []
        for dim, size in enumerate(self.dims):
            fwd = (dc[dim] - sc[dim]) % size
            if fwd == 0:
                continue
            if fwd <= size - fwd:
                moves.append((dim, +1, fwd))
            else:
                moves.append((dim, -1, size - fwd))
        return moves

    def route(self, src: int, dst: int) -> List[str]:
        """The dimension-order path (adaptive's zero-load/escape path)."""
        self._coords(dst)
        names = []
        here = src
        for dim, sign, steps in self._deltas(src, dst):
            for _ in range(steps):
                names.append(self._link_name(here, dim, sign))
                here = self._neighbor(here, dim, sign)
        return names

    def _pick_move(self, here: int, moves: List[Tuple[int, int, int]]
                   ) -> Tuple[int, Tuple[int, int, int]]:
        """Adaptive selection: the productive link with the shortest
        queue; dimension order (the escape order) breaks ties.  Returns
        (index into moves, move)."""
        best_i, best_load = 0, None
        for i, (dim, sign, _steps) in enumerate(moves):
            link = self.links[self._link_name(here, dim, sign)]
            load = link.res.queue_length + (1 if link.res.busy else 0)
            if best_load is None or load < best_load:
                best_i, best_load = i, load
        return best_i, moves[best_i]

    def transit(self, src: int, dst: int, n_cells: int,
                wire_bytes: int) -> Generator:
        moves = [list(m) for m in self._deltas(src, dst)]
        here = src
        arrived: Optional[Link] = None
        while moves:
            if self.routing == "adaptive" and len(moves) > 1:
                i, _ = self._pick_move(
                    here, [tuple(m) for m in moves])
                if i != 0:
                    self.adaptive_detours += 1
            else:
                i = 0
            dim, sign, _ = moves[i]
            link = self.links[self._link_name(here, dim, sign)]
            yield from self._traverse_hop(f"rt{here}", arrived, link,
                                          wire_bytes)
            arrived = link
            here = self._neighbor(here, dim, sign)
            moves[i][2] -= 1
            if moves[i][2] == 0:
                del moves[i]
        return None

    def min_transit_ns(self, wire_bytes: int) -> float:
        # Nearest pair: adjacent routers, one crossing + one link.
        return (self.params.switch_latency_ns + self.params.wire_latency_ns
                + self.params.train_wire_time_ns(wire_bytes))


def build_topology(sim: Simulator, params: SimParams,
                   rate_overrides: Optional[Dict[str, float]] = None
                   ) -> Topology:
    """Build the fabric ``params.topology`` selects (validated).

    ``None`` is the paper's machine: a single banyan switch with
    ``params.switch_ports`` ports, timed by the exact pre-topology-layer
    model.  The returned fabric has already checked that
    ``params.num_processors`` nodes fit.
    """
    spec = parse_topology(params.topology)
    if params.topology is None:
        spec = TopologySpec("banyan", ports=params.switch_ports)
    if spec.kind == "banyan":
        topo: Topology = BanyanTopology(sim, params, spec, rate_overrides)
    elif spec.kind == "fattree":
        topo = FatTreeTopology(sim, params, spec, rate_overrides)
    else:
        topo = TorusTopology(sim, params, spec, rate_overrides)
    topo.check_nodes(params.num_processors)
    return topo
