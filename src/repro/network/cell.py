"""Packets and ATM cells.

A :class:`Packet` is what the NICs exchange: a small fixed-layout binary
header (what the PATHFINDER classifies on) plus an arbitrary payload
descriptor.  On the wire a packet becomes AAL5-framed ATM cells
(:mod:`repro.network.fragmentation`).

The header layout is deliberately concrete — 16 bytes, big-endian — so
that the PATHFINDER works on real byte patterns rather than on Python
attributes, as the hardware does.
"""

from __future__ import annotations

import enum
import itertools
import struct
from dataclasses import dataclass, field
from typing import Any, Optional

HEADER_BYTES = 16
_HEADER_STRUCT = struct.Struct(">BBHHHHIxx")  # kind, flags, src, dst, chan, handler, len

_packet_ids = itertools.count(1)


class PacketKind(enum.IntEnum):
    """First header byte: coarse packet class."""

    DATA = 1
    """Application message-passing data."""

    DSM_PROTOCOL = 2
    """DSM consistency-protocol control (lock, barrier, write notices)."""

    DSM_PAGE = 3
    """A shared-memory page (or diff) in flight."""

    CONTROL = 4
    """Connection setup / teardown (kernel-mediated)."""

    ACK = 5
    """Reliable-transport acknowledgement, generated and consumed by the
    NI processors themselves (never dispatched to the host; see
    docs/reliability.md)."""

    COLLECTIVE = 6
    """Collective-operation protocol (barrier/reduce/broadcast arrivals
    and releases; see docs/collectives.md).  On a CNI the PATHFINDER
    classifies these into collective AIH handlers."""

    RUNTIME = 7
    """Messaging-runtime protocol (rendezvous RTS/CTS/data and RDMA-style
    one-sided reads/writes; see docs/runtime.md).  On a CNI the
    PATHFINDER classifies these into the messaging engine's AIH
    handlers, so the library's responder runs on the NI processor."""

    HEARTBEAT = 8
    """Failure-detector liveness cell, generated and consumed by the NI
    processors themselves (zero payload, unreliable, never dispatched to
    the host; see docs/reliability.md)."""


FLAG_CACHEABLE = 0x01
"""Header flag: this buffer should be entered into the Message Cache
(Section 2.2: 'checks the incoming message header for a bit to see if it
is to be cached')."""


@dataclass
class Packet:
    """One network-level message."""

    kind: PacketKind
    src_node: int
    dst_node: int
    channel_id: int
    """Application Device Channel (connection) the packet belongs to."""

    handler_key: int = 0
    """Selector for the protocol action / AIH entry point; the field the
    VCI is too coarse to express (Section 2.1)."""

    payload_bytes: int = 0
    """Size of the payload on the wire (drives cell count and DMA cost)."""

    payload: Any = None
    """Simulation-level payload object (protocol message, page handle)."""

    cacheable: bool = False
    src_vaddr: Optional[int] = None
    """Sender-side virtual address of the transmitted buffer (page sends);
    what the transmit processor looks up in the buffer map."""

    dst_vaddr: Optional[int] = None
    """Receiver-side virtual address of the destination buffer."""

    reliable: bool = True
    """Whether the reliable transport (when enabled) tracks this packet;
    ACKs and explicitly best-effort traffic opt out."""

    rel_seq: Optional[int] = None
    """Reliable-transport sequence number on the (src, dst, channel)
    connection; assigned at first transmission, None for untracked
    packets.  (Carried in the AAL5 user-to-user field on real hardware;
    the 16-byte classification header is unchanged.)"""

    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError("negative payload size")
        for name in ("src_node", "dst_node", "channel_id", "handler_key"):
            v = getattr(self, name)
            if not 0 <= v <= 0xFFFF:
                raise ValueError(f"{name}={v} does not fit the 16-bit header field")

    @property
    def flags(self) -> int:
        """Header flag byte."""
        return FLAG_CACHEABLE if self.cacheable else 0

    def header_bytes(self) -> bytes:
        """The 16-byte wire header the PATHFINDER classifies."""
        return _HEADER_STRUCT.pack(
            int(self.kind),
            self.flags,
            self.src_node,
            self.dst_node,
            self.channel_id,
            self.handler_key,
            self.payload_bytes,
        )

    @property
    def wire_bytes(self) -> int:
        """Header + payload bytes presented to AAL5."""
        return HEADER_BYTES + self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.kind.name} "
            f"{self.src_node}->{self.dst_node} chan={self.channel_id} "
            f"key={self.handler_key} {self.payload_bytes}B>"
        )


def parse_header(header: bytes) -> dict:
    """Decode a 16-byte header; inverse of :meth:`Packet.header_bytes`."""
    if len(header) != HEADER_BYTES:
        raise ValueError(f"header must be {HEADER_BYTES} bytes, got {len(header)}")
    kind, flags, src, dst, chan, key, length = _HEADER_STRUCT.unpack(header)
    return {
        "kind": PacketKind(kind),
        "flags": flags,
        "src_node": src,
        "dst_node": dst,
        "channel_id": chan,
        "handler_key": key,
        "payload_bytes": length,
        "cacheable": bool(flags & FLAG_CACHEABLE),
    }


@dataclass
class AtmCell:
    """One 53-byte ATM cell (5-byte header + 48-byte payload).

    ``eop`` marks the AAL5 end-of-packet cell (the bit real AAL5 carries
    in the PTI field); the reassembler uses it to delimit packets.
    """

    vci: int
    packet_id: int
    seq: int
    eop: bool
    payload_len: int
    corrupt: bool = False
    """Failure injection: payload damaged in transit.  The cell still
    arrives (and costs SAR work) but the packet fails its AAL5 CRC at
    end-of-packet."""

    def __post_init__(self):
        if not 0 <= self.payload_len:
            raise ValueError("negative cell payload")


@dataclass
class CellTrain:
    """A batched representation of one packet's cells in flight.

    The network simulates a packet's cells as a unit (exact cell count,
    pipelined timing) to keep event counts tractable; tests that need
    individual cells expand a train with
    :meth:`repro.network.fragmentation.Segmenter.segment`.
    """

    packet: Packet
    n_cells: int
    lost_cells: int = 0
    """Failure injection: number of cells dropped in transit."""

    corrupted_cells: int = 0
    """Failure injection: cells that arrived with damaged payloads
    (packet fails its AAL5 CRC even though every cell is present)."""

    def __post_init__(self):
        if self.n_cells < 1:
            raise ValueError("a train carries at least one cell")
        if not 0 <= self.lost_cells <= self.n_cells:
            raise ValueError("lost more cells than the train carries")
        if not 0 <= self.corrupted_cells <= self.n_cells - self.lost_cells:
            raise ValueError("corrupted more cells than arrived")

    @property
    def intact(self) -> bool:
        """Whether every cell arrived undamaged."""
        return self.lost_cells == 0 and self.corrupted_cells == 0
