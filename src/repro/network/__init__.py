"""ATM interconnect models: cells, AAL5 SAR, pluggable fabric topologies.

The 53-byte cell and its per-cell SAR cost are first-class here because
the paper's own performance analysis (Section 3.4, Table 5) identifies
them as the factor that principally limits CNI's gains.

:class:`Network` routes every cell train through a :class:`Topology`
selected by ``SimParams.topology`` (grammar: ``banyan:32``,
``fattree:k=4``, ``torus:4x4x4`` — see :mod:`repro.network.spec` and
docs/network.md); the default is the paper's single banyan switch,
bit-identical to the pre-topology-layer model.
"""

from .cell import (
    FLAG_CACHEABLE,
    HEADER_BYTES,
    AtmCell,
    CellTrain,
    Packet,
    PacketKind,
    parse_header,
)
from .fabrics import (
    BanyanTopology,
    FatTreeTopology,
    Link,
    Topology,
    TorusTopology,
    build_topology,
)
from .fragmentation import Reassembler, ReassemblyStats, Segmenter
from .spec import TopologyError, TopologySpec, parse_topology
from .switch import BanyanFabric, BanyanSwitch, SingleSwitch
from .topology import Network

__all__ = [
    "AtmCell",
    "BanyanFabric",
    "BanyanSwitch",
    "BanyanTopology",
    "CellTrain",
    "FLAG_CACHEABLE",
    "FatTreeTopology",
    "HEADER_BYTES",
    "Link",
    "Network",
    "Packet",
    "PacketKind",
    "Reassembler",
    "ReassemblyStats",
    "Segmenter",
    "SingleSwitch",
    "Topology",
    "TopologyError",
    "TopologySpec",
    "TorusTopology",
    "build_topology",
    "parse_topology",
    "parse_header",
]
