"""ATM interconnect models: cells, AAL5 SAR, banyan switch, fabric.

The 53-byte cell and its per-cell SAR cost are first-class here because
the paper's own performance analysis (Section 3.4, Table 5) identifies
them as the factor that principally limits CNI's gains.
"""

from .cell import (
    FLAG_CACHEABLE,
    HEADER_BYTES,
    AtmCell,
    CellTrain,
    Packet,
    PacketKind,
    parse_header,
)
from .fragmentation import Reassembler, ReassemblyStats, Segmenter
from .switch import BanyanFabric, BanyanSwitch
from .topology import Network

__all__ = [
    "AtmCell",
    "BanyanFabric",
    "BanyanSwitch",
    "CellTrain",
    "FLAG_CACHEABLE",
    "HEADER_BYTES",
    "Network",
    "Packet",
    "PacketKind",
    "Reassembler",
    "ReassemblyStats",
    "Segmenter",
    "parse_header",
]
