"""The fabric-topology grammar: ``banyan:32``, ``fattree:k=4``, ``torus:4x4x4``.

This module is deliberately light — no engine imports — so that
:meth:`repro.params.SimParams.validate` and the harness serde can parse
and validate a topology string without pulling in the timed fabric
models (:mod:`repro.network.fabrics`).

Grammar (one spec string, case-sensitive)::

    banyan[:PORTS]           single banyan switch; PORTS a power of two
                             (default 32, the paper's Table 1 switch)
    fattree:k=K              three-level fat-tree of K-port banyan
                             elements (K even >= 2); hosts = K^3/4
    torus:XxY[xZ][:ROUTING]  2-D/3-D torus direct network; ROUTING is
                             "dor" (dimension-order, default) or
                             "adaptive" (minimal-adaptive with a
                             dimension-order escape)

:func:`parse_topology` returns a frozen :class:`TopologySpec` whose
:meth:`~TopologySpec.canonical` string round-trips through the parser —
the property the run-farm serde relies on.  Malformed or unknown specs
raise :class:`TopologyError` (a :class:`ValueError`), never a guess.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "DEFAULT_BANYAN_PORTS",
    "TopologyError",
    "TopologySpec",
    "parse_topology",
]

#: Port count of the paper's switch; ``banyan`` with no argument and the
#: ``SimParams.topology = None`` default both mean this fabric.
DEFAULT_BANYAN_PORTS = 32

_TORUS_DIMS_RE = re.compile(r"^\d+(x\d+){1,2}$")


class TopologyError(ValueError):
    """A topology spec that cannot be parsed, or a fabric asked to do
    something it cannot (too many nodes, a port off the edge, ...)."""


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass(frozen=True)
class TopologySpec:
    """A parsed, validated topology description (pure data).

    ``kind`` selects the fabric; exactly the fields that fabric needs
    are meaningful (``ports`` for banyan, ``k`` for fattree, ``dims`` +
    ``routing`` for torus).  Instances come from :func:`parse_topology`;
    :meth:`canonical` is the inverse.
    """

    kind: str
    ports: int = DEFAULT_BANYAN_PORTS
    k: int = 0
    dims: Tuple[int, ...] = ()
    routing: str = "dor"

    @property
    def capacity(self) -> int:
        """Nodes this fabric can attach."""
        if self.kind == "banyan":
            return self.ports
        if self.kind == "fattree":
            return self.k ** 3 // 4
        prod = 1
        for d in self.dims:
            prod *= d
        return prod

    def canonical(self) -> str:
        """The spec as its canonical grammar string (round-trips)."""
        if self.kind == "banyan":
            return f"banyan:{self.ports}"
        if self.kind == "fattree":
            return f"fattree:k={self.k}"
        dims = "x".join(str(d) for d in self.dims)
        suffix = "" if self.routing == "dor" else f":{self.routing}"
        return f"torus:{dims}{suffix}"


def parse_topology(spec: Optional[str]) -> TopologySpec:
    """Parse a topology spec string; ``None`` means the default banyan.

    Raises :class:`TopologyError` naming the offending piece on any
    malformed or unknown input.
    """
    if spec is None:
        return TopologySpec("banyan", ports=DEFAULT_BANYAN_PORTS)
    if not isinstance(spec, str):
        raise TopologyError(
            f"topology spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if not text:
        raise TopologyError("empty topology spec")
    kind, _, rest = text.partition(":")
    if kind == "banyan":
        return _parse_banyan(rest, text)
    if kind == "fattree":
        return _parse_fattree(rest, text)
    if kind == "torus":
        return _parse_torus(rest, text)
    raise TopologyError(
        f"unknown topology kind {kind!r} in {text!r} "
        "(known: banyan, fattree, torus)")


def _parse_banyan(rest: str, text: str) -> TopologySpec:
    if not rest:
        return TopologySpec("banyan", ports=DEFAULT_BANYAN_PORTS)
    try:
        ports = int(rest)
    except ValueError:
        raise TopologyError(
            f"banyan port count {rest!r} is not an integer (in {text!r})")
    if not _is_pow2(ports) or ports < 2:
        raise TopologyError(
            f"banyan needs a power-of-two port count >= 2, got {ports}")
    return TopologySpec("banyan", ports=ports)


def _parse_fattree(rest: str, text: str) -> TopologySpec:
    if not rest.startswith("k="):
        raise TopologyError(
            f"fattree spec must be 'fattree:k=K', got {text!r}")
    try:
        k = int(rest[2:])
    except ValueError:
        raise TopologyError(
            f"fattree arity {rest[2:]!r} is not an integer (in {text!r})")
    if k < 2 or k % 2:
        raise TopologyError(
            f"fattree arity k={k} must be an even integer >= 2")
    return TopologySpec("fattree", k=k)


def _parse_torus(rest: str, text: str) -> TopologySpec:
    dims_text, _, routing = rest.partition(":")
    if not routing:
        routing = "dor"
    if routing not in ("dor", "adaptive"):
        raise TopologyError(
            f"torus routing {routing!r} must be 'dor' or 'adaptive' "
            f"(in {text!r})")
    if not _TORUS_DIMS_RE.match(dims_text):
        raise TopologyError(
            f"torus dimensions must be 'XxY' or 'XxYxZ', got "
            f"{dims_text!r} (in {text!r})")
    dims = tuple(int(d) for d in dims_text.split("x"))
    if any(d < 1 for d in dims):
        raise TopologyError(f"torus dimensions must be >= 1, got {dims}")
    prod = 1
    for d in dims:
        prod *= d
    if prod < 2:
        raise TopologyError(
            f"torus {dims_text!r} has {prod} node(s); need at least 2")
    return TopologySpec("torus", dims=dims, routing=routing)
