"""A 32-port banyan-network ATM switch model.

Section 3: "The switch latencies are obtained from a 32-port
banyan-network based ATM switch model."  A banyan network for ``N = 2^k``
ports has ``k`` stages of ``N/2`` two-by-two switching elements and
exactly one path between any input and output — which is why banyans are
*internally blocking*: two flows can collide on an internal link even
when their output ports differ.

The model routes with real banyan arithmetic (destination-tag routing),
exposes the internal path for blocking analysis, and serializes
contending traffic on output ports and internal links via simulated
resources; cut-through adds the Table 1 switch latency of 500 ns.
"""

from __future__ import annotations

import warnings
from typing import Dict, Generator, List, Sequence, Tuple

from ..engine import Resource, Simulator
from ..params import SimParams


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


class BanyanFabric:
    """Pure routing arithmetic for an Omega-style banyan (no timing).

    Stage ``s`` (0-based) switches on bit ``k-1-s`` of the destination
    port (destination-tag routing).  Between stages the wiring is a
    perfect shuffle.
    """

    def __init__(self, ports: int):
        if not _is_pow2(ports) or ports < 2:
            raise ValueError(f"banyan needs a power-of-two port count, got {ports}")
        self.ports = ports
        self.stages = ports.bit_length() - 1  # log2

    def path(self, inport: int, outport: int) -> List[Tuple[int, int]]:
        """Internal links used: list of ``(stage, wire)`` hops.

        ``wire`` is the line index (0..ports-1) occupied *after* each
        stage; two flows conflict internally iff they share a
        ``(stage, wire)`` pair.
        """
        self._check_port(inport)
        self._check_port(outport)
        k = self.stages
        wire = inport
        hops = []
        for s in range(k):
            # perfect shuffle into the stage
            wire = ((wire << 1) | ((wire >> (k - 1)) & 1)) & (self.ports - 1)
            # the element replaces the low bit with the routing bit
            bit = (outport >> (k - 1 - s)) & 1
            wire = (wire & ~1) | bit
            hops.append((s, wire))
        return hops

    def conflicts(self, flows: Sequence[Tuple[int, int]]) -> int:
        """Count internal-link collisions among concurrent ``flows``.

        A collision is a ``(stage, wire)`` used by more than one flow;
        each extra user counts once.  Used by tests and by the
        performance analysis, not by the timing model directly.
        """
        seen: Dict[Tuple[int, int], int] = {}
        for inp, outp in flows:
            for hop in self.path(inp, outp):
                seen[hop] = seen.get(hop, 0) + 1
        return sum(c - 1 for c in seen.values() if c > 1)

    def _check_port(self, p: int) -> None:
        if not 0 <= p < self.ports:
            raise ValueError(f"port {p} out of range 0..{self.ports - 1}")


class SingleSwitch:
    """Timed switch: banyan routing + cut-through latency + contention.

    Timing model: a cell train cuts through with the fixed 500 ns switch
    latency; its cells then stream out of the output port at line rate,
    so the output port is held for the train's serialization time and
    concurrent trains to one port queue FIFO.  (Internal-link contention
    is second-order once output queueing is modelled and is exposed via
    :class:`BanyanFabric` for analysis.)

    This is the timing core of the default single-switch fabric; build
    it through :class:`repro.network.BanyanTopology` (or a ``Network``)
    rather than directly — the old direct-construction name
    :class:`BanyanSwitch` is a deprecated shim over this class.
    """

    def __init__(self, sim: Simulator, params: SimParams,
                 ports: int = None):
        self.sim = sim
        self.params = params
        self.fabric = BanyanFabric(
            params.switch_ports if ports is None else ports)
        self._out_ports = [
            Resource(sim, f"swport{i}") for i in range(self.fabric.ports)
        ]
        self.trains_switched = 0
        self.cells_switched = 0

    def transit(self, inport: int, outport: int, n_cells: int,
                wire_bytes: int) -> Generator:
        """Coroutine: move a train of ``n_cells`` / ``wire_bytes`` through.

        Returns when the train's last cell has left the output port.
        """
        self.fabric._check_port(inport)
        self.fabric._check_port(outport)
        if n_cells < 1:
            raise ValueError("train must carry at least one cell")
        # Cut-through latency through the stages.
        yield self.params.switch_latency_ns
        # Serialize on the output port at line rate; concurrent trains to
        # the same port queue FIFO here.
        serialize = self.params.train_wire_time_ns(wire_bytes)
        yield from self._out_ports[outport].held(serialize)
        self.trains_switched += 1
        self.cells_switched += n_cells
        return None

    def output_queue_length(self, port: int) -> int:
        """Trains currently waiting on ``port`` (diagnostics)."""
        return self._out_ports[port].queue_length


class BanyanSwitch(SingleSwitch):
    """Deprecated direct-construction entry point for the single switch.

    Behaviour is bit-identical to :class:`SingleSwitch` (it *is* one);
    constructing it directly emits a :class:`DeprecationWarning` because
    the supported way to get a fabric is the topology layer::

        from repro.network import Network          # or
        from repro.network.fabrics import build_topology

    both of which honour ``SimParams.topology`` (docs/network.md).
    """

    def __init__(self, sim: Simulator, params: SimParams,
                 ports: int = None):
        warnings.warn(
            "direct BanyanSwitch construction is deprecated; build the "
            "fabric through repro.network.Network (SimParams.topology) "
            "or repro.network.fabrics.build_topology()",
            DeprecationWarning, stacklevel=2)
        super().__init__(sim, params, ports)
