"""Cluster interconnect: nodes wired to one banyan switch.

Timing model for a packet of ``n`` cells from node *s* to node *d*
(cut-through everywhere, so serialization is charged exactly once, at the
switch output port where many-to-one contention physically queues):

    wire (150 ns)  ->  switch cut-through (500 ns)
                   ->  output-port serialization (n x 681.7 ns, FIFO)
                   ->  wire (150 ns)  ->  destination NIC rx queue

The sending NIC's transmit processor is itself a serial simulated
process, which provides source-side serialization of back-to-back sends
from one node (DESIGN.md documents this approximation).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..engine import Mailbox, Simulator
from ..params import SimParams
from .cell import AtmCell, CellTrain, Packet
from .switch import BanyanSwitch


class Network:
    """The cluster fabric: delivery of cell trains between NICs."""

    def __init__(self, sim: Simulator, params: SimParams):
        if params.num_processors > params.switch_ports:
            raise ValueError(
                f"{params.num_processors} nodes exceed the "
                f"{params.switch_ports}-port switch"
            )
        self.sim = sim
        self.params = params
        self.switch = BanyanSwitch(sim, params)
        #: One inbound mailbox of :class:`CellTrain` per node (the NIC's
        #: receive processor drains it).
        self.rx_queues: List[Mailbox] = [
            Mailbox(sim, f"rx{i}") for i in range(params.num_processors)
        ]
        self.trains_delivered = 0
        self.cells_delivered = 0
        self.loss_injector: Optional[Callable[[CellTrain], int]] = None
        """Failure injection hook: returns how many cells of a train to
        drop in transit (tests exercise AAL5 drop handling with this)."""
        self.cell_loss_injector: Optional[Callable[[AtmCell, Packet], bool]] = None
        """Per-cell failure injection (per-cell transport mode): return
        True to drop this cell in transit."""

    def send_train(self, train: CellTrain) -> None:
        """Launch a train asynchronously (fire-and-forget from the NIC)."""
        self.sim.spawn(self._transfer(train), f"xfer-{train.packet.packet_id}")

    def _transfer(self, train: CellTrain) -> Generator:
        p = train.packet
        if p.dst_node == p.src_node:
            raise ValueError("loopback traffic never enters the fabric")
        yield self.params.wire_latency_ns
        yield from self.switch.transit(
            p.src_node, p.dst_node, train.n_cells, p.wire_bytes
        )
        yield self.params.wire_latency_ns
        if self.loss_injector is not None:
            lost = self.loss_injector(train)
            if lost:
                train = CellTrain(train.packet, train.n_cells, lost_cells=lost)
        self.trains_delivered += 1
        self.rx_queues[p.dst_node].put(train)
        return None

    def send_cells(self, cells: Sequence[AtmCell], packet: Packet) -> None:
        """Per-cell transport: launch a packet's cells individually.

        Fabric timing matches the train path (the cells pipeline through
        together); delivery hands each cell to the destination NIC as its
        own event, which is what lets the receiving PATHFINDER route
        fragments through its fragment table.
        """
        self.sim.spawn(
            self._transfer_cells(list(cells), packet),
            f"xfer-cells-{packet.packet_id}",
        )

    def _transfer_cells(self, cells: List[AtmCell], packet: Packet) -> Generator:
        if packet.dst_node == packet.src_node:
            raise ValueError("loopback traffic never enters the fabric")
        yield self.params.wire_latency_ns
        yield from self.switch.transit(
            packet.src_node, packet.dst_node, len(cells), packet.wire_bytes
        )
        yield self.params.wire_latency_ns
        rx = self.rx_queues[packet.dst_node]
        for cell in cells:
            if self.cell_loss_injector is not None and \
                    self.cell_loss_injector(cell, packet):
                continue
            self.cells_delivered += 1
            rx.put((cell, packet))
        return None

    def transfer_and_wait(self, train: CellTrain) -> Generator:
        """Coroutine form of :meth:`send_train` (microbenchmarks)."""
        yield from self._transfer(train)
        return None

    def min_transit_ns(self, wire_bytes: int) -> float:
        """Uncontended fabric latency for a packet of ``wire_bytes``."""
        return (
            2 * self.params.wire_latency_ns
            + self.params.switch_latency_ns
            + self.params.train_wire_time_ns(wire_bytes)
        )
