"""Cluster interconnect: nodes wired to a pluggable fabric topology.

``SimParams.topology`` selects the fabric (``banyan:32``,
``fattree:k=4``, ``torus:4x4x4`` — the grammar in
:mod:`repro.network.spec`); ``None``, the default, is the paper's single
banyan switch with the exact pre-topology-layer timing.  Timing model
for a packet of ``n`` cells from node *s* to node *d* on the default
fabric (cut-through everywhere, so serialization is charged exactly
once, at the switch output port where many-to-one contention physically
queues):

    wire (150 ns)  ->  switch cut-through (500 ns)
                   ->  output-port serialization (n x 681.7 ns, FIFO)
                   ->  wire (150 ns)  ->  destination NIC rx queue

Multi-hop fabrics replace the middle leg with the per-hop walk documented
in :mod:`repro.network.fabrics` (per-link rates, FIFO output queueing,
input-port head-of-line blocking); the two host wires stay here.

The sending NIC's transmit processor is itself a serial simulated
process, which provides source-side serialization of back-to-back sends
from one node (DESIGN.md documents this approximation).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..engine import Mailbox, Simulator
from ..params import SimParams
from .cell import AtmCell, CellTrain, Packet
from .fabrics import Topology, build_topology
from .spec import TopologyError


class Network:
    """The cluster fabric: delivery of cell trains between NICs."""

    def __init__(self, sim: Simulator, params: SimParams):
        self.sim = sim
        self.params = params
        #: The routed fabric (:mod:`repro.network.fabrics`); construction
        #: validates the spec and that every node has an attachment point.
        self.topology: Topology = build_topology(sim, params)
        #: One inbound mailbox of :class:`CellTrain` per node (the NIC's
        #: receive processor drains it).
        self.rx_queues: List[Mailbox] = [
            Mailbox(sim, f"rx{i}") for i in range(params.num_processors)
        ]
        self.trains_delivered = 0
        self.cells_delivered = 0
        #: Runtime fault evaluator (repro.faults); None on a clean fabric
        #: with no legacy injectors either.
        self.active_faults = (
            params.fault_plan.activate(params.num_processors)
            if params.fault_plan is not None else None
        )
        self._legacy_loss_injector: Optional[Callable[[CellTrain], int]] = None
        self._legacy_cell_loss_injector: Optional[
            Callable[[AtmCell, Packet], bool]] = None

    # -- fault injection ------------------------------------------------------
    def _faults(self):
        """The active fault evaluator, created on demand (legacy shims
        attach their callables to an otherwise-empty plan)."""
        if self.active_faults is None:
            from ..faults import FaultPlan

            self.active_faults = FaultPlan().activate(
                self.params.num_processors)
        return self.active_faults

    @property
    def loss_injector(self) -> Optional[Callable[[CellTrain], int]]:
        """Deprecated: returns how many cells of a train to drop in
        transit.  Use a :class:`repro.faults.FaultPlan` instead."""
        return self._legacy_loss_injector

    @loss_injector.setter
    def loss_injector(self, fn: Optional[Callable[[CellTrain], int]]) -> None:
        warnings.warn(
            "Network.loss_injector is deprecated; pass a repro.faults."
            "FaultPlan via SimParams.fault_plan", DeprecationWarning,
            stacklevel=2)
        self._legacy_loss_injector = fn
        self._faults().set_legacy_train_injector(fn)

    @property
    def cell_loss_injector(self) -> Optional[Callable[[AtmCell, Packet], bool]]:
        """Deprecated: per-cell injector (per-cell transport mode);
        return True to drop a cell.  Use a FaultPlan instead."""
        return self._legacy_cell_loss_injector

    @cell_loss_injector.setter
    def cell_loss_injector(
            self, fn: Optional[Callable[[AtmCell, Packet], bool]]) -> None:
        warnings.warn(
            "Network.cell_loss_injector is deprecated; pass a repro.faults."
            "FaultPlan via SimParams.fault_plan", DeprecationWarning,
            stacklevel=2)
        self._legacy_cell_loss_injector = fn
        self._faults().set_legacy_cell_injector(fn)

    def fault_cells_dropped(self, node: int) -> int:
        """Cells the fault plan dropped en route to ``node``."""
        f = self.active_faults
        return f.cells_dropped[node] if f is not None else 0

    def fault_cells_corrupted(self, node: int) -> int:
        """Cells the fault plan corrupted en route to ``node``."""
        f = self.active_faults
        return f.cells_corrupted[node] if f is not None else 0

    def send_train(self, train: CellTrain) -> None:
        """Launch a train asynchronously (fire-and-forget from the NIC)."""
        self.sim.spawn(self._transfer(train), f"xfer-{train.packet.packet_id}")

    def _transfer(self, train: CellTrain) -> Generator:
        p = train.packet
        if p.dst_node == p.src_node:
            raise ValueError("loopback traffic never enters the fabric")
        yield self.params.wire_latency_ns
        yield from self.topology.transit(
            p.src_node, p.dst_node, train.n_cells, p.wire_bytes
        )
        yield self.params.wire_latency_ns
        faults = self.active_faults
        if faults is not None:
            stall = faults.stall_ns(p.dst_node, self.sim.now)
            if stall > 0:
                yield stall
            slow = max(faults.slow_factor(p.src_node, self.sim.now),
                       faults.slow_factor(p.dst_node, self.sim.now))
            if slow > 1.0:
                # A degraded endpoint (NodeSlow) stretches the transfer
                # by the slowdown of its NI processors.
                yield (slow - 1.0) * self.params.train_wire_time_ns(
                    p.wire_bytes)
            lost, corrupted = faults.train_faults(train, self.sim.now)
            if lost or corrupted:
                train = CellTrain(train.packet, train.n_cells,
                                  lost_cells=min(lost, train.n_cells),
                                  corrupted_cells=corrupted)
        self.trains_delivered += 1
        self.rx_queues[p.dst_node].put(train)
        return None

    def send_cells(self, cells: Sequence[AtmCell], packet: Packet) -> None:
        """Per-cell transport: launch a packet's cells individually.

        Fabric timing matches the train path (the cells pipeline through
        together); delivery hands each cell to the destination NIC as its
        own event, which is what lets the receiving PATHFINDER route
        fragments through its fragment table.
        """
        self.sim.spawn(
            self._transfer_cells(list(cells), packet),
            f"xfer-cells-{packet.packet_id}",
        )

    def _transfer_cells(self, cells: List[AtmCell], packet: Packet) -> Generator:
        if packet.dst_node == packet.src_node:
            raise ValueError("loopback traffic never enters the fabric")
        yield self.params.wire_latency_ns
        yield from self.topology.transit(
            packet.src_node, packet.dst_node, len(cells), packet.wire_bytes
        )
        yield self.params.wire_latency_ns
        faults = self.active_faults
        if faults is not None:
            stall = faults.stall_ns(packet.dst_node, self.sim.now)
            if stall > 0:
                yield stall
            slow = max(faults.slow_factor(packet.src_node, self.sim.now),
                       faults.slow_factor(packet.dst_node, self.sim.now))
            if slow > 1.0:
                yield (slow - 1.0) * self.params.train_wire_time_ns(
                    packet.wire_bytes)
        rx = self.rx_queues[packet.dst_node]
        for cell in cells:
            if faults is not None:
                fate = faults.cell_fate(cell, packet, self.sim.now)
                if fate == "drop":
                    continue
                if fate == "corrupt":
                    cell = dataclasses.replace(cell, corrupt=True)
            self.cells_delivered += 1
            rx.put((cell, packet))
        return None

    def transfer_and_wait(self, train: CellTrain) -> Generator:
        """Coroutine form of :meth:`send_train` (microbenchmarks)."""
        yield from self._transfer(train)
        return None

    def min_transit_ns(self, wire_bytes: int) -> float:
        """Uncontended best-case fabric latency for ``wire_bytes``
        (nearest node pair on multi-hop fabrics)."""
        return (
            2 * self.params.wire_latency_ns
            + self.topology.min_transit_ns(wire_bytes)
        )

    def register_metrics(self, scope) -> None:
        """Register the ``net.*`` catalog (docs/network.md) on ``scope``:
        delivery totals here plus the fabric's congestion counters."""
        scope.counter("trains_delivered", fn=lambda: self.trains_delivered)
        scope.counter("cells_delivered", fn=lambda: self.cells_delivered)
        self.topology.register_metrics(scope)

    @property
    def switch(self):
        """Deprecated: the underlying single switch, when the fabric is a
        banyan.  Route through :attr:`topology` instead — multi-hop
        fabrics have no single switch and raise :class:`TopologyError`
        here."""
        warnings.warn(
            "Network.switch is deprecated; use Network.topology (the "
            "banyan fabric exposes the timed switch as topology.switch)",
            DeprecationWarning, stacklevel=2)
        inner = getattr(self.topology, "switch", None)
        if inner is None:
            raise TopologyError(
                f"the {self.topology.describe()} fabric has no single "
                "switch; route through Network.topology")
        return inner
