"""Span-style tracing layered on the engine's bounded :class:`Tracer`.

A *span* is a named interval of simulated time: ``begin()`` stamps the
clock, ``end()`` stamps it again and produces the duration.  Spans give
two outputs at once:

* **ring records** — when the underlying tracer is enabled, every span
  emits an ``<kind>:enter`` record at ``begin`` and an ``<kind>:exit``
  record (whose detail carries the duration) at ``end``, into the same
  bounded ring as ad-hoc ``Tracer.emit`` events, so spans and point
  events interleave chronologically in one place;
* **latency histograms** — when a metrics scope is attached, every
  ``end()`` feeds the duration into the fixed-bucket histogram
  ``<scope>.<kind>_ns`` *regardless* of whether the ring is enabled.
  Histograms are cheap (one bisect) and always-on, which is what lets a
  full harness run export DMA/receive-wait latency distributions without
  anyone remembering to flip tracing on.

Spans nest freely (the handle carries its own start time; there is no
global stack) and are safe to use from interleaved simulation processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..engine.trace import Tracer
from .metrics import MetricsScope


@dataclass(frozen=True)
class SpanHandle:
    """An open span: everything ``end()`` needs to close it."""

    source: str
    kind: str
    start_ns: float


class SpanTracer:
    """Produces spans against a simulation clock.

    ``clock`` is a zero-argument callable returning the current simulated
    time in nanoseconds (``lambda: sim.now``); injecting it keeps this
    module free of any dependency on the simulator itself.
    """

    def __init__(
        self,
        tracer: Tracer,
        clock: Callable[[], float],
        metrics: Optional[MetricsScope] = None,
    ):
        self.tracer = tracer
        self.clock = clock
        self.metrics = metrics
        self.spans_closed = 0

    @property
    def ring_enabled(self) -> bool:
        """Whether enter/exit records currently reach the trace ring."""
        return self.tracer.enabled

    def begin(self, source: str, kind: str, detail: Any = None) -> SpanHandle:
        """Open a span; returns the handle ``end()`` consumes."""
        start = self.clock()
        if self.tracer.enabled:
            self.tracer.emit(start, source, f"{kind}:enter", detail)
        return SpanHandle(source, kind, start)

    def end(self, handle: SpanHandle, detail: Any = None) -> float:
        """Close a span; returns its duration in nanoseconds."""
        now = self.clock()
        duration = now - handle.start_ns
        if self.tracer.enabled:
            self.tracer.emit(
                now, handle.source, f"{handle.kind}:exit",
                {"duration_ns": duration, "detail": detail},
            )
        if self.metrics is not None:
            self.metrics.histogram(f"{handle.kind}_ns").observe(duration)
        self.spans_closed += 1
        return duration

    @contextmanager
    def span(self, source: str, kind: str, detail: Any = None) -> Iterator[SpanHandle]:
        """Context-manager form for non-generator code paths.

        Simulation coroutines should prefer explicit ``begin``/``end``
        around their ``yield``s; ``with`` blocks only measure a nonzero
        duration when simulated time advances inside them.
        """
        handle = self.begin(source, kind, detail)
        try:
            yield handle
        finally:
            self.end(handle)
