"""Unified observability: the metrics registry and span tracing.

Everything the simulator knows about itself at run time flows through
this package:

* :class:`MetricsRegistry` / :class:`MetricsScope` — hierarchical
  counters, gauges and fixed-bucket histograms under dotted names
  (``node0.nic.mcache.hits``).  One registry per
  :class:`~repro.runtime.Cluster` (``cluster.metrics``); components get
  prefixed scopes.
* :class:`SpanTracer` — enter/exit interval tracing layered on the
  engine's bounded :class:`~repro.engine.Tracer`, feeding always-on
  latency histograms.
* :mod:`repro.obs.export` helpers — JSON documents and the per-node
  table behind ``python -m repro.harness metrics``.

The full metric catalog and usage guide is ``docs/observability.md``.
"""

from .export import (
    DEFAULT_TABLE_COLUMNS,
    aggregate_nodes,
    format_node_table,
    node_ids,
    per_node_rows,
    snapshot_to_json,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    MetricsScope,
    private_scope,
    registry_from_snapshot,
)
from .spans import SpanHandle, SpanTracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_TABLE_COLUMNS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsScope",
    "SpanHandle",
    "SpanTracer",
    "aggregate_nodes",
    "format_node_table",
    "node_ids",
    "per_node_rows",
    "private_scope",
    "registry_from_snapshot",
    "snapshot_to_json",
]
