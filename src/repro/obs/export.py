"""Turning metrics snapshots into artifacts: JSON documents and tables.

A *snapshot* here is what :meth:`MetricsRegistry.snapshot` returns — a
flat ``{dotted name: value}`` dict.  These helpers never touch live
registries, so they work equally on a snapshot captured in
:class:`~repro.engine.RunStats.metrics` long after the cluster is gone.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

_NODE_RE = re.compile(r"^node(\d+)\.")

#: The per-node columns ``repro.harness metrics`` prints, as
#: ``(column header, relative metric name)`` pairs.  Missing metrics
#: (e.g. Message Cache counters on the standard interface) render as 0.
DEFAULT_TABLE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("mc.hits", "nic.mcache.hits"),
    ("mc.miss", "nic.mcache.misses"),
    ("mc.evict", "nic.mcache.evictions"),
    ("mc.snoop", "nic.mcache.snoop_updates"),
    ("adc.txq", "nic.adc.tx_depth_hwm"),
    ("adc.rxq", "nic.adc.rx_depth_hwm"),
    ("pf.match", "nic.pathfinder.matches"),
    ("aih.disp", "nic.aih.dispatches"),
    ("bus.snoopw", "bus.snooped_writeback_words"),
    ("tx.pkts", "nic.tx.packets_sent"),
    ("rx.pkts", "nic.rx.packets_received"),
)


def node_ids(snapshot: Dict[str, Any]) -> List[int]:
    """The node indices present in a snapshot, sorted."""
    ids = set()
    for name in snapshot:
        m = _NODE_RE.match(name)
        if m:
            ids.add(int(m.group(1)))
    return sorted(ids)


def _scalar(value: Any) -> float:
    """Numeric view of a snapshot value (histograms shrink to count)."""
    if isinstance(value, dict):
        return float(value.get("count", 0))
    return float(value)


def per_node_rows(
    snapshot: Dict[str, Any],
    columns: Sequence[Tuple[str, str]] = DEFAULT_TABLE_COLUMNS,
) -> List[List[float]]:
    """One row of column values per node (0.0 for absent metrics)."""
    rows = []
    for nid in node_ids(snapshot):
        prefix = f"node{nid}."
        rows.append([_scalar(snapshot.get(prefix + rel, 0))
                     for _header, rel in columns])
    return rows


def format_node_table(
    snapshot: Dict[str, Any],
    columns: Sequence[Tuple[str, str]] = DEFAULT_TABLE_COLUMNS,
    title: str = "per-node metrics",
) -> str:
    """Render the per-node metric table as aligned text."""
    ids = node_ids(snapshot)
    if not ids:
        return f"{title}: no per-node metrics in snapshot"
    headers = ["node"] + [h for h, _rel in columns]
    rows = [[f"node{nid}"] + [_format_cell(v) for v in row]
            for nid, row in zip(ids, per_node_rows(snapshot, columns))]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [title,
             "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(v: float) -> str:
    if v == int(v):
        return str(int(v))
    return f"{v:.1f}"


def aggregate_nodes(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Sum every numeric per-node metric across nodes.

    Returns ``{relative name: total}`` — e.g. the cluster-wide Message
    Cache hit count is ``aggregate_nodes(s)["nic.mcache.hits"]``.
    Histogram values aggregate by observation count; gauges (high-water
    marks) are summed too, so treat aggregated gauge values as an upper
    bound on any instant's cluster-wide level, not an observed one.
    """
    totals: Dict[str, float] = {}
    for name, value in snapshot.items():
        m = _NODE_RE.match(name)
        if not m:
            continue
        rel = name[m.end():]
        totals[rel] = totals.get(rel, 0.0) + _scalar(value)
    return totals


def snapshot_to_json(snapshot: Dict[str, Any], indent: int = 2,
                     meta: Optional[Dict[str, Any]] = None) -> str:
    """One snapshot as a JSON document (optionally with run metadata)."""
    doc: Dict[str, Any] = {"kind": "metrics"}
    if meta:
        doc["meta"] = dict(meta)
    doc["metrics"] = snapshot
    return json.dumps(doc, indent=indent, sort_keys=False)
