"""The hierarchical metrics registry.

Every observable quantity in the simulation lives in one
:class:`MetricsRegistry` per :class:`~repro.runtime.Cluster`, keyed by a
dotted name (``node0.nic.mcache.hits``).  Components never see the whole
registry; they receive a :class:`MetricsScope` — a prefixed view — and
register *relative* names into it, so the same component code produces
``node0.nic.mcache.hits`` on node 0 and ``node7.nic.mcache.hits`` on
node 7 without knowing where it was mounted.

Three metric kinds:

* :class:`Counter` — a monotonically non-decreasing count (hits, packets,
  evictions).  Counters aggregate by *summing*.
* :class:`Gauge` — a point-in-time level (queue depth, occupancy) with a
  built-in high-water-mark helper (:meth:`Gauge.track_max`).  Gauges
  aggregate by *max*, which is the only merge that preserves a
  high-water-mark's meaning.
* :class:`Histogram` — a fixed-bucket distribution (latencies).  Buckets
  are upper bounds chosen at registration; histograms aggregate
  bucket-wise and refuse to merge across different bucket layouts.

Counters and gauges may be *function-sourced* (``fn=...``): the value is
pulled from the component's own attribute at read time, so instrumenting
existing code never duplicates bookkeeping on the hot path.

The registry also supports *probes* — callbacks run before every
snapshot — for metric sets whose names are only known at run time (the
cluster-wide :class:`~repro.engine.Counters` bag is exported this way).

This module is dependency-free on purpose: ``repro.engine`` and every
layer above it may import it without cycles.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default fixed buckets for latency histograms, in nanoseconds.  The
#: range spans a single bus word (~hundreds of ns at Table 1 speeds) up
#: to multi-page DMA trains; the last implicit bucket is +inf.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0,
    16_000.0, 32_000.0, 64_000.0, 128_000.0, 256_000.0, 1_000_000.0,
)


class MetricError(ValueError):
    """Registration or aggregation misuse of the metrics registry."""


class Counter:
    """A monotonically non-decreasing count.

    Either *stored* (incremented via :meth:`inc`) or *function-sourced*
    (``fn`` pulls the value from existing component state; :meth:`inc`
    is then an error — there is exactly one writer per metric).
    """

    __slots__ = ("name", "_value", "_fn")
    kind = "counter"

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0
        self._fn = fn

    @property
    def value(self) -> float:
        """Current count."""
        return self._fn() if self._fn is not None else self._value

    def inc(self, by: float = 1) -> None:
        """Add ``by`` (>= 0) to a stored counter.

        The common case — a stored counter bumped by a non-negative
        amount from instrumentation on the simulator's hot path — takes
        the first branch and returns; the error checks only run on the
        way to raising.
        """
        if self._fn is None and by >= 0:
            self._value += by
            return
        if self._fn is not None:
            raise MetricError(f"counter {self.name!r} is function-sourced")
        raise MetricError(f"counter {self.name!r} decremented by {by}")

    def merge_from(self, other: "Counter") -> None:
        """Aggregate: counters sum."""
        if self._fn is not None:
            raise MetricError(f"cannot merge into function-sourced {self.name!r}")
        self._value += other.value


class Gauge:
    """A point-in-time level; aggregates by max (high-water semantics)."""

    __slots__ = ("name", "_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    @property
    def value(self) -> float:
        """Current level."""
        return self._fn() if self._fn is not None else self._value

    def set(self, value: float) -> None:
        """Overwrite the level of a stored gauge."""
        if self._fn is not None:
            raise MetricError(f"gauge {self.name!r} is function-sourced")
        self._value = value

    def track_max(self, value: float) -> None:
        """High-water-mark update: keep the max of all observed levels."""
        if self._fn is not None:
            raise MetricError(f"gauge {self.name!r} is function-sourced")
        if value > self._value:
            self._value = value

    def merge_from(self, other: "Gauge") -> None:
        """Aggregate: gauges max (preserves high-water marks)."""
        if self._fn is not None:
            raise MetricError(f"cannot merge into function-sourced {self.name!r}")
        self._value = max(self._value, other.value)


class Histogram:
    """A fixed-bucket distribution (latency histograms).

    ``buckets`` are strictly increasing upper bounds; an observation
    lands in the first bucket whose bound is >= the value, or in the
    implicit +inf overflow bucket.  Tracks count and sum so means are
    recoverable without the raw stream.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow bucket
        self.count = 0
        self.sum = 0.0

    @property
    def value(self) -> Dict[str, Any]:
        """Snapshot form: count, sum and per-bucket counts."""
        buckets = {f"{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["+inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding
        the ``q``-th observation (the last finite bound for overflow)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for bound, c in zip(self.bounds, self.counts):
            seen += c
            if seen >= rank:
                return bound
        return self.bounds[-1]

    def merge_from(self, other: "Histogram") -> None:
        """Aggregate bucket-wise; bucket layouts must match."""
        if other.bounds != self.bounds:
            raise MetricError(
                f"histogram {self.name!r}: incompatible bucket layouts")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum


Metric = Any  # Counter | Gauge | Histogram (kept loose for 3.8 compat)


def _join(prefix: str, name: str) -> str:
    return f"{prefix}.{name}" if prefix else name


class MetricsRegistry:
    """The per-cluster store of every metric, keyed by dotted name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._probes: List[Callable[["MetricsRegistry"], None]] = []

    # -- registration (get-or-create) ------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        if not name or name.startswith(".") or name.endswith("."):
            raise MetricError(f"bad metric name {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:
            raise MetricError(
                f"{name!r} already registered as a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str,
                fn: Optional[Callable[[], float]] = None) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name, fn), "counter")

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, lambda: Gauge(name, fn), "gauge")

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS
                  ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, lambda: Histogram(name, buckets),
                                   "histogram")

    def scope(self, prefix: str) -> "MetricsScope":
        """A view of this registry under ``prefix`` (may be empty)."""
        return MetricsScope(self, prefix)

    def add_probe(self, probe: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every :meth:`snapshot`; probes
        late-register metrics whose names are only known at run time."""
        self._probes.append(probe)

    # -- access -----------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def kinds(self) -> Dict[str, str]:
        """``{dotted name: kind}`` for every registered metric (probes
        run first, so late-registered metrics are included).  Stored next
        to a snapshot, this is what lets
        :func:`registry_from_snapshot` rebuild a mergeable registry long
        after the live one is gone — e.g. in the parallel sweep executor,
        where worker processes ship snapshots back to the parent."""
        for probe in self._probes:
            probe(self)
        return {name: m.kind for name, m in self._metrics.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted registered names, optionally under a dotted prefix."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix + "."
        return sorted(n for n in self._metrics
                      if n == prefix or n.startswith(dotted))

    # -- export -----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{dotted name: value}`` snapshot (probes run first).

        Counter/gauge values are numbers; histogram values are
        ``{"count", "sum", "buckets"}`` dicts.  The result is plain data,
        safe to mutate and to ``json.dumps``.
        """
        for probe in self._probes:
            probe(self)
        return {name: self._metrics[name].value
                for name in sorted(self._metrics)}

    def as_tree(self) -> Dict[str, Any]:
        """The snapshot nested by dotted-name segment (for display)."""
        tree: Dict[str, Any] = {}
        for name, value in self.snapshot().items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return tree

    # -- aggregation -------------------------------------------------------------
    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry, optionally under ``prefix``.

        This is the dotted-hierarchy merge used to aggregate per-node
        registries into a cluster view, or per-run registries into a
        sweep total: counters sum, gauges max, histograms add bucket-wise.
        Kind conflicts raise :class:`MetricError`.
        """
        for name, metric in other._metrics.items():
            full = _join(prefix, name)
            if metric.kind == "counter":
                self.counter(full).merge_from(metric)
            elif metric.kind == "gauge":
                self.gauge(full).merge_from(metric)
            else:
                self.histogram(full, metric.bounds).merge_from(metric)


class MetricsScope:
    """A prefixed view of a :class:`MetricsRegistry`.

    Components receive a scope and register relative names; nesting
    scopes concatenates prefixes with dots.  A scope constructed with an
    empty prefix is a transparent passthrough, which is what a component
    gets when instantiated standalone (tests, examples) — it then owns a
    private registry and its metrics are simply unprefixed.
    """

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str = ""):
        if prefix.startswith(".") or prefix.endswith("."):
            raise MetricError(f"bad scope prefix {prefix!r}")
        self.registry = registry
        self.prefix = prefix

    def counter(self, name: str,
                fn: Optional[Callable[[], float]] = None) -> Counter:
        """Get or create ``<prefix>.<name>`` as a counter."""
        return self.registry.counter(_join(self.prefix, name), fn)

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create ``<prefix>.<name>`` as a gauge."""
        return self.registry.gauge(_join(self.prefix, name), fn)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS
                  ) -> Histogram:
        """Get or create ``<prefix>.<name>`` as a histogram."""
        return self.registry.histogram(_join(self.prefix, name), buckets)

    def scope(self, sub: str) -> "MetricsScope":
        """A nested scope: ``<prefix>.<sub>``."""
        return MetricsScope(self.registry, _join(self.prefix, sub))


def private_scope() -> MetricsScope:
    """A scope over a fresh private registry — the default a component
    falls back to when no cluster registry was threaded through, so
    instrumentation code never branches on "is observability on"."""
    return MetricsRegistry().scope("")


def registry_from_snapshot(snapshot: Dict[str, Any],
                           kinds: Dict[str, str]) -> MetricsRegistry:
    """Rebuild a *stored-value* registry from a flat snapshot.

    ``snapshot`` is what :meth:`MetricsRegistry.snapshot` returned;
    ``kinds`` is the matching :meth:`MetricsRegistry.kinds` map (a name
    missing from it defaults to ``counter``).  Function-sourced metrics
    come back as plain stored values frozen at snapshot time, which is
    exactly what cross-process aggregation needs: the rebuilt registry
    feeds :meth:`MetricsRegistry.merge`, so per-run trees from pool
    workers fold into one sweep-wide tree with the normal semantics
    (counters sum, gauges max, histograms add bucket-wise).
    """
    registry = MetricsRegistry()
    for name, value in snapshot.items():
        kind = kinds.get(name, "counter")
        if kind == "histogram":
            if not isinstance(value, dict):
                raise MetricError(
                    f"{name!r}: histogram snapshot value must be a dict")
            buckets = value.get("buckets", {})
            bounds = tuple(sorted(float(b) for b in buckets if b != "+inf"))
            hist = registry.histogram(name, bounds)
            for i, b in enumerate(hist.bounds):
                hist.counts[i] = int(buckets.get(f"{b:g}", 0))
            hist.counts[-1] = int(buckets.get("+inf", 0))
            hist.count = int(value.get("count", 0))
            hist.sum = float(value.get("sum", 0.0))
        elif kind == "gauge":
            registry.gauge(name).set(float(value))
        else:
            counter = registry.counter(name)
            counter._value = float(value)
    return registry
