"""Host memory-system models: caches, bus, DRAM, MMU.

The constraints of Section 1 are embedded here: the board reaches host
memory only through :class:`MemoryBus` DMA, there are no custom cache
signals, and the board sees CPU stores only as snoopable bus write
traffic.
"""

from .address import (
    AddressSpace,
    check_power_of_two,
    line_of,
    lines_in_range,
    page_base,
    page_of,
    pages_in_range,
    split_range_by_page,
)
from .bus import MemoryBus, Snooper
from .cache import (
    AccessCost,
    BurstResult,
    CacheHierarchy,
    CacheLevel,
    ReferenceCache,
)
from .dram import MainMemory
from .mmu import BoardTLB, HostMMU, TranslationError

__all__ = [
    "AccessCost",
    "AddressSpace",
    "BoardTLB",
    "BurstResult",
    "CacheHierarchy",
    "CacheLevel",
    "HostMMU",
    "MainMemory",
    "MemoryBus",
    "ReferenceCache",
    "Snooper",
    "TranslationError",
    "check_power_of_two",
    "line_of",
    "lines_in_range",
    "page_base",
    "page_of",
    "pages_in_range",
    "split_range_by_page",
]
