"""Main-memory accounting for one workstation node.

Data itself lives in the DSM segment store (:mod:`repro.dsm.page`); this
module accounts the *behaviour* of the DRAM: how many line fills and
write-backs it served, which the evaluation uses to explain where bus
traffic comes from.
"""

from __future__ import annotations

from ..params import SimParams


class MainMemory:
    """Latency/traffic bookkeeping for a node's DRAM."""

    def __init__(self, params: SimParams, node_id: int):
        self.params = params
        self.node_id = node_id
        self.line_fills = 0
        self.writebacks = 0
        self.dma_reads = 0
        self.dma_writes = 0

    def record_fills(self, count: int) -> None:
        """Cache-miss line fills served."""
        if count < 0:
            raise ValueError("negative fill count")
        self.line_fills += count

    def record_writebacks(self, count: int) -> None:
        """Dirty-line write-backs received."""
        if count < 0:
            raise ValueError("negative writeback count")
        self.writebacks += count

    def record_dma(self, nbytes: int, is_read: bool) -> None:
        """A board DMA read (host->board) or write (board->host)."""
        if is_read:
            self.dma_reads += nbytes
        else:
            self.dma_writes += nbytes

    @property
    def fill_bytes(self) -> int:
        """Bytes moved by line fills."""
        return self.line_fills * self.params.cache_line_bytes

    @property
    def writeback_bytes(self) -> int:
        """Bytes moved by write-backs."""
        return self.writebacks * self.params.cache_line_bytes
