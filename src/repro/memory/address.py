"""Byte-address arithmetic helpers (pages, cache lines, words).

All addresses in the simulator are plain Python ints (byte addresses in a
node's virtual or physical address space).  The helpers here produce the
*vectorized* line/page index streams the cache and DSM models consume —
per the HPC guides, hot paths hand numpy arrays around instead of looping
per byte.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_power_of_two(value: int, what: str) -> None:
    """Raise ValueError unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


def page_of(addr: int, page_size: int) -> int:
    """Page number containing byte ``addr``."""
    return addr // page_size


def page_base(page: int, page_size: int) -> int:
    """First byte address of ``page``."""
    return page * page_size


def line_of(addr: int, line_size: int) -> int:
    """Cache-line number containing byte ``addr``."""
    return addr // line_size


def lines_in_range(start: int, nbytes: int, line_size: int) -> np.ndarray:
    """Line numbers covering ``[start, start+nbytes)``, ascending.

    Returns an empty int64 array for ``nbytes <= 0``.
    """
    if nbytes <= 0:
        return np.empty(0, dtype=np.int64)
    first = start // line_size
    last = (start + nbytes - 1) // line_size
    return np.arange(first, last + 1, dtype=np.int64)


def pages_in_range(start: int, nbytes: int, page_size: int) -> np.ndarray:
    """Page numbers covering ``[start, start+nbytes)``, ascending."""
    return lines_in_range(start, nbytes, page_size)


def split_range_by_page(
    start: int, nbytes: int, page_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a byte range on page boundaries.

    Returns ``(pages, offsets, lengths)``: for each covered page, the
    in-page start offset and the byte count that falls in that page.
    """
    pages = pages_in_range(start, nbytes, page_size)
    if pages.size == 0:
        z = np.empty(0, dtype=np.int64)
        return pages, z, z
    bases = pages * page_size
    lo = np.maximum(bases, start)
    hi = np.minimum(bases + page_size, start + nbytes)
    return pages, lo - bases, hi - lo


class AddressSpace:
    """A node's virtual address layout.

    The paper allocates "a fixed portion of the processor address space
    to distributed shared memory" (Section 3); private data sits below
    it.  Layout::

        [0, dsm_base)                         private segment
        [dsm_base, dsm_base + dsm_bytes)      shared (DSM) segment
    """

    def __init__(self, page_size: int, dsm_pages: int,
                 private_pages: int = 16384):
        check_power_of_two(page_size, "page size")
        if dsm_pages <= 0 or private_pages <= 0:
            raise ValueError("segment sizes must be positive")
        self.page_size = page_size
        self.private_base = 0
        self.private_bytes = private_pages * page_size
        self.dsm_base = self.private_bytes
        self.dsm_bytes = dsm_pages * page_size

    @property
    def dsm_limit(self) -> int:
        """One past the last shared byte."""
        return self.dsm_base + self.dsm_bytes

    def is_shared(self, addr: int) -> bool:
        """Whether ``addr`` falls in the DSM segment."""
        return self.dsm_base <= addr < self.dsm_limit

    def shared_page_index(self, addr: int) -> int:
        """DSM page index (0-based within the shared segment) of ``addr``."""
        if not self.is_shared(addr):
            raise ValueError(f"address {addr:#x} is not in the DSM segment")
        return (addr - self.dsm_base) // self.page_size

    def shared_page_addr(self, dsm_page: int) -> int:
        """Virtual base address of DSM page ``dsm_page``."""
        if not 0 <= dsm_page < self.dsm_bytes // self.page_size:
            raise ValueError(f"DSM page {dsm_page} out of range")
        return self.dsm_base + dsm_page * self.page_size
