"""The workstation memory bus.

The bus is the only data path between host memory and the network adaptor
board (Section 1: "the network interface device can access host memory
only via DMA ... there are no special memory bus control signals").

Two kinds of traffic matter to the model:

* **DMA transfers** between host memory and the board.  These hold the
  bus :class:`~repro.engine.Resource` for acquisition + per-word transfer
  time (Table 1: 4 cycles + 2 cycles/word at 25 MHz), so concurrent DMAs
  serialize.
* **CPU write traffic** (write-backs and flushes).  The CNI Message Cache
  *snoops* these: every write target that reaches the bus is shown to the
  registered snoopers (Section 2.2, Consistency Snooping).  CPU-side
  cycle costs for this traffic are charged analytically by the cache
  model; the bus only propagates the snoop visibility and counts words.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from ..engine import Resource, Simulator
from ..obs import MetricsScope, SpanTracer, private_scope
from ..params import SimParams

#: A snooper receives ``(node_id, line_numbers)`` for bus write traffic.
Snooper = Callable[[int, np.ndarray], None]


class MemoryBus:
    """One node's memory bus: a serialized resource plus snoop fan-out."""

    def __init__(self, sim: Simulator, params: SimParams, node_id: int,
                 metrics: Optional[MetricsScope] = None,
                 spans: Optional[SpanTracer] = None):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self._resource = Resource(sim, f"bus{node_id}")
        self._snoopers: List[Snooper] = []
        self.spans = spans
        self.dma_bytes = 0
        self.dma_transfers = 0
        self.writeback_words = 0
        self.snooped_writebacks = 0
        m = metrics if metrics is not None else private_scope()
        m.counter("dma_transfers", fn=lambda: self.dma_transfers)
        m.counter("dma_bytes", fn=lambda: self.dma_bytes)
        m.counter("snooped_writeback_words", fn=lambda: self.writeback_words)
        m.counter("snooped_writebacks", fn=lambda: self.snooped_writebacks)
        m.gauge("utilization_ns", fn=lambda: self.utilization_ns)

    # -- snooping -------------------------------------------------------------
    def add_snooper(self, snooper: Snooper) -> None:
        """Register a device that observes CPU write traffic (the CNI)."""
        self._snoopers.append(snooper)

    def cpu_write_traffic(self, lines: np.ndarray) -> None:
        """CPU write-backs / flushes of ``lines`` reached the bus.

        Bus occupancy of this traffic is folded into the cache model's
        CPU cost; here we count words and let the snoopers watch the
        addresses (the essence of Section 2.2's mechanism: the interface
        "snoops out the target of the write from the bus").
        """
        if lines.size == 0:
            return
        self.snooped_writebacks += 1
        self.writeback_words += int(lines.size) * (
            self.params.cache_line_bytes // self.params.bus_word_bytes
        )
        for snooper in self._snoopers:
            snooper(self.node_id, lines)

    # -- DMA --------------------------------------------------------------------
    def dma_transfer_ns(self, nbytes: int) -> float:
        """Pure transfer time of a DMA of ``nbytes`` (no queueing)."""
        return self.params.dma_time_ns(nbytes)

    def dma(self, nbytes: int) -> Generator:
        """Coroutine: perform a DMA of ``nbytes`` across the bus.

        Holds the bus for the Table 1 acquisition + transfer time, FIFO
        behind other masters.  Direction does not change cost.
        """
        if nbytes < 0:
            raise ValueError(f"negative DMA size {nbytes}")
        self.dma_transfers += 1
        self.dma_bytes += nbytes
        if self.spans is not None:
            # Span covers queueing + transfer: the DMA latency a master
            # actually experiences, not just the wire time.
            handle = self.spans.begin(f"bus{self.node_id}", "dma", nbytes)
            yield from self._resource.held(self.dma_transfer_ns(nbytes))
            self.spans.end(handle, detail=nbytes)
        else:
            yield from self._resource.held(self.dma_transfer_ns(nbytes))
        return None

    @property
    def utilization_ns(self) -> float:
        """Total time the bus has been held by DMA masters."""
        return self._resource.total_hold_ns
