"""Two-level direct-mapped write-back cache model (Table 1).

The host cache hierarchy is a 32 KB direct-mapped unified L1 (1 cycle)
over a 1 MB direct-mapped unified L2 (10 cycles) over 20-cycle main
memory, write-back with write-allocate.

Applications present *bursts*: program-ordered numpy arrays of cache-line
numbers, all-read or all-write (the runtime splits mixed traffic).  The
burst API exists for speed — per the HPC guides the hot loop is
vectorized — but the semantics are exact: hits, misses, replacements and
write-backs match feeding the lines one at a time through a scalar
direct-mapped simulator (property-tested against :class:`ReferenceCache`).

Hierarchy simplification (documented in DESIGN.md): the L1 classifies
latency only; dirtiness is tracked at the L2, which is the write-back /
snoop point on the memory bus.  With both levels direct-mapped, the same
line size and near-inclusion, this preserves the three quantities the
paper's model needs — access-latency classification, bus write-back
traffic, and what the CNI snooper can observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .address import check_power_of_two


@dataclass
class BurstResult:
    """Outcome of one burst through a single cache level."""

    hits: int
    misses: int
    evicted_lines: np.ndarray
    """Line numbers evicted *dirty* during the burst (write-back traffic)."""


def _classify_burst(
    entry_tags: np.ndarray, lines: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared grouping arithmetic for an in-order direct-mapped burst.

    Returns ``(hit, order, sl, ss, first)`` where ``order`` is the stable
    by-set permutation, ``sl``/``ss`` the permuted lines/sets, ``first``
    marks each set-group's first access, and ``hit`` is per permuted
    access.  Exactness argument: a direct-mapped set's behaviour depends
    only on the in-order sequence of lines mapped to it; the stable
    lexsort preserves that per-set order, so comparing each access with
    its predecessor in the group (or the entry tag for the first access)
    reproduces the scalar machine.
    """
    n = lines.size
    nsets = entry_tags.size
    sets = lines % nsets
    order = np.lexsort((np.arange(n), sets))
    sl = lines[order]
    ss = sets[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    if n > 1:
        first[1:] = ss[1:] != ss[:-1]
    prev_line = np.empty(n, dtype=np.int64)
    if n > 1:
        prev_line[1:] = sl[:-1]
    prev_line[first] = -2  # sentinel never equal to a real line
    hit = np.where(first, entry_tags[ss] == sl, prev_line == sl)
    return hit, order, sl, ss, first


class CacheLevel:
    """One direct-mapped cache level."""

    def __init__(self, size_bytes: int, line_bytes: int, name: str,
                 track_dirty: bool):
        check_power_of_two(size_bytes, f"{name} size")
        check_power_of_two(line_bytes, f"{name} line size")
        if size_bytes < line_bytes:
            raise ValueError(f"{name}: size smaller than one line")
        self.name = name
        self.nsets = size_bytes // line_bytes
        self.line_bytes = line_bytes
        self.track_dirty = track_dirty
        self.tags = np.full(self.nsets, -1, dtype=np.int64)
        self.dirty = np.zeros(self.nsets, dtype=bool)

    def burst(self, lines: np.ndarray, is_write: bool) -> BurstResult:
        """Feed a program-ordered homogeneous burst through this level.

        Updates tags/dirty state and reports hits, misses and the lines
        evicted dirty (write-back traffic).
        """
        n = lines.size
        if n == 0:
            return BurstResult(0, 0, np.empty(0, dtype=np.int64))

        hit, order, sl, ss, first = _classify_burst(self.tags, lines)
        miss = ~hit

        # Per-set-group bookkeeping.  Within a group, every access before
        # the first miss is a hit on the entry occupant; the first miss
        # evicts the entry occupant; each later miss evicts the line
        # loaded by the access just before it.
        group_starts = np.flatnonzero(first)
        has_miss = np.logical_or.reduceat(miss, group_starts)

        evicted: List[np.ndarray] = []
        if self.track_dirty:
            # Entry occupants evicted by each group's first miss.
            gs_set = ss[group_starts]
            entry_tag = self.tags[gs_set]
            entry_dirty = self.dirty[gs_set]
            evict_entry = has_miss & (entry_tag >= 0)
            if is_write:
                # A hit-write before the first miss dirties the occupant
                # even if it entered the burst clean.
                entry_dirty = entry_dirty | ~miss[group_starts]
            evicted.append(entry_tag[evict_entry & entry_dirty])
            if is_write:
                # Misses after the group's first miss evict a line written
                # (write-allocated) earlier in this burst: always dirty.
                cm = np.cumsum(miss)
                before = cm[group_starts] - miss[group_starts]
                counts = np.diff(np.append(group_starts, n))
                in_group_cum = cm - np.repeat(before, counts)
                later_miss = miss & (in_group_cum > 1)
                prev_line = np.empty(n, dtype=np.int64)
                if n > 1:
                    prev_line[1:] = sl[:-1]
                prev_line[first] = -2
                evicted.append(prev_line[later_miss])
            # (Read bursts load clean lines, so intra-burst read
            # evictions beyond the entry occupant carry no write-back.)

        # Commit final state: the last access in each set-group wins.
        last = np.empty(n, dtype=bool)
        last[-1] = True
        if n > 1:
            last[:-1] = ss[1:] != ss[:-1]
        final_sets = ss[last]
        final_lines = sl[last]
        if self.track_dirty:
            if is_write:
                self.dirty[final_sets] = True
            else:
                # Any miss in a read burst replaces the entry occupant;
                # everything loaded during the burst is clean.  Groups
                # with no miss leave the entry dirtiness untouched.
                self.dirty[final_sets[has_miss]] = False
        self.tags[final_sets] = final_lines

        if evicted and sum(e.size for e in evicted):
            ev = np.concatenate(evicted)
        else:
            ev = np.empty(0, dtype=np.int64)
        return BurstResult(int(hit.sum()), int(miss.sum()), ev)

    def resident(self, line: int) -> bool:
        """Whether ``line`` currently occupies its set."""
        return bool(self.tags[line % self.nsets] == line)

    def resident_mask(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`resident`."""
        return self.tags[lines % self.nsets] == lines

    def drop(self, lines: np.ndarray) -> np.ndarray:
        """Invalidate ``lines`` where resident; returns the dirty ones.

        Used for DSM page invalidation (the protocol owns the data, so
        dirty copies are discarded, not written back).
        """
        sets = lines % self.nsets
        here = self.tags[sets] == lines
        sets = sets[here]
        if self.track_dirty:
            was_dirty = self.dirty[sets]
        else:
            was_dirty = np.zeros(sets.size, dtype=bool)
        self.tags[sets] = -1
        self.dirty[sets] = False
        return lines[here][was_dirty]

    def clean(self, lines: np.ndarray) -> np.ndarray:
        """Write back dirty copies of ``lines``; they stay resident clean.

        Returns the lines actually written back (bus/snoop traffic).
        """
        if not self.track_dirty:
            return np.empty(0, dtype=np.int64)
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        sets = lines % self.nsets
        target = (self.tags[sets] == lines) & self.dirty[sets]
        self.dirty[sets[target]] = False
        return lines[target]

    def dirty_subset(self, lines: np.ndarray) -> np.ndarray:
        """The subset of ``lines`` currently resident and dirty."""
        if not self.track_dirty:
            return np.empty(0, dtype=np.int64)
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        sets = lines % self.nsets
        mask = (self.tags[sets] == lines) & self.dirty[sets]
        return lines[mask]


@dataclass
class AccessCost:
    """Aggregate result of a burst through the full hierarchy."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    memory_accesses: int = 0
    cpu_cycles: float = 0.0
    """CPU stall cycles for the whole burst."""

    writeback_lines: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    """Dirty lines pushed to the bus by replacements during the burst
    (visible to the CNI consistency snooper)."""


class CacheHierarchy:
    """L1 + L2 + memory-latency model for one host CPU."""

    def __init__(
        self,
        l1_size: int,
        l2_size: int,
        line_bytes: int,
        l1_cycles: int,
        l2_cycles: int,
        memory_cycles: int,
    ):
        self.line_bytes = line_bytes
        self.l1 = CacheLevel(l1_size, line_bytes, "L1", track_dirty=False)
        self.l2 = CacheLevel(l2_size, line_bytes, "L2", track_dirty=True)
        self.l1_cycles = l1_cycles
        self.l2_cycles = l2_cycles
        self.memory_cycles = memory_cycles
        self.stats_l1_hits = 0
        self.stats_l2_hits = 0
        self.stats_memory = 0
        self.stats_writebacks = 0

    def access(self, lines: np.ndarray, is_write: bool) -> AccessCost:
        """Burst of line-granular accesses (program order, homogeneous).

        Every access probes the L1; L1 misses continue to the L2; L2
        misses go to memory and allocate in both levels (write-allocate).
        Writes dirty the L2 copy (the write-back point).  Returns latency
        and write-back traffic; the caller charges simulated time and
        shows ``writeback_lines`` to the bus snoopers.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        cost = AccessCost(accesses=int(lines.size))
        if lines.size == 0:
            return cost

        # Classify against the entry state so the exact in-order L1 miss
        # stream can be reconstructed for the L2.
        hit, order, _sl, _ss, _first = _classify_burst(self.l1.tags, lines)
        self.l1.burst(lines, is_write)
        cost.l1_hits = int(hit.sum())

        miss_positions = np.sort(order[~hit])
        miss_stream = lines[miss_positions]

        r2 = self.l2.burst(miss_stream, is_write)
        cost.l2_hits = r2.hits
        cost.memory_accesses = r2.misses

        if is_write:
            # Written lines that hit the L1 never reached the L2 burst;
            # their L2 copies (where resident) must still be marked dirty
            # so the write-back point knows about them.  Burst semantics:
            # these dirty marks apply at END of burst, against the
            # post-replacement residency — an L1-hit write followed in
            # the *same* burst by an L2 eviction of that line loses its
            # mark.  The reorder can only matter when one burst spans an
            # L2 set conflict (>1 MB apart with Table 1's geometry),
            # which page-granular application bursts never do.
            sets = lines % self.l2.nsets
            resident = self.l2.tags[sets] == lines
            self.l2.dirty[sets[resident]] = True

        cost.cpu_cycles = float(
            lines.size * self.l1_cycles
            + miss_stream.size * self.l2_cycles
            + r2.misses * self.memory_cycles
        )
        cost.writeback_lines = r2.evicted_lines

        self.stats_l1_hits += cost.l1_hits
        self.stats_l2_hits += cost.l2_hits
        self.stats_memory += cost.memory_accesses
        self.stats_writebacks += int(cost.writeback_lines.size)
        return cost

    def flush_lines(self, lines: np.ndarray) -> np.ndarray:
        """Write back dirty copies of ``lines``; they stay resident clean.

        This is the traffic the CNI Message Cache snoops, and the cost a
        sender pays before a DMA (or a Message-Cache transmit) so that
        memory is consistent with the CPU cache — Section 2.2's
        write-back-cache flush requirement.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        return self.l2.clean(lines)

    def dirty_lines_of(self, lines: np.ndarray) -> np.ndarray:
        """Subset of ``lines`` that a flush would write back (no change)."""
        return self.l2.dirty_subset(lines)

    def invalidate_lines(self, lines: np.ndarray) -> None:
        """Drop ``lines`` from both levels without write-back (DSM
        invalidation: the protocol owns the authoritative data)."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        self.l1.drop(lines)
        self.l2.drop(lines)


class ReferenceCache:
    """Scalar, obviously-correct direct-mapped model for property tests."""

    def __init__(self, nsets: int):
        self.nsets = nsets
        self.tags: Dict[int, int] = {}
        self.dirty: Dict[int, bool] = {}

    def access(self, line: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """One access; returns ``(hit, evicted_dirty_line_or_None)``."""
        s = line % self.nsets
        old = self.tags.get(s)
        if old == line:
            if is_write:
                self.dirty[s] = True
            return True, None
        evicted = old if (old is not None and self.dirty.get(s, False)) else None
        self.tags[s] = line
        self.dirty[s] = is_write
        return False, evicted
