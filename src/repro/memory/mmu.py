"""Address translation: host page tables and the board's TLB/RTLB.

Section 2.2: "There is also a TLB and a RTLB which keeps mappings between
host virtual and physical memory addresses and permits virtually
addressed DMA operations."  The host MMU owns the authoritative virtual
to physical page map; the board keeps a (complete, host-maintained)
mirror: the TLB answers virtual->physical for DMA, the RTLB answers
physical->virtual so the consistency snooper can turn a snooped physical
write target back into the virtual buffer it belongs to.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np


class TranslationError(KeyError):
    """A translation was requested for an unmapped page."""


class HostMMU:
    """The host page table for one node (page-granular, identity-free).

    Physical frames are allocated sequentially on first touch, which
    deliberately de-correlates physical from virtual numbers: the RTLB's
    reverse map is doing real work, not an identity.
    """

    def __init__(self, page_size: int):
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._v2p: Dict[int, int] = {}
        self._p2v: Dict[int, int] = {}
        self._next_frame = 0x1000  # arbitrary nonzero base

    def map_page(self, vpage: int) -> int:
        """Ensure ``vpage`` is mapped; return its physical frame."""
        frame = self._v2p.get(vpage)
        if frame is None:
            frame = self._next_frame
            self._next_frame += 1
            self._v2p[vpage] = frame
            self._p2v[frame] = vpage
        return frame

    def unmap_page(self, vpage: int) -> None:
        """Remove the mapping for ``vpage`` (page recycled)."""
        frame = self._v2p.pop(vpage, None)
        if frame is not None:
            del self._p2v[frame]

    def translate_v2p(self, vpage: int) -> int:
        """Virtual page -> physical frame; raises if unmapped."""
        try:
            return self._v2p[vpage]
        except KeyError:
            raise TranslationError(f"vpage {vpage} unmapped") from None

    def translate_p2v(self, frame: int) -> Optional[int]:
        """Physical frame -> virtual page; None if unmapped."""
        return self._p2v.get(frame)

    def mapped_vpages(self) -> Iterator[int]:
        """Iterate currently mapped virtual pages."""
        return iter(self._v2p)

    def __len__(self) -> int:
        return len(self._v2p)


class BoardTLB:
    """The adaptor board's TLB + RTLB mirror of the host page table.

    The host OS pushes mapping updates to the board at map/unmap time
    (connection setup installs the buffers), so lookups on the board
    never fault — exactly the property the paper wants: no page faults on
    the network interface (Section 2.3).
    """

    def __init__(self, host: HostMMU):
        self.host = host
        self._host = host
        self._v2p: Dict[int, int] = {}
        self._p2v: Dict[int, int] = {}
        self.lookups = 0
        self.reverse_lookups = 0

    def install(self, vpage: int) -> None:
        """Mirror the host mapping of ``vpage`` onto the board."""
        frame = self._host.translate_v2p(vpage)
        self._v2p[vpage] = frame
        self._p2v[frame] = vpage

    def evict(self, vpage: int) -> None:
        """Remove ``vpage`` from the board mirror."""
        frame = self._v2p.pop(vpage, None)
        if frame is not None:
            self._p2v.pop(frame, None)

    def translate_v2p(self, vpage: int) -> int:
        """TLB lookup for virtually-addressed DMA."""
        self.lookups += 1
        try:
            return self._v2p[vpage]
        except KeyError:
            raise TranslationError(f"board TLB miss for vpage {vpage}") from None

    def rtlb_p2v(self, frame: int) -> Optional[int]:
        """RTLB lookup: snooped physical frame -> host virtual page.

        Returns None when the frame belongs to no installed buffer — the
        snoop is then aborted (Section 2.2 step 3).
        """
        self.reverse_lookups += 1
        return self._p2v.get(frame)

    def rtlb_p2v_many(self, frames: np.ndarray) -> np.ndarray:
        """Vectorized RTLB: maps frames to vpages, -1 where unmapped."""
        self.reverse_lookups += int(frames.size)
        return np.fromiter(
            (self._p2v.get(int(f), -1) for f in frames),
            count=frames.size,
            dtype=np.int64,
        )

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._v2p

    def __len__(self) -> int:
        return len(self._v2p)
