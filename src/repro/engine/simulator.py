"""The discrete-event simulation kernel.

The kernel is a small cooperative-coroutine scheduler in the style of
execution-driven simulators (the paper used a modified Proteus):
simulated activities are Python generators that *actually execute* the
work they model and ``yield`` whenever simulated time must pass or a
synchronization must happen.

A process may yield:

* a ``float``/``int`` — advance simulated time by that many nanoseconds;
* an :class:`Event` — suspend until the event is triggered; the value the
  event was triggered with becomes the result of the ``yield``;
* another :class:`Process` — suspend until that process terminates (join);
  its return value becomes the result of the ``yield``.

Nested coroutines compose with plain ``yield from``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from .event_queue import EventQueue


class SimulationError(RuntimeError):
    """An error raised by the simulation kernel."""


class StuckReport:
    """What was still waiting when the simulation stopped making progress.

    Produced by :meth:`Simulator.stuck_report` from the registered
    waiter probes (subsystems describe their own outstanding waits:
    pending rendezvous handshakes, open collective episodes, DSM page
    and lock waits).  A hang is a diagnosable failure, never silence.
    """

    def __init__(self, at_ns: float, waits: List[str]):
        self.at_ns = at_ns
        self.waits = list(waits)

    def format(self) -> str:
        if not self.waits:
            return f"no outstanding waits at t={self.at_ns} ns"
        lines = [f"outstanding waits at t={self.at_ns} ns:"]
        lines.extend(f"  - {w}" for w in self.waits)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StuckReport {len(self.waits)} waits at {self.at_ns} ns>"


class StuckError(SimulationError):
    """The event queue drained (or the wall budget expired) with
    processes still blocked.  Carries the :class:`StuckReport`; the
    message keeps the historical ``application deadlock: ...`` prefix."""

    def __init__(self, message: str, report: Optional[StuckReport] = None):
        if report is not None and report.waits:
            message = f"{message}\n{report.format()}"
        super().__init__(message)
        self.report = report


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Events follow the usual discrete-event idiom: any number of processes
    (or plain callbacks) may wait; :meth:`trigger` wakes them all at the
    current simulation instant (or ``delay`` ns later), passing ``value``.
    """

    __slots__ = ("sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; fires immediately if triggered."""
        if self.triggered:
            self.sim.call_soon(lambda: callback(self.value))
        else:
            self._waiters.append(callback)

    def trigger(self, value: Any = None, delay: float = 0.0) -> None:
        """Fire the event, waking all waiters.

        Triggering twice is an error: events are one-shot by design so
        that lost-wakeup bugs fail loudly instead of silently re-running.
        """
        if self.triggered:
            raise SimulationError("event triggered twice")
        if delay:
            self.sim.schedule(delay, lambda: self.trigger(value))
            return
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.call_soon(lambda cb=cb: cb(value))


class Process:
    """A simulated activity: a generator driven by the kernel."""

    __slots__ = ("sim", "name", "_gen", "finished", "killed", "result",
                 "_done_event", "_waiting_handle")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        self.killed = False
        self.result: Any = None
        self._done_event = Event(sim)
        self._waiting_handle = None

    # -- introspection -----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    @property
    def done_event(self) -> Event:
        """Event triggered (with the return value) when the process ends."""
        return self._done_event

    # -- kernel interface ----------------------------------------------------
    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one hop and dispatch on what it yields."""
        if self.finished:
            return  # a stale wakeup racing a kill(); the process is gone
        self._waiting_handle = None
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_event.trigger(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._step(exc=SimulationError(
                    f"process {self.name} yielded negative delay {yielded}"))
                return
            self._waiting_handle = self.sim.schedule(
                float(yielded), lambda: self._step(None))
        elif isinstance(yielded, Event):
            yielded.wait(lambda v: self._step(v))
        elif isinstance(yielded, Process):
            yielded.done_event.wait(lambda v: self._step(v))
        else:
            self._step(exc=SimulationError(
                f"process {self.name} yielded unsupported {yielded!r}"))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Only meaningful while the process is alive; interrupting a finished
        process is a silent no-op (the interrupt lost the race).
        """
        if self.finished:
            return
        if self._waiting_handle is not None:
            self._waiting_handle.cancel()
            self._waiting_handle = None
        self.sim.call_soon(lambda: self._step(exc=Interrupt(cause)))

    def kill(self) -> None:
        """Terminate the process immediately (crash-stop semantics).

        The generator is closed (``finally`` blocks run, so resource
        state like ``app_blocked`` unwinds), the done event fires with
        ``None``, and any event wakeup still in flight is ignored.
        Killing a finished process is a no-op.
        """
        if self.finished:
            return
        self.finished = True
        self.killed = True
        if self._waiting_handle is not None:
            self._waiting_handle.cancel()
            self._waiting_handle = None
        self._gen.close()
        self._done_event.trigger(None)


class Simulator:
    """Owns the clock and the pending-event set."""

    __slots__ = ("_queue", "_now", "_running", "processes",
                 "events_processed", "queue_len_hwm", "waiter_probes")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.processes: List[Process] = []
        #: Events dispatched over the simulator's lifetime (all runs).
        self.events_processed = 0
        #: High-water mark of the pending-event set, sampled at dispatch.
        self.queue_len_hwm = 0
        #: Callables returning an iterable of outstanding-wait strings;
        #: subsystems register one each (see stuck_report()).
        self.waiter_probes: List[Callable[[], Any]] = []

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None], priority: int = 0):
        """Run ``callback`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, priority)

    def call_soon(self, callback: Callable[[], None]):
        """Run ``callback`` at the current instant, after pending events
        already scheduled for this instant."""
        return self._queue.push(self._now, callback, priority=1)

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers itself ``delay`` ns from now."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.trigger(value))
        return ev

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process at the current instant."""
        proc = Process(self, gen, name=name)
        self.processes.append(proc)
        self.call_soon(lambda: proc._step(None))
        return proc

    # -- stuck diagnosis ------------------------------------------------------
    def add_waiter_probe(self, probe: Callable[[], Any]) -> None:
        """Register a probe describing a subsystem's outstanding waits.

        ``probe()`` returns an iterable of strings, one per pending wait
        (empty when quiescent).  Probes run only when a stuck report is
        requested — never on the hot path."""
        self.waiter_probes.append(probe)

    def stuck_report(self) -> StuckReport:
        """Snapshot every registered probe into a :class:`StuckReport`."""
        waits: List[str] = []
        for probe in self.waiter_probes:
            waits.extend(str(w) for w in probe())
        return StuckReport(self._now, waits)

    # -- main loop --------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            wall_budget_s: Optional[float] = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final simulated time.

        ``wall_budget_s`` bounds *host* wall-clock time: the run stops
        (leaving the queue non-empty) once the budget expires — the
        quiescence watchdog's backstop against genuinely livelocked
        simulations.  The budgeted path is a separate loop so the
        default hot loop stays branch-free."""
        if wall_budget_s is not None:
            return self._run_budgeted(until, max_events, wall_budget_s)
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # The dispatch loop works on the heap directly (the EventQueue
        # fast-path contract: `_heap` is never rebound, entries are
        # ``(time, priority, seq, handle)``): one heappop per event, no
        # peek/pop double skim, hwm/fired accumulated in locals and
        # written back once.  Its visible behaviour — dispatch order,
        # events_processed, queue_len_hwm sampling, the `until` clamp
        # rules — is bit-identical to the historical peek/pop loop; the
        # engine test-suite pins this against a reference queue.
        heap = self._queue._heap
        heappop = heapq.heappop
        hwm = self.queue_len_hwm
        fired = 0
        try:
            while heap:
                entry = heap[0]
                if entry[3].cancelled:
                    heappop(heap)
                    if heap:
                        continue
                    break  # drained while skimming: no `until` clamp
                           # (matches the historical peek-raises path)
                t = entry[0]
                if until is not None and t > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                qlen = len(heap)
                if qlen > hwm:
                    hwm = qlen
                heappop(heap)
                handle = entry[3]
                callback = handle.callback
                handle.callback = None
                assert t >= self._now, "time went backwards"
                self._now = t
                callback()
                fired += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            self.events_processed += fired
            if hwm > self.queue_len_hwm:
                self.queue_len_hwm = hwm
        return self._now

    def _run_budgeted(self, until: Optional[float],
                      max_events: Optional[int],
                      wall_budget_s: float) -> float:
        """The wall-clock-bounded dispatch loop (see :meth:`run`).

        Dispatch order and accounting are identical to the default loop;
        the only addition is a ``perf_counter`` check every 1024 events.
        """
        import time as _time
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        deadline = _time.perf_counter() + wall_budget_s
        heap = self._queue._heap
        heappop = heapq.heappop
        hwm = self.queue_len_hwm
        fired = 0
        try:
            while heap:
                entry = heap[0]
                if entry[3].cancelled:
                    heappop(heap)
                    if heap:
                        continue
                    break
                t = entry[0]
                if until is not None and t > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                if not (fired & 1023) and _time.perf_counter() > deadline:
                    break
                qlen = len(heap)
                if qlen > hwm:
                    hwm = qlen
                heappop(heap)
                handle = entry[3]
                callback = handle.callback
                handle.callback = None
                assert t >= self._now, "time went backwards"
                self._now = t
                callback()
                fired += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            self.events_processed += fired
            if hwm > self.queue_len_hwm:
                self.queue_len_hwm = hwm
        return self._now

    def run_process(self, gen: Generator, name: str = "main",
                    max_events: Optional[int] = None) -> Any:
        """Spawn ``gen`` and run until it finishes; return its result.

        Raises :class:`SimulationError` on deadlock (queue drained while
        the process is still waiting).
        """
        proc = self.spawn(gen, name=name)
        self.run(max_events=max_events)
        if not proc.finished:
            raise SimulationError(
                f"deadlock: process {name!r} never finished "
                f"(no pending events at t={self._now} ns)")
        return proc.result
