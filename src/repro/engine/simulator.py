"""The discrete-event simulation kernel.

The kernel is a small cooperative-coroutine scheduler in the style of
execution-driven simulators (the paper used a modified Proteus):
simulated activities are Python generators that *actually execute* the
work they model and ``yield`` whenever simulated time must pass or a
synchronization must happen.

A process may yield:

* a ``float``/``int`` — advance simulated time by that many nanoseconds;
* an :class:`Event` — suspend until the event is triggered; the value the
  event was triggered with becomes the result of the ``yield``;
* another :class:`Process` — suspend until that process terminates (join);
  its return value becomes the result of the ``yield``.

Nested coroutines compose with plain ``yield from``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from .event_queue import EventQueue


class SimulationError(RuntimeError):
    """An error raised by the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Events follow the usual discrete-event idiom: any number of processes
    (or plain callbacks) may wait; :meth:`trigger` wakes them all at the
    current simulation instant (or ``delay`` ns later), passing ``value``.
    """

    __slots__ = ("sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; fires immediately if triggered."""
        if self.triggered:
            self.sim.call_soon(lambda: callback(self.value))
        else:
            self._waiters.append(callback)

    def trigger(self, value: Any = None, delay: float = 0.0) -> None:
        """Fire the event, waking all waiters.

        Triggering twice is an error: events are one-shot by design so
        that lost-wakeup bugs fail loudly instead of silently re-running.
        """
        if self.triggered:
            raise SimulationError("event triggered twice")
        if delay:
            self.sim.schedule(delay, lambda: self.trigger(value))
            return
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.call_soon(lambda cb=cb: cb(value))


class Process:
    """A simulated activity: a generator driven by the kernel."""

    __slots__ = ("sim", "name", "_gen", "finished", "result", "_done_event",
                 "_waiting_handle")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        self.result: Any = None
        self._done_event = Event(sim)
        self._waiting_handle = None

    # -- introspection -----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    @property
    def done_event(self) -> Event:
        """Event triggered (with the return value) when the process ends."""
        return self._done_event

    # -- kernel interface ----------------------------------------------------
    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one hop and dispatch on what it yields."""
        self._waiting_handle = None
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_event.trigger(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._step(exc=SimulationError(
                    f"process {self.name} yielded negative delay {yielded}"))
                return
            self._waiting_handle = self.sim.schedule(
                float(yielded), lambda: self._step(None))
        elif isinstance(yielded, Event):
            yielded.wait(lambda v: self._step(v))
        elif isinstance(yielded, Process):
            yielded.done_event.wait(lambda v: self._step(v))
        else:
            self._step(exc=SimulationError(
                f"process {self.name} yielded unsupported {yielded!r}"))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Only meaningful while the process is alive; interrupting a finished
        process is a silent no-op (the interrupt lost the race).
        """
        if self.finished:
            return
        if self._waiting_handle is not None:
            self._waiting_handle.cancel()
            self._waiting_handle = None
        self.sim.call_soon(lambda: self._step(exc=Interrupt(cause)))


class Simulator:
    """Owns the clock and the pending-event set."""

    __slots__ = ("_queue", "_now", "_running", "processes",
                 "events_processed", "queue_len_hwm")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.processes: List[Process] = []
        #: Events dispatched over the simulator's lifetime (all runs).
        self.events_processed = 0
        #: High-water mark of the pending-event set, sampled at dispatch.
        self.queue_len_hwm = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None], priority: int = 0):
        """Run ``callback`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, priority)

    def call_soon(self, callback: Callable[[], None]):
        """Run ``callback`` at the current instant, after pending events
        already scheduled for this instant."""
        return self._queue.push(self._now, callback, priority=1)

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers itself ``delay`` ns from now."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.trigger(value))
        return ev

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process at the current instant."""
        proc = Process(self, gen, name=name)
        self.processes.append(proc)
        self.call_soon(lambda: proc._step(None))
        return proc

    # -- main loop --------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final simulated time."""
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # The dispatch loop works on the heap directly (the EventQueue
        # fast-path contract: `_heap` is never rebound, entries are
        # ``(time, priority, seq, handle)``): one heappop per event, no
        # peek/pop double skim, hwm/fired accumulated in locals and
        # written back once.  Its visible behaviour — dispatch order,
        # events_processed, queue_len_hwm sampling, the `until` clamp
        # rules — is bit-identical to the historical peek/pop loop; the
        # engine test-suite pins this against a reference queue.
        heap = self._queue._heap
        heappop = heapq.heappop
        hwm = self.queue_len_hwm
        fired = 0
        try:
            while heap:
                entry = heap[0]
                if entry[3].cancelled:
                    heappop(heap)
                    if heap:
                        continue
                    break  # drained while skimming: no `until` clamp
                           # (matches the historical peek-raises path)
                t = entry[0]
                if until is not None and t > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                qlen = len(heap)
                if qlen > hwm:
                    hwm = qlen
                heappop(heap)
                handle = entry[3]
                callback = handle.callback
                handle.callback = None
                assert t >= self._now, "time went backwards"
                self._now = t
                callback()
                fired += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            self.events_processed += fired
            if hwm > self.queue_len_hwm:
                self.queue_len_hwm = hwm
        return self._now

    def run_process(self, gen: Generator, name: str = "main",
                    max_events: Optional[int] = None) -> Any:
        """Spawn ``gen`` and run until it finishes; return its result.

        Raises :class:`SimulationError` on deadlock (queue drained while
        the process is still waiting).
        """
        proc = self.spawn(gen, name=name)
        self.run(max_events=max_events)
        if not proc.finished:
            raise SimulationError(
                f"deadlock: process {name!r} never finished "
                f"(no pending events at t={self._now} ns)")
        return proc.result
