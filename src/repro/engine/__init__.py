"""Discrete-event, execution-driven simulation kernel (Proteus substitute).

Public surface:

* :class:`Simulator`, :class:`Process`, :class:`Event` — the coroutine
  kernel (see :mod:`repro.engine.simulator` for the yield protocol).
* :class:`Resource`, :class:`Mailbox`, :class:`Gate` — hardware-style
  serialization and signalling primitives.
* :class:`TimeAccount`, :class:`Category`, :class:`Counters`,
  :class:`RunStats` — the paper's Tables 2-4 time taxonomy.
* :class:`Tracer` — optional bounded tracing.
"""

from .event_queue import EmptyQueueError, EventHandle, EventQueue
from .resources import Gate, Mailbox, Resource
from .simulator import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StuckError,
    StuckReport,
)
from .stats import Category, Counters, RunStats, TimeAccount
from .trace import GLOBAL_TRACER, TraceRecord, Tracer

__all__ = [
    "Category",
    "Counters",
    "EmptyQueueError",
    "Event",
    "EventHandle",
    "EventQueue",
    "Gate",
    "GLOBAL_TRACER",
    "Interrupt",
    "Mailbox",
    "Process",
    "Resource",
    "RunStats",
    "SimulationError",
    "Simulator",
    "StuckError",
    "StuckReport",
    "TimeAccount",
    "TraceRecord",
    "Tracer",
]
