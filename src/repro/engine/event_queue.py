"""A deterministic pending-event set.

The queue orders callbacks by ``(time, priority, sequence)``.  The
sequence number makes ordering total and deterministic: two events
scheduled for the same instant fire in scheduling order, which keeps
simulation runs reproducible (a property the test-suite relies on).

This sits at the bottom of every simulated nanosecond, so the
implementation is tuned for the dispatch loop: ``__slots__`` on the
queue and handles, a plain integer sequence counter, and heap entries
that are built exactly once per event.  The simulator's main loop
reaches into ``_heap`` directly (same package, documented contract:
``_heap`` is never rebound, entries are ``(time, priority, seq,
handle)``) so the per-event cost is one ``heappop`` instead of the
``peek_time``/``pop`` pair with its double skim and exception
machinery.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Cancelled(Exception):
    """Raised internally when a cancelled entry is popped."""


class EmptyQueueError(IndexError):
    """The pending-event set is empty.

    Raised by :meth:`EventQueue.pop` and :meth:`EventQueue.peek_time`
    with a message naming the operation that hit the empty queue, so a
    traceback distinguishes "peeked past the end of the simulation" from
    "popped a queue a callback just drained".  Subclasses
    :class:`IndexError`, which is what callers historically caught (the
    simulator's main loop treats it as end-of-simulation).
    """


class EventHandle:
    """Handle returned by :meth:`EventQueue.push`; supports cancellation."""

    __slots__ = ("time", "cancelled", "callback")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True
        self.callback = None  # release references early


class EventQueue:
    """A binary-heap pending event set with stable, deterministic order."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at ``time``; lower ``priority`` runs first
        among simultaneous events.  Returns a cancellable handle."""
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        handle = EventHandle(time, callback)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, handle))
        return handle

    def peek_time(self) -> float:
        """Time of the earliest live event.

        Raises :class:`EmptyQueueError` when the queue is empty.
        Cancelled entries are skimmed off lazily.
        """
        self._skim("peek_time")
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Callable[[], None]]:
        """Remove and return ``(time, callback)`` of the earliest event.

        Raises :class:`EmptyQueueError` when the queue is empty (which
        can happen even after a successful :meth:`peek_time` if every
        remaining entry was cancelled in between).
        """
        self._skim("pop")
        time, _prio, _seq, handle = heapq.heappop(self._heap)
        callback = handle.callback
        assert callback is not None
        handle.callback = None
        return time, callback

    def _skim(self, operation: str) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            raise EmptyQueueError(
                f"EventQueue.{operation}() on an empty event queue")
