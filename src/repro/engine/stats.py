"""Per-processor time accounting and counters.

The paper's Tables 2-4 break execution time into *computation*, *synch
overhead* (cycles spent running protocol and messaging code on the host
CPU) and *synch delay* (cycles the CPU sits blocked on a lock, barrier or
remote page).  :class:`TimeAccount` reproduces exactly that taxonomy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping


#: Format version of the ``run_stats`` JSON document
#: (:meth:`RunStats.to_json`).  Bump on any incompatible change;
#: :meth:`RunStats.from_json` rejects every other version with
#: :class:`ValueError` so a persisted result can never be half-read.
RUN_STATS_SCHEMA_VERSION = 1


class Category(Enum):
    """Where a processor's time goes (the paper's Tables 2-4 rows)."""

    COMPUTATION = "computation"
    SYNCH_OVERHEAD = "synch_overhead"
    SYNCH_DELAY = "synch_delay"


class TimeAccount:
    """Accumulates nanoseconds per :class:`Category` for one processor."""

    __slots__ = ("ns",)

    def __init__(self) -> None:
        self.ns: Dict[Category, float] = {c: 0.0 for c in Category}

    def add(self, category: Category, ns: float) -> None:
        """Charge ``ns`` nanoseconds to ``category``."""
        if ns < 0:
            raise ValueError(f"negative time charge {ns} to {category}")
        self.ns[category] += ns

    @property
    def total_ns(self) -> float:
        """Sum over all categories."""
        return sum(self.ns.values())

    def cycles(self, category: Category, cpu_freq_hz: float) -> float:
        """Category time expressed in CPU cycles at ``cpu_freq_hz``."""
        return self.ns[category] * cpu_freq_hz / 1e9

    def merge(self, other: "TimeAccount") -> None:
        """Accumulate another account into this one."""
        for c in Category:
            self.ns[c] += other.ns[c]

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (ns) keyed by category value."""
        return {c.value: self.ns[c] for c in Category}


class Counters:
    """A bag of named event counters (message sends, cache hits, ...)."""

    def __init__(self) -> None:
        self._c: Dict[str, int] = {}

    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter ``name`` by ``by``."""
        self._c[name] = self._c.get(name, 0) + by

    def __getitem__(self, name: str) -> int:
        return self._c.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        """Counter value, ``default`` when never incremented."""
        return self._c.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._c)

    def ratio(self, hits: str, total: str) -> float:
        """``hits/total`` as a fraction; 0.0 when total is zero."""
        t = self._c.get(total, 0)
        return self._c.get(hits, 0) / t if t else 0.0


@dataclass
class RunStats:
    """Aggregated result of one simulated cluster run."""

    elapsed_ns: float = 0.0
    """Wall-clock of the simulated run (end-of-last-processor)."""

    per_processor: List[TimeAccount] = field(default_factory=list)
    """One :class:`TimeAccount` per processor."""

    counters: Counters = field(default_factory=Counters)
    """Cluster-wide event counters."""

    metrics: Dict[str, object] = field(default_factory=dict)
    """Flat snapshot of the cluster's :class:`~repro.obs.MetricsRegistry`
    at the end of the run (dotted name -> value); see
    docs/observability.md for the catalog."""

    metric_kinds: Dict[str, str] = field(default_factory=dict)
    """``{dotted name: kind}`` for :attr:`metrics` ("counter", "gauge"
    or "histogram").  Lets :func:`repro.obs.registry_from_snapshot`
    rebuild a mergeable registry from the snapshot — the parallel sweep
    executor uses it to fold worker metric trees into one sweep-wide
    tree with the right per-kind semantics.  Not part of
    :meth:`digest` (it is schema, not measurement)."""

    def category_total_ns(self, category: Category) -> float:
        """Sum of ``category`` across processors."""
        return sum(acc.ns[category] for acc in self.per_processor)

    @property
    def network_cache_hit_ratio(self) -> float:
        """The paper's figure-of-merit: transmit-path Message Cache hits
        over total message transmissions (Section 3)."""
        return self.counters.ratio("mc_transmit_hits", "mc_transmit_lookups")

    def digest(self) -> str:
        """Deterministic fingerprint of the run.

        Hashes elapsed time, every cluster counter, the full metric
        snapshot and the per-processor time accounts.  Two runs of the
        same workload under the same parameters — including the same
        :class:`~repro.faults.FaultPlan` seed — must produce identical
        digests; the chaos suite's determinism test relies on it.
        """
        doc = {
            "elapsed_ns": self.elapsed_ns,
            "counters": self.counters.as_dict(),
            "metrics": self.metrics,
            "accounts": [a.as_dict() for a in self.per_processor],
        }
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_json(self, indent: int = None) -> str:
        """The run's full result as a versioned JSON document.

        Canonical (sorted keys) and lossless for everything
        :meth:`digest` hashes, so ``RunStats.from_json(s.to_json())``
        has the *bit-identical* digest of ``s`` — the property the
        run-farm store's cache-hit guarantee rests on (Python floats
        round-trip exactly through JSON).
        """
        doc = {
            "kind": "run_stats",
            "schema_version": RUN_STATS_SCHEMA_VERSION,
            "elapsed_ns": self.elapsed_ns,
            "counters": self.counters.as_dict(),
            "metrics": self.metrics,
            "metric_kinds": self.metric_kinds,
            "accounts": [a.as_dict() for a in self.per_processor],
        }
        return json.dumps(doc, sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, doc) -> "RunStats":
        """Rebuild a :class:`RunStats` from :meth:`to_json` output
        (text or the parsed document).  Documents of any other kind or
        ``schema_version`` raise :class:`ValueError`."""
        if isinstance(doc, str):
            doc = json.loads(doc)
        if not isinstance(doc, dict) or doc.get("kind") != "run_stats":
            raise ValueError("not a run_stats document")
        version = doc.get("schema_version")
        if version != RUN_STATS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run_stats schema_version {version!r}; this "
                f"build reads version {RUN_STATS_SCHEMA_VERSION}")
        stats = cls(elapsed_ns=doc["elapsed_ns"],
                    metrics=dict(doc.get("metrics", {})),
                    metric_kinds=dict(doc.get("metric_kinds", {})))
        for name, value in doc.get("counters", {}).items():
            stats.counters.inc(name, value)
        for account_doc in doc.get("accounts", []):
            account = TimeAccount()
            for key, ns in account_doc.items():
                account.add(Category(key), ns)
            stats.per_processor.append(account)
        return stats

    def overhead_table(self, cpu_freq_hz: float) -> Dict[str, float]:
        """The Tables 2-4 breakdown, in CPU cycles (summed over procs)."""
        ghz = cpu_freq_hz / 1e9
        rows = {
            "synch_overhead": self.category_total_ns(Category.SYNCH_OVERHEAD) * ghz,
            "synch_delay": self.category_total_ns(Category.SYNCH_DELAY) * ghz,
            "computation": self.category_total_ns(Category.COMPUTATION) * ghz,
        }
        rows["total"] = sum(rows.values())
        return rows
