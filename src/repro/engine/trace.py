"""Optional, low-overhead event tracing.

Tracing is off by default; when enabled the tracer keeps a bounded ring
of ``(time_ns, source, kind, detail)`` tuples that tests and debugging
sessions can inspect.  The bounded ring keeps long runs from exhausting
memory when someone forgets to disable tracing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time_ns: float
    source: str
    kind: str
    detail: Any = None


class Tracer:
    """A bounded in-memory trace sink."""

    def __init__(self, capacity: int = 100_000, enabled: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self.enabled = enabled
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """The ring's bound (records retained before old ones drop)."""
        return self._ring.maxlen

    def emit(self, time_ns: float, source: str, kind: str, detail: Any = None) -> None:
        """Record one event (no-op unless enabled).

        Drop accounting: ``deque(maxlen=...)`` silently discards the
        *oldest* record when a full ring is appended to, so this method
        counts the eviction explicitly — ``dropped`` is the number of
        records that were emitted but are no longer in the ring.  The
        invariant ``emitted == len(tracer) + tracer.dropped`` holds
        until :meth:`clear`, which resets both.  Events emitted while
        the tracer is disabled are *not* recorded and *not* counted as
        dropped (they were never accepted).
        """
        if not self.enabled:
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(TraceRecord(time_ns, source, kind, detail))

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Snapshot of records, optionally filtered by kind/source."""
        out = []
        for r in self._ring:
            if kind is not None and r.kind != kind:
                continue
            if source is not None and r.source != source:
                continue
            out.append(r)
        return out

    def clear(self) -> None:
        """Drop all records (keeps enabled flag)."""
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


#: A process-global tracer used when a component isn't given its own.
GLOBAL_TRACER = Tracer(enabled=False)
