"""Synchronization and queuing primitives built on the kernel.

These model *simulated-hardware* serialization points: a memory bus that
one master holds at a time, a link that transmits one cell train at a
time, a mailbox between a NIC processor and the host.  They are FIFO and
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from .simulator import Event, Simulator


class Resource:
    """A FIFO mutual-exclusion resource (e.g. the memory bus).

    Usage inside a process::

        yield from bus.acquire()
        yield transfer_time_ns
        bus.release()
    """

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self._busy = False
        self._waiters: Deque[Event] = deque()
        self.total_hold_ns = 0.0
        self.acquisitions = 0
        self._acquired_at = 0.0

    @property
    def busy(self) -> bool:
        """Whether some process currently holds the resource."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for the resource."""
        return len(self._waiters)

    def acquire(self) -> Generator:
        """Coroutine: wait until the resource is free, then hold it."""
        if self._busy:
            ev = self.sim.event()
            self._waiters.append(ev)
            yield ev
        else:
            self._busy = True
        self.acquisitions += 1
        self._acquired_at = self.sim.now
        return None

    def release(self) -> None:
        """Release the resource, waking the next waiter FIFO."""
        if not self._busy:
            raise RuntimeError(f"release of free resource {self.name}")
        self.total_hold_ns += self.sim.now - self._acquired_at
        if self._waiters:
            # Hand over directly: the resource stays busy and the next
            # waiter proceeds; FIFO fairness.
            self._acquired_at = self.sim.now
            self._waiters.popleft().trigger()
        else:
            self._busy = False

    def held(self, duration_ns: float) -> Generator:
        """Coroutine: acquire, hold for ``duration_ns``, release."""
        yield from self.acquire()
        try:
            yield duration_ns
        finally:
            self.release()
        return None


class Mailbox:
    """An unbounded FIFO message channel between simulated agents.

    ``put`` never blocks; ``get`` suspends the caller until an item is
    available.  Items are delivered in insertion order, one per getter,
    FIFO on both sides.
    """

    def __init__(self, sim: Simulator, name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0
        self.got_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes one waiting getter if any."""
        self.put_count += 1
        if self._getters:
            self.got_count += 1
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``.

        This is the *polling* interface — the CNI host-side receive path
        polls its ADC queues with this instead of sleeping on an
        interrupt.
        """
        if self._items:
            self.got_count += 1
            return True, self._items.popleft()
        return False, None

    def get(self) -> Generator:
        """Coroutine: wait for and return the next item."""
        if self._items:
            self.got_count += 1
            item = self._items.popleft()
            return item
        ev = self.sim.event()
        self._getters.append(ev)
        item = yield ev
        return item

    def peek(self) -> Any:
        """Return (without removing) the head item, or None."""
        return self._items[0] if self._items else None


class Gate:
    """A re-armable broadcast condition ("something arrived").

    Unlike :class:`~repro.engine.simulator.Event`, a Gate can be notified
    many times; each notification wakes everything currently waiting.
    Used for interrupt lines and doorbells.
    """

    def __init__(self, sim: Simulator, name: str = "gate"):
        self.sim = sim
        self.name = name
        self._waiters: List[Event] = []
        self.notifications = 0

    def wait(self) -> Generator:
        """Coroutine: suspend until the next :meth:`notify`."""
        ev = self.sim.event()
        self._waiters.append(ev)
        value = yield ev
        return value

    def wait_upto(self, timeout_ns: float,
                  timeout_value: Any = None) -> Generator:
        """Coroutine: like :meth:`wait` but give up after ``timeout_ns``.

        On timeout the waiter is withdrawn from the gate (a later
        notification will not double-trigger it) and ``timeout_value``
        is returned — callers distinguish a wakeup from an expiry by a
        sentinel that a notify can never carry."""
        ev = self.sim.event()
        self._waiters.append(ev)
        timed_out = []

        def _expire():
            if ev.triggered:
                return
            try:
                self._waiters.remove(ev)
            except ValueError:
                return  # a same-instant notify already claimed the event
            timed_out.append(True)
            ev.trigger(timeout_value)

        handle = self.sim.schedule(timeout_ns, _expire)
        value = yield ev
        if not timed_out:
            handle.cancel()
        return value

    def notify(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.notifications += 1
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.trigger(value)
        return len(waiters)
