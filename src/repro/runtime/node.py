"""One simulated workstation: CPU + caches + bus + MMU + NIC + DSM engine.

The node is the "platform" surface both the NIC (:class:`HostHooks`) and
the DSM engine rely on; its methods encode the accounting taxonomy of
Tables 2-4 (computation / synch overhead / synch delay) and the stolen-
time model for asynchronous host work (DESIGN.md section 6).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

import numpy as np

from ..core import CNIInterface, ReceiveDescriptor, StandardInterface
from ..engine import Category, Counters, Gate, Simulator, TimeAccount
from ..memory import (
    BoardTLB,
    CacheHierarchy,
    HostMMU,
    MainMemory,
    MemoryBus,
    lines_in_range,
)
from ..network import Network, PacketKind
from ..obs import MetricsScope, SpanTracer, private_scope
from ..params import SimParams
from .errors import RuntimeTimeout

#: AIH object-code footprint of the DSM protocol (one consistency
#: protocol resident in handler memory, per Section 3's assumption).
DSM_HANDLER_CODE_BYTES = 48 * 1024

#: Sentinel a timed-out Gate.wait_upto returns (never a real descriptor).
_RECV_TIMEOUT = object()


class Node:
    """A workstation in the cluster."""

    def __init__(
        self,
        sim: Simulator,
        params: SimParams,
        node_id: int,
        network: Network,
        counters: Counters,
        interface: str = "cni",
        metrics: Optional[MetricsScope] = None,
        spans: Optional[SpanTracer] = None,
    ):
        if interface not in ("cni", "standard"):
            raise ValueError(f"unknown interface type {interface!r}")
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.counters = counters
        self.interface = interface
        self.metrics = metrics if metrics is not None else private_scope()
        self.spans = spans

        self.account = TimeAccount()
        self.cache = CacheHierarchy(
            l1_size=params.l1_size_bytes,
            l2_size=params.l2_size_bytes,
            line_bytes=params.cache_line_bytes,
            l1_cycles=params.l1_access_cycles,
            l2_cycles=params.l2_access_cycles,
            memory_cycles=params.memory_latency_cycles,
        )
        self.bus = MemoryBus(sim, params, node_id,
                             metrics=self.metrics.scope("bus"), spans=spans)
        self.memory = MainMemory(params, node_id)
        self.mmu = HostMMU(params.page_size_bytes)
        self.tlb = BoardTLB(self.mmu)

        if interface == "cni":
            self.nic = CNIInterface(
                sim, params, node_id, network, self.bus, counters, self,
                self.tlb, metrics=self.metrics.scope("nic")
            )
        else:
            self.nic = StandardInterface(
                sim, params, node_id, network, self.bus, counters, self,
                metrics=self.metrics.scope("nic")
            )

        #: Pending asynchronous host work, folded into the next compute.
        self._stolen_ns = 0.0
        #: Whether the application thread is currently blocked on a
        #: remote operation (stolen host work then overlaps the wait and
        #: must not additionally stretch later computation).
        self.app_blocked = False
        #: Messaging inbox (DATA packets) + its wake gate.
        self.app_inbox: Deque[ReceiveDescriptor] = deque()
        self.app_rx_gate = Gate(sim, f"node{node_id}-rx")
        #: Private-page bump allocator for registered message buffers.
        self._next_private_page = 1
        #: Set by Cluster once the DSM channel is open (CNI) / engine built.
        self.dsm_channel_id = 0
        self.engine = None  # set by Cluster.attach_engine
        self.coll = None  # collective engine, set by Cluster
        self.rt = None  # messaging engine, set by Cluster

    def dispatch_protocol_packet(self, packet, on_board: bool):
        """The node's protocol sink: route an inbound protocol packet to
        the engine that owns its kind (COLLECTIVE → collective engine,
        RUNTIME → messaging engine, everything else → the DSM engine).
        Returns the handler generator; *where* it runs (NI processor vs
        host CPU) is the caller's ``on_board`` platform fact."""
        if packet.kind is PacketKind.COLLECTIVE:
            return self.coll.handle_packet(packet, on_board)
        if packet.kind is PacketKind.RUNTIME:
            return self.rt.handle_packet(packet, on_board)
        return self.engine.handle_packet(packet, on_board)

    # ------------------------------------------------------------ accounting --
    def account_compute(self, ns: float) -> None:
        """Application computation time."""
        self.account.add(Category.COMPUTATION, ns)

    def account_overhead(self, ns: float) -> None:
        """Host time actively spent on synchronization/messaging work."""
        self.account.add(Category.SYNCH_OVERHEAD, ns)

    def account_delay(self, ns: float) -> None:
        """Time the application sat blocked on a remote operation."""
        self.account.add(Category.SYNCH_DELAY, ns)

    def steal_host_time(self, ns: float, category: Category) -> None:
        """Asynchronous host-CPU work (interrupts, kernel dispatch, host
        protocol handlers).  Accounted immediately; if the application is
        computing, its next burst stretches by the same amount (the CPU
        was serving the network instead of the application).  Work that
        lands while the application is *blocked* overlaps the wait and
        steals nothing extra."""
        self.account.add(category, ns)
        if not self.app_blocked:
            self._stolen_ns += ns

    def take_stolen_ns(self) -> float:
        """Drain the pending inflation (used by the compute primitive)."""
        ns, self._stolen_ns = self._stolen_ns, 0.0
        return ns

    # -------------------------------------------------------------- memory ops --
    def page_lines(self, page: int) -> np.ndarray:
        """Global cache-line numbers of one DSM page."""
        vaddr = self.page_vaddr(page)
        return lines_in_range(vaddr, self.params.page_size_bytes,
                              self.params.cache_line_bytes)

    def page_vaddr(self, page: int) -> int:
        """Virtual address of DSM page ``page`` (SPMD: same on all nodes)."""
        return self.engine.segment.page_vaddr(page)

    def flush_page(self, page: int) -> Generator:
        """Write the page's dirty cache lines back to memory.

        Run by the application thread (release path).  The write traffic
        is shown to the bus snoopers, which is how the Message Cache's
        copy stays consistent (Section 2.2).
        """
        flushed = self.cache.flush_lines(self.page_lines(page))
        if flushed.size:
            words = flushed.size * (
                self.params.cache_line_bytes // self.params.bus_word_bytes
            )
            cost = self.params.bus_cycles_ns(
                self.params.bus_acquisition_cycles
                + self.params.bus_cycles_per_word * words
            )
            self.memory.record_writebacks(int(flushed.size))
            self.bus.cpu_write_traffic(flushed)
        else:
            cost = 0.0
        yield cost
        self.account_overhead(cost)
        return None

    def flush_buffer(self, vaddr: int, nbytes: int) -> Generator:
        """Flush an arbitrary registered buffer before transmitting it
        (the message-passing send path's consistency obligation)."""
        lines = lines_in_range(vaddr, nbytes, self.params.cache_line_bytes)
        flushed = self.cache.flush_lines(lines)
        if flushed.size:
            words = flushed.size * (
                self.params.cache_line_bytes // self.params.bus_word_bytes
            )
            cost = self.params.bus_cycles_ns(
                self.params.bus_acquisition_cycles
                + self.params.bus_cycles_per_word * words
            )
            self.memory.record_writebacks(int(flushed.size))
            self.bus.cpu_write_traffic(flushed)
        else:
            cost = 0.0
        yield cost
        self.account_overhead(cost)
        return None

    def drop_page_from_cpu_cache(self, page: int) -> None:
        """Invalidate a page's lines in the CPU caches (fresh remote data
        just landed in memory underneath them)."""
        self.cache.invalidate_lines(self.page_lines(page))

    def mc_invalidate(self, page: int) -> None:
        """Drop a DSM page's buffer from the board's Message Cache (its
        contents just went stale cluster-wide)."""
        mc = getattr(self.nic, "message_cache", None)
        if mc is not None:
            vpage = self.page_vaddr(page) // self.params.page_size_bytes
            mc.invalidate(vpage)

    def drop_page_from_caches(self, page: int) -> None:
        """DSM invalidation: CPU caches and the board's Message Cache."""
        self.drop_page_from_cpu_cache(page)
        self.mc_invalidate(page)

    def mc_receive_insert(self, page: int) -> None:
        """Receive caching (Section 2.2): bind an arriving page into the
        Message Cache.  No-op on the standard interface or when receive
        caching is ablated away."""
        if not (self.params.use_message_cache and self.params.receive_caching):
            return
        mc = getattr(self.nic, "message_cache", None)
        if mc is not None:
            vpage = self.page_vaddr(page) // self.params.page_size_bytes
            mc.insert(vpage)

    def map_dsm_pages(self, npages: int) -> None:
        """Connection setup: map the shared segment and mirror it on the
        board (TLB/RTLB), so snooping and virtually-addressed DMA work."""
        for p in range(npages):
            vaddr = self.engine.segment.page_vaddr(p)
            vpage = vaddr // self.params.page_size_bytes
            self.mmu.map_page(vpage)
            self.tlb.install(vpage)

    def alloc_private_buffer(self, nbytes: int) -> int:
        """Allocate page-aligned private memory for a message buffer and
        register it with the MMU + board TLB."""
        pages = max(1, -(-nbytes // self.params.page_size_bytes))
        vpage = self._next_private_page
        self._next_private_page += pages
        for p in range(vpage, vpage + pages):
            self.mmu.map_page(p)
            self.tlb.install(p)
        return vpage * self.params.page_size_bytes

    def cache_write_private(self, vaddr: int, nbytes: int) -> Generator:
        """Application writes to private memory (message buffers): cache
        simulation without DSM involvement."""
        lines = lines_in_range(vaddr, nbytes, self.params.cache_line_bytes)
        cost = self.cache.access(lines, is_write=True)
        if cost.writeback_lines.size:
            self.memory.record_writebacks(int(cost.writeback_lines.size))
            self.bus.cpu_write_traffic(cost.writeback_lines)
        self.memory.record_fills(cost.memory_accesses)
        ns = self.params.cpu_cycles_ns(cost.cpu_cycles)
        yield ns
        self.account_compute(ns)
        return None

    # ---------------------------------------------------------------- HostHooks --
    def deliver_to_app(self, desc: ReceiveDescriptor, via_interrupt: bool) -> None:
        """NIC hook: an application DATA packet is ready for the host."""
        self.app_inbox.append(desc)
        self.app_rx_gate.notify(desc)

    # ------------------------------------------------------------- receive wait --
    def wait_for_message(self, deadline_ns: Optional[float] = None) -> Generator:
        """Block until a DATA message is available; returns its descriptor.

        The noticing cost differs by interface (polling vs interrupt) and
        is charged as synch overhead; the blocked stretch is synch delay.
        ``deadline_ns`` bounds the wait (None takes
        ``SimParams.op_deadline_ns``; 0 waits forever); expiry raises
        :class:`~repro.runtime.RuntimeTimeout` instead of hanging.
        """
        deadline = (self.params.op_deadline_ns if deadline_ns is None
                    else deadline_ns)
        t0 = self.sim.now
        span = (self.spans.begin(f"node{self.node_id}", "rx_wait")
                if self.spans is not None else None)
        self.app_blocked = True
        try:
            while not self.app_inbox:
                if deadline > 0:
                    remaining = deadline - (self.sim.now - t0)
                    if remaining > 0:
                        got = yield from self.app_rx_gate.wait_upto(
                            remaining, _RECV_TIMEOUT)
                    else:
                        got = _RECV_TIMEOUT
                    if got is _RECV_TIMEOUT and not self.app_inbox:
                        raise RuntimeTimeout("recv", None, deadline)
                else:
                    yield from self.app_rx_gate.wait()
        finally:
            self.app_blocked = False
            if span is not None:
                self.spans.end(span)
            self.account_delay(self.sim.now - t0)
        wake_ns = self.nic.rx_wake_overhead_ns()
        yield wake_ns
        self.account_overhead(wake_ns)
        return self.app_inbox.popleft()
