"""Cluster runtime: nodes, application contexts, messaging.

Typical use::

    from repro.runtime import Cluster
    from repro.params import SimParams

    cluster = Cluster(SimParams().replace(num_processors=8), interface="cni")
    grid = cluster.alloc_shared((256, 256))

    def kernel(ctx):
        yield from ctx.compute(1000)
        yield from ctx.barrier()

    stats = cluster.run(kernel)
"""

from .cluster import AppKernel, Cluster
from .context import Context
from .errors import MessagingError, PeerDead, RuntimeTimeout
from .messaging import MessagingService
from .node import DSM_HANDLER_CODE_BYTES, Node
from .protocol import RT_HANDLER_CODE_BYTES, MessagingEngine, RtMsgType

__all__ = [
    "AppKernel",
    "Cluster",
    "Context",
    "DSM_HANDLER_CODE_BYTES",
    "MessagingEngine",
    "MessagingError",
    "MessagingService",
    "Node",
    "PeerDead",
    "RT_HANDLER_CODE_BYTES",
    "RtMsgType",
    "RuntimeTimeout",
]
