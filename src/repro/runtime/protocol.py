"""The messaging runtime's protocol engine: rendezvous + RDMA handlers.

:class:`MessagingEngine` is the board/host-side half of the MPI-style
messaging layer (docs/runtime.md); :class:`MessagingService` in
:mod:`repro.runtime.messaging` is the application-side half.  The split
mirrors the DSM and collective subsystems: the service runs in the
application thread and issues sends; the engine owns the inbound
RUNTIME-packet handlers, which on a CNI with AIH support execute on the
NI processor (PATHFINDER classifies ``PacketKind.RUNTIME`` into the
handler keyed by :class:`RtMsgType`) and on the standard interface run
on the host behind an interrupt.

Two protocol families live here:

* **Rendezvous** (large sends, above ``SimParams.rendezvous_threshold``):
  the sender's RTS is answered by an *early CTS* — the engine allocates
  a landing buffer and clears the sender to stream immediately, without
  waiting for a posted receive.  Running the responder as an AIH is what
  makes this safe: the library, not the application, owns the landing
  buffer, so an all-to-all of rendezvous sends cannot deadlock on
  receive order.  The last data chunk hands the assembled message to the
  ordinary receive inbox, so ``recv()`` is protocol-agnostic.
* **RDMA-style one-sided ops**: ``remote_read``/``remote_write`` address
  buffers the target application *exposed* (registered windows).  A read
  reply transmits straight from the target's memory with the cacheable
  bit set, so repeated reads of the same window are Message-Cache
  transmit hits on a CNI — the remote-cache effect the RDCA work
  measures — while the DMA-bypass-free standard interface re-DMAs every
  time.

Retransmission rides the reliable transport exactly as DSM and
collective traffic does; a lost cell under a fault plan is retried by
the NIC with no engine involvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..engine import Category, SimulationError
from ..network import Packet, PacketKind
from ..params import SimParams
from ..dsm.messages import MSG_BASE_BYTES
from .errors import PeerDead, RuntimeTimeout

__all__ = [
    "RT_HANDLER_CODE_BYTES",
    "RtMsgType",
    "RtsMsg",
    "CtsMsg",
    "RdvData",
    "ReadReq",
    "ReadReply",
    "WriteReq",
    "WriteAck",
    "MessagingEngine",
]

#: AIH object-code footprint of the messaging runtime's handlers
#: (rendezvous responder + RDMA window logic), resident alongside the
#: DSM protocol's 48 KB and the collectives' 16 KB.
RT_HANDLER_CODE_BYTES = 28 * 1024

#: Wake value of a deadline expiry; a protocol completion can never
#: carry it, so the woken waiter knows its timer — not a reply — fired.
_TIMEOUT = object()


class RtMsgType(IntEnum):
    """Messaging-runtime protocol messages; the value doubles as the
    PATHFINDER handler key.  Disjoint from the DSM keys (0x10-0x41) and
    the collective keys (0x50-0x51): the runtime owns 0x60+."""

    RTS = 0x60             # sender -> receiver: request to send (nbytes)
    CTS = 0x61             # receiver -> sender: landing buffer ready
    RDV_DATA = 0x62        # sender -> receiver: one rendezvous chunk
    RDMA_READ_REQ = 0x63   # requester -> target: read a window range
    RDMA_READ_REPLY = 0x64 # target -> requester: the window data
    RDMA_WRITE = 0x65      # requester -> target: data into a window
    RDMA_WRITE_ACK = 0x66  # target -> requester: placement confirmed


@dataclass
class RtsMsg:
    """Request to send: announces a rendezvous message of ``nbytes``."""

    op_id: int
    src: int
    nbytes: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class CtsMsg:
    """Clear to send: the receiver's landing buffer is allocated."""

    op_id: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class RdvData:
    """One streamed rendezvous chunk (the packet's ``payload_bytes``
    carries the chunk length; this rides as the payload object)."""

    op_id: int
    offset: int
    last: bool
    app_payload: Any = None  # the application object, on the last chunk


@dataclass
class ReadReq:
    """One-sided read request against a registered remote window."""

    op_id: int
    src: int
    raddr: int
    nbytes: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class ReadReply:
    """The window data coming back (``payload_bytes`` = read size)."""

    op_id: int


@dataclass
class WriteReq:
    """One-sided write: the data chunk rides in this packet
    (``payload_bytes`` = write size)."""

    op_id: int
    src: int
    raddr: int
    nbytes: int


@dataclass
class WriteAck:
    """Write placement confirmed at the target."""

    op_id: int

    @property
    def wire_bytes(self) -> int:
        return MSG_BASE_BYTES


@dataclass
class _Waiter:
    """A blocked application thread's rendezvous (same shape as the
    collective engine's)."""

    event: Any
    outstanding: int = 1


@dataclass
class _RdvIn:
    """Receiver-side state of one in-flight rendezvous message."""

    src: int
    base_vaddr: int
    nbytes: int
    received: int = 0


class MessagingEngine:
    """Per-node protocol engine for ``PacketKind.RUNTIME`` packets."""

    def __init__(self, node, nprocs: int):
        self.node = node
        self.sim = node.sim
        self.params: SimParams = node.params
        self.me: int = node.node_id
        self.nprocs = nprocs
        #: Handlers execute on the NI processor when the platform has
        #: AIH support; otherwise on the host CPU (standard interface,
        #: or a CNI with AIH ablated away).
        self.resident = node.interface == "cni" and node.params.use_aih

        #: Registered one-sided windows, (vaddr, nbytes).
        self.windows: List[Tuple[int, int]] = []
        #: Requester-side op-id sequence (locally unique suffices: every
        #: reply routes back to the node that minted the id).
        self._next_op = 0
        #: Blocked application threads, keyed ("cts"|"read"|"wack", op_id).
        self._waiters: Dict[Tuple[str, int], _Waiter] = {}
        #: Early completions (a reply that lands before the app blocks).
        self._pending: Dict[Tuple[str, int], Any] = {}
        #: Waits that expired; their late replies must be dropped, not
        #: parked in _pending for a future op to collide with.
        self._abandoned: Set[Tuple[str, int]] = set()
        #: Inbound rendezvous streams, keyed (src_node, op_id).
        self._rdv_in: Dict[Tuple[int, int], _RdvIn] = {}
        #: Eager-retry rounds already granted, keyed by packet_id.
        self._retry_rounds: Dict[int, int] = {}

        scope = node.metrics.scope("runtime")
        self._m_eager = scope.counter("eager_sends")
        self._m_rdv = scope.counter("rendezvous_sends")
        self._m_reads = scope.counter("remote_reads")
        self._m_writes = scope.counter("remote_writes")
        self._m_bytes = scope.counter("bytes_sent")
        self._m_rdma_bytes = scope.counter("rdma_bytes")
        self._m_rts = scope.counter("rts_sent")
        self._m_cts = scope.counter("cts_sent")
        self._m_chunks = scope.counter("rdv_chunks")
        self._m_nic_steps = scope.counter("nic_steps")
        self._m_host_steps = scope.counter("host_steps")
        self._m_op_timeouts = scope.counter("op_timeouts")
        self._m_peer_dead = scope.counter("peer_dead")
        self._m_eager_retries = scope.counter("eager_retries")
        self._m_eager_ns = scope.histogram("eager_ns")
        self._m_rdv_ns = scope.histogram("rendezvous_ns")
        self._m_read_ns = scope.histogram("remote_read_ns")
        self._m_write_ns = scope.histogram("remote_write_ns")
        self._m_rtt_ns = scope.histogram("msg_rtt_ns")

    # ------------------------------------------------------------ app-side --
    def new_op_id(self) -> int:
        op = self._next_op
        self._next_op += 1
        return op

    def register_window(self, vaddr: int, nbytes: int) -> None:
        """Expose ``[vaddr, vaddr+nbytes)`` to one-sided remote access."""
        if nbytes <= 0:
            raise ValueError("empty window")
        self.windows.append((vaddr, nbytes))

    def observe_rtt(self, ns: float) -> None:
        """Application-reported round-trip sample (pingpong-style)."""
        self._m_rtt_ns.observe(ns)

    # ------------------------------------------------------ packet handler --
    def handle_packet(self, packet: Packet, on_board: bool) -> Generator:
        """Inbound RUNTIME packet (the engine's protocol sink)."""
        yield self._charge_rx(on_board)
        mt = RtMsgType(packet.handler_key)
        if mt is RtMsgType.RTS:
            yield from self._on_rts(packet)
        elif mt is RtMsgType.CTS:
            self._complete("cts", packet.payload.op_id, None)
        elif mt is RtMsgType.RDV_DATA:
            yield from self._on_rdv_data(packet, on_board)
        elif mt is RtMsgType.RDMA_READ_REQ:
            yield from self._on_read_req(packet)
        elif mt is RtMsgType.RDMA_READ_REPLY:
            yield from self._on_read_reply(packet)
        elif mt is RtMsgType.RDMA_WRITE:
            yield from self._on_write(packet)
        elif mt is RtMsgType.RDMA_WRITE_ACK:
            self._complete("wack", packet.payload.op_id, None)
        else:  # pragma: no cover - RtMsgType() above already raises
            raise SimulationError(f"unhandled runtime message {mt!r}")
        return None

    def _on_rts(self, packet: Packet) -> Generator:
        """Early-CTS responder: allocate the landing buffer and clear the
        sender immediately — no posted receive required."""
        rts: RtsMsg = packet.payload
        key = (rts.src, rts.op_id)
        if key in self._rdv_in:
            raise SimulationError(
                f"node {self.me}: duplicate rendezvous stream {key}")
        base = self.node.alloc_private_buffer(rts.nbytes)
        self._rdv_in[key] = _RdvIn(src=rts.src, base_vaddr=base,
                                   nbytes=rts.nbytes)
        self._m_cts.inc()
        self._board_send(rts.src, RtMsgType.CTS, CtsMsg(rts.op_id),
                         MSG_BASE_BYTES)
        return None
        yield  # pragma: no cover - keeps this a generator

    def _on_rdv_data(self, packet: Packet, on_board: bool) -> Generator:
        msg: RdvData = packet.payload
        key = (packet.src_node, msg.op_id)
        st = self._rdv_in.get(key)
        if st is None:
            raise SimulationError(
                f"node {self.me}: rendezvous data for unknown stream {key}")
        from ..core.cni_nic import PIO_THRESHOLD_BYTES

        if packet.payload_bytes > PIO_THRESHOLD_BYTES:
            yield from self.node.bus.dma(packet.payload_bytes)
        self._mc_receive_insert(st.base_vaddr + msg.offset,
                                packet.payload_bytes)
        st.received += packet.payload_bytes
        if not msg.last:
            return None
        if st.received != st.nbytes:
            raise SimulationError(
                f"node {self.me}: rendezvous stream {key} closed at "
                f"{st.received}/{st.nbytes} bytes")
        del self._rdv_in[key]
        from ..core import ReceiveDescriptor

        self.node.deliver_to_app(
            ReceiveDescriptor(src_node=st.src, vaddr=st.base_vaddr,
                              length=st.nbytes, handler_key=0,
                              payload=msg.app_payload),
            via_interrupt=not on_board)
        return None

    def _on_read_req(self, packet: Packet) -> Generator:
        req: ReadReq = packet.payload
        self._check_window(req.raddr, req.nbytes, "remote_read",
                           packet.src_node)
        # Reply straight out of the target's window: src_vaddr drives the
        # transmit path's Message-Cache lookup, cacheable enters it — the
        # first read DMAs and caches, repeats transmit from the board.
        self.node.nic.board_send(
            Packet(
                kind=PacketKind.RUNTIME,
                src_node=self.me,
                dst_node=packet.src_node,
                channel_id=self.node.dsm_channel_id,
                handler_key=int(RtMsgType.RDMA_READ_REPLY),
                payload_bytes=req.nbytes,
                payload=ReadReply(req.op_id),
                cacheable=True,
                src_vaddr=req.raddr,
            )
        )
        self._m_bytes.inc(req.nbytes)
        return None
        yield  # pragma: no cover - keeps this a generator

    def _on_read_reply(self, packet: Packet) -> Generator:
        from ..core.cni_nic import PIO_THRESHOLD_BYTES

        if packet.payload_bytes > PIO_THRESHOLD_BYTES:
            yield from self.node.bus.dma(packet.payload_bytes)
        self._complete("read", packet.payload.op_id, packet.payload_bytes)
        return None

    def _on_write(self, packet: Packet) -> Generator:
        req: WriteReq = packet.payload
        self._check_window(req.raddr, req.nbytes, "remote_write", req.src)
        from ..core.cni_nic import PIO_THRESHOLD_BYTES

        if packet.payload_bytes > PIO_THRESHOLD_BYTES:
            yield from self.node.bus.dma(packet.payload_bytes)
        self._mc_receive_insert(req.raddr, req.nbytes)
        self._board_send(req.src, RtMsgType.RDMA_WRITE_ACK,
                         WriteAck(req.op_id), MSG_BASE_BYTES)
        return None

    # ------------------------------------------------------------- helpers --
    def _check_window(self, raddr: int, nbytes: int, op: str,
                      requester: int) -> None:
        for base, size in self.windows:
            if base <= raddr and raddr + nbytes <= base + size:
                return
        raise SimulationError(
            f"node {self.me}: {op} from node {requester} outside any "
            f"registered window ({raddr:#x}+{nbytes}; "
            f"{len(self.windows)} windows exposed)")

    def _mc_receive_insert(self, vaddr: int, nbytes: int) -> None:
        """Receive caching for runtime data landing in private buffers
        (mirrors Node.mc_receive_insert, which is DSM-page-addressed)."""
        if not (self.params.use_message_cache and self.params.receive_caching):
            return
        mc = getattr(self.node.nic, "message_cache", None)
        if mc is None or nbytes <= 0:
            return
        page = self.params.page_size_bytes
        for vpage in range(vaddr // page, (vaddr + nbytes - 1) // page + 1):
            mc.insert(vpage)

    def _board_send(self, dst: int, mt: RtMsgType, msg,
                    wire_bytes: int) -> None:
        self.node.nic.board_send(
            Packet(
                kind=PacketKind.RUNTIME,
                src_node=self.me,
                dst_node=dst,
                channel_id=self.node.dsm_channel_id,
                handler_key=int(mt),
                payload_bytes=wire_bytes,
                payload=msg,
            )
        )
        self._m_bytes.inc(wire_bytes)

    def _charge_rx(self, on_board: bool) -> float:
        """Cost of one inbound protocol step on this node's platform."""
        p = self.params
        if on_board and self.resident:
            self._m_nic_steps.inc()
            return p.ni_cycles_ns(p.ni_aih_protocol_cycles)
        self._m_host_steps.inc()
        ns = p.cpu_cycles_ns(p.host_protocol_cycles)
        if on_board:
            # CNI without AIH support: the board handler is a trampoline
            # that bounces the packet to the host.
            ns += p.interrupt_latency_ns + p.cpu_cycles_ns(
                p.kernel_trap_cycles)
        self.node.steal_host_time(ns, Category.SYNCH_OVERHEAD)
        return ns

    # ------------------------------------------------------ wait machinery --
    def register_wait(self, kind: str, op_id: int) -> _Waiter:
        key = (kind, op_id)
        if key in self._waiters:
            raise SimulationError(
                f"node {self.me}: duplicate runtime wait on {key}")
        w = _Waiter(event=self.sim.event())
        self._waiters[key] = w
        return w

    def wait(self, kind: str, op_id: int, w: _Waiter,
             deadline_ns: Optional[float] = None,
             peer: Optional[int] = None) -> Generator:
        """Block the app thread until the matching reply; charge delay +
        wake overhead.  Handles the reply-before-block race.

        ``deadline_ns`` bounds the block (None takes
        ``SimParams.op_deadline_ns``; 0 waits forever — the seed
        behaviour).  On expiry the wait raises a typed
        :class:`~repro.runtime.RuntimeTimeout`, sharpened to
        :class:`~repro.runtime.PeerDead` when the failure detector
        already suspects ``peer``; the late reply, if it ever arrives,
        is dropped."""
        key = (kind, op_id)
        if key in self._pending:
            del self._waiters[key]
            return self._pending.pop(key)
        deadline = (self.params.op_deadline_ns if deadline_ns is None
                    else deadline_ns)
        timer = None
        if deadline > 0:
            timer = self.sim.schedule(deadline, lambda: self._expire(key))
        t0 = self.sim.now
        self.node.app_blocked = True
        try:
            value = yield w.event
        finally:
            self.node.app_blocked = False
        if timer is not None and value is not _TIMEOUT:
            timer.cancel()
        self.node.account_delay(self.sim.now - t0)
        wake_ns = self.node.nic.rx_wake_overhead_ns()
        yield wake_ns
        self.node.account_overhead(wake_ns)
        if value is _TIMEOUT:
            self._m_op_timeouts.inc()
            if peer is not None and self.node.nic.detector.is_suspected(peer):
                self._m_peer_dead.inc()
                raise PeerDead(kind, peer, deadline)
            raise RuntimeTimeout(kind, peer, deadline)
        return value

    def _expire(self, key: Tuple[str, int]) -> None:
        """Deadline timer: abandon the wait and wake the blocked thread
        with the timeout sentinel (no-op if the reply won the race)."""
        w = self._waiters.pop(key, None)
        if w is None:
            return
        self._abandoned.add(key)
        w.event.trigger(_TIMEOUT)

    def _complete(self, kind: str, op_id: int, value) -> None:
        key = (kind, op_id)
        if key in self._abandoned:
            # The waiter gave up at its deadline; drop the late reply.
            self._abandoned.discard(key)
            return
        w = self._waiters.get(key)
        if w is None:
            self._pending[key] = value
            return
        del self._waiters[key]
        w.event.trigger(value)

    # ------------------------------------------------- failure integration --
    def on_delivery_failed(self, packet: Packet, attempts: int) -> bool:
        """Reliable-transport failure sink: bounded eager-send recovery.

        Grants up to ``SimParams.runtime_send_retries`` extra retry
        rounds to an eager DATA packet whose transport budget ran dry,
        re-enqueuing the *same* packet object after a backoff (same
        rel_seq, so the receiver's duplicate suppression stays correct
        and a CNI retransmit still hits the Message Cache).  Returns
        False — let :class:`~repro.core.DeliveryFailed` surface — for
        anything else."""
        budget = self.params.runtime_send_retries
        if budget <= 0 or packet.kind is not PacketKind.DATA:
            return False
        rounds = self._retry_rounds.get(packet.packet_id, 0)
        if rounds >= budget:
            return False
        self._retry_rounds[packet.packet_id] = rounds + 1
        self._m_eager_retries.inc()
        backoff = self.params.reliab_timeout_ns * (rounds + 1)
        self.sim.schedule(backoff,
                          lambda: self.node.nic.tx_queue.put(packet))
        return True

    def outstanding_waits(self) -> List[str]:
        """Stuck-report probe: every wait this engine still holds open."""
        waits = [
            f"node{self.me}: runtime {kind} wait (op {op_id})"
            for kind, op_id in sorted(self._waiters)
        ]
        waits.extend(
            f"node{self.me}: inbound rendezvous from node{src} "
            f"(op {op_id}, {st.received}/{st.nbytes} bytes)"
            for (src, op_id), st in sorted(self._rdv_in.items())
        )
        return waits
