"""User-level message passing over the network interface.

The paper's third design goal is supporting *both* programming paradigms;
the DSM applications drive the evaluation, but Application Device
Channels are fundamentally a message-passing primitive (and the Figure 14
microbenchmark measures exactly this path).  :class:`MessagingService`
packages the buffer-management protocol an application needs: register
send/receive buffers, keep the free queue stocked (CNI), send, receive.

With ``reliable_transport`` on, sends are tracked by the NIC-resident
transport (docs/reliability.md): ``send`` still returns when the board
has consumed the descriptor, while acknowledgement and retransmission
proceed on the board; :meth:`MessagingService.unacked_sends` exposes
how many of this node's packets are still in flight.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..core import ReceiveDescriptor
from .context import Context
from .node import Node


class MessagingService:
    """Message-passing endpoint for one node's application."""

    def __init__(self, ctx: Context, n_recv_buffers: int = 16,
                 buffer_bytes: int = 8192):
        self.ctx = ctx
        self.node: Node = ctx.node
        self.buffer_bytes = buffer_bytes
        self.send_buffer = self.node.alloc_private_buffer(buffer_bytes)
        self._recv_buffers: List[int] = [
            self.node.alloc_private_buffer(buffer_bytes)
            for _ in range(n_recv_buffers)
        ]
        self._grant_and_post()

    def _grant_and_post(self) -> None:
        """CNI: grant the buffers and stock the free queue.  (On the
        standard interface the kernel owns buffering; nothing to post.)"""
        mgr = getattr(self.node.nic, "channel_manager", None)
        if mgr is None:
            return
        ch = mgr.get(self.node.dsm_channel_id)
        ch.grant_buffer(self.send_buffer, self.buffer_bytes)
        for vaddr in self._recv_buffers:
            ch.grant_buffer(vaddr, self.buffer_bytes)
            ch.post_free_buffer(vaddr, self.buffer_bytes)

    def send(self, dst: int, nbytes: int, payload=None,
             cacheable: bool = True) -> Generator:
        """Send ``nbytes`` from the registered send buffer to ``dst``.

        Includes the write-back-cache flush obligation; on the CNI a
        resend of an unmodified buffer is a Message-Cache hit and skips
        the host DMA entirely.
        """
        if nbytes > self.buffer_bytes:
            raise ValueError(
                f"message of {nbytes} bytes exceeds the {self.buffer_bytes}-byte buffer"
            )
        yield from self.ctx.send(
            dst, self.send_buffer, nbytes, cacheable=cacheable, payload=payload
        )
        return None

    def recv(self) -> Generator:
        """Receive the next message; re-stocks the free queue (CNI)."""
        desc: ReceiveDescriptor = yield from self.ctx.recv()
        mgr = getattr(self.node.nic, "channel_manager", None)
        if mgr is not None and desc.vaddr is not None:
            ch = mgr.get(self.node.dsm_channel_id)
            ch.post_free_buffer(desc.vaddr, self.buffer_bytes)
        return desc

    def unacked_sends(self) -> int:
        """Packets this node sent that the reliable transport has not
        yet seen acknowledged (always 0 with the transport disabled)."""
        return self.node.nic.reliab.outstanding()

    def touch_send_buffer(self, nbytes: int) -> Generator:
        """Simulate the application writing the message contents (dirties
        host cache lines; the subsequent flush + snoop keep the Message
        Cache copy consistent)."""
        yield from self.ctx.node.cache_write_private(self.send_buffer, nbytes)
        return None
