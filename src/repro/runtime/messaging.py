"""User-level message passing over the network interface.

The paper's third design goal is supporting *both* programming paradigms;
the DSM applications drive the evaluation, but Application Device
Channels are fundamentally a message-passing primitive (and the Figure 14
microbenchmark measures exactly this path).  :class:`MessagingService`
packages the buffer-management protocol an application needs — register
send/receive buffers, keep the free queue stocked (CNI), send, receive —
and, on top of it, the MPI-style protocol layer of docs/runtime.md:

* :meth:`send` picks the protocol by size against
  ``SimParams.rendezvous_threshold``: at most the threshold goes
  **eager** (:meth:`send_eager`, a copy through the pre-posted free-queue
  buffers); above it goes **rendezvous** (:meth:`send_rendezvous`, an
  RTS/CTS handshake followed by page-sized chunks streamed into a
  receiver-allocated landing buffer).  Either way the message arrives
  through :meth:`recv`.
* :meth:`remote_read` / :meth:`remote_write` are RDMA-style one-sided
  operations against windows the target exposed with :meth:`expose`;
  the target application never participates (the engine's AIH serves
  them on the NI processor of a CNI).

With ``reliable_transport`` on, sends are tracked by the NIC-resident
transport (docs/reliability.md): ``send`` still returns when the board
has consumed the descriptor, while acknowledgement and retransmission
proceed on the board; :meth:`MessagingService.unacked_sends` exposes
how many of this node's packets are still in flight.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set

from ..core import ReceiveDescriptor
from ..dsm.messages import MSG_BASE_BYTES
from ..network import PacketKind
from .context import Context
from .node import Node
from .protocol import (
    RdvData,
    ReadReq,
    RtMsgType,
    RtsMsg,
    WriteReq,
)


class MessagingService:
    """Message-passing endpoint for one node's application."""

    def __init__(self, ctx: Context, n_recv_buffers: int = 16,
                 buffer_bytes: int = 8192):
        self.ctx = ctx
        self.node: Node = ctx.node
        self.rt = ctx.node.rt
        self.buffer_bytes = buffer_bytes
        self.send_buffer = self.node.alloc_private_buffer(buffer_bytes)
        self._recv_buffers: List[int] = [
            self.node.alloc_private_buffer(buffer_bytes)
            for _ in range(n_recv_buffers)
        ]
        #: Free-queue buffers by address: only these are re-posted after
        #: a receive (rendezvous landing buffers are engine-owned and
        #: must never enter the free queue).
        self._recv_buffer_set: Set[int] = set(self._recv_buffers)
        #: Rendezvous source region, grown on demand (rendezvous sends
        #: are not bounded by ``buffer_bytes``): (vaddr, size).
        self._rdv_src: Optional[tuple] = None
        self._grant_and_post()

    def _grant_and_post(self) -> None:
        """CNI: grant the buffers and stock the free queue.  (On the
        standard interface the kernel owns buffering; nothing to post.)"""
        mgr = getattr(self.node.nic, "channel_manager", None)
        if mgr is None:
            return
        ch = mgr.get(self.node.dsm_channel_id)
        ch.grant_buffer(self.send_buffer, self.buffer_bytes)
        for vaddr in self._recv_buffers:
            ch.grant_buffer(vaddr, self.buffer_bytes)
            ch.post_free_buffer(vaddr, self.buffer_bytes)

    # ------------------------------------------------------------- sending --
    def send(self, dst: int, nbytes: int, payload=None,
             cacheable: bool = True,
             deadline_ns: Optional[float] = None) -> Generator:
        """Send ``nbytes`` to ``dst``, picking the protocol by size:
        eager at or below ``SimParams.rendezvous_threshold``, rendezvous
        above it (docs/runtime.md).  ``deadline_ns`` bounds a rendezvous
        handshake (see :meth:`send_rendezvous`); the eager path has no
        remote wait to bound."""
        if nbytes <= self.ctx.params.rendezvous_threshold:
            yield from self.send_eager(dst, nbytes, payload=payload,
                                       cacheable=cacheable)
        else:
            yield from self.send_rendezvous(dst, nbytes, payload=payload,
                                            cacheable=cacheable,
                                            deadline_ns=deadline_ns)
        return None

    def send_eager(self, dst: int, nbytes: int, payload=None,
                   cacheable: bool = True) -> Generator:
        """Eager send from the registered send buffer: the message copies
        through a pre-posted free-queue buffer on the receiver, so no
        handshake round trip is paid.

        Includes the write-back-cache flush obligation; on the CNI a
        resend of an unmodified buffer is a Message-Cache hit and skips
        the host DMA entirely.
        """
        if nbytes > self.buffer_bytes:
            raise ValueError(
                f"message of {nbytes} bytes exceeds the {self.buffer_bytes}-byte buffer"
            )
        t0 = self.ctx.sim.now
        yield from self.ctx.send(
            dst, self.send_buffer, nbytes, cacheable=cacheable, payload=payload
        )
        self.rt._m_eager.inc()
        self.rt._m_bytes.inc(nbytes)
        self.rt._m_eager_ns.observe(self.ctx.sim.now - t0)
        return None

    def send_rendezvous(self, dst: int, nbytes: int, payload=None,
                        cacheable: bool = True,
                        deadline_ns: Optional[float] = None) -> Generator:
        """Rendezvous send: RTS, block for the (early) CTS, then stream
        page-sized chunks from the rendezvous source region into the
        receiver's landing buffer.  Not bounded by ``buffer_bytes``.

        The CTS wait is bounded by ``deadline_ns`` (None takes
        ``SimParams.op_deadline_ns``; 0 waits forever) and raises
        :class:`~repro.runtime.RuntimeTimeout` /
        :class:`~repro.runtime.PeerDead` on expiry."""
        rt = self.rt
        op_id = rt.new_op_id()
        src = yield from self._ensure_rdv_src(nbytes)
        t0 = self.ctx.sim.now
        w = rt.register_wait("cts", op_id)
        rt._m_rts.inc()
        yield from self.ctx.send(
            dst, None, MSG_BASE_BYTES,
            payload=RtsMsg(op_id, self.ctx.rank, nbytes),
            kind=PacketKind.RUNTIME, handler_key=int(RtMsgType.RTS))
        yield from rt.wait("cts", op_id, w, deadline_ns=deadline_ns,
                           peer=dst)
        page = self.ctx.params.page_size_bytes
        off = 0
        while True:
            chunk = min(page, nbytes - off)
            last = off + chunk >= nbytes
            yield from self.ctx.send(
                dst, src + off, chunk, cacheable=cacheable,
                payload=RdvData(op_id, off, last,
                                payload if last else None),
                kind=PacketKind.RUNTIME,
                handler_key=int(RtMsgType.RDV_DATA))
            rt._m_chunks.inc()
            off += chunk
            if last:
                break
        rt._m_rdv.inc()
        rt._m_bytes.inc(nbytes)
        rt._m_rdv_ns.observe(self.ctx.sim.now - t0)
        return None

    def _ensure_rdv_src(self, nbytes: int) -> Generator:
        """Rendezvous source region of at least ``nbytes`` (allocated,
        granted to the channel on a CNI, grown by reallocation)."""
        need = max(nbytes, 1)
        if self._rdv_src is not None and self._rdv_src[1] >= need:
            return self._rdv_src[0]
        vaddr = self.node.alloc_private_buffer(need)
        mgr = getattr(self.node.nic, "channel_manager", None)
        if mgr is not None:
            mgr.get(self.node.dsm_channel_id).grant_buffer(vaddr, need)
        self._rdv_src = (vaddr, need)
        # Touch the region once so its lines exist in the cache model
        # (the application would have written the message here).
        yield from self.node.cache_write_private(vaddr, min(need, 4096))
        return vaddr

    # ----------------------------------------------------- one-sided RDMA --
    def expose(self, nbytes: int) -> int:
        """Register a window of ``nbytes`` for one-sided remote access;
        returns its virtual address.  Under the SPMD discipline every
        rank performs the same allocations in the same order, so the
        returned address is identical cluster-wide and peers can target
        it directly (docs/runtime.md's registration rule)."""
        vaddr = self.node.alloc_private_buffer(nbytes)
        self.rt.register_window(vaddr, nbytes)
        return vaddr

    def remote_read(self, dst: int, raddr: int, nbytes: int,
                    deadline_ns: Optional[float] = None) -> Generator:
        """One-sided read of ``[raddr, raddr+nbytes)`` from ``dst``'s
        registered window.  The reply transmits straight from the
        target's memory with the cacheable bit set: repeated reads of an
        unmodified window are Message-Cache transmit hits on a CNI
        (the remote-cache effect), and the target application never
        participates.  The reply wait is bounded by ``deadline_ns``
        (None takes ``SimParams.op_deadline_ns``)."""
        rt = self.rt
        op_id = rt.new_op_id()
        t0 = self.ctx.sim.now
        w = rt.register_wait("read", op_id)
        yield from self.ctx.send(
            dst, None, MSG_BASE_BYTES,
            payload=ReadReq(op_id, self.ctx.rank, raddr, nbytes),
            kind=PacketKind.RUNTIME,
            handler_key=int(RtMsgType.RDMA_READ_REQ))
        got = yield from rt.wait("read", op_id, w, deadline_ns=deadline_ns,
                                 peer=dst)
        rt._m_reads.inc()
        rt._m_rdma_bytes.inc(nbytes)
        rt._m_read_ns.observe(self.ctx.sim.now - t0)
        return got

    def remote_write(self, dst: int, raddr: int, nbytes: int,
                     deadline_ns: Optional[float] = None) -> Generator:
        """One-sided write of ``nbytes`` from the send buffer into
        ``dst``'s registered window at ``raddr``.  Completion means the
        target's ack arrived — the data is placed remotely, not merely
        accepted by the local board.  The ack wait is bounded by
        ``deadline_ns`` (None takes ``SimParams.op_deadline_ns``)."""
        if nbytes > self.buffer_bytes:
            raise ValueError(
                f"remote_write of {nbytes} bytes exceeds the "
                f"{self.buffer_bytes}-byte buffer"
            )
        rt = self.rt
        op_id = rt.new_op_id()
        t0 = self.ctx.sim.now
        w = rt.register_wait("wack", op_id)
        yield from self.ctx.send(
            dst, self.send_buffer, nbytes, cacheable=True,
            payload=WriteReq(op_id, self.ctx.rank, raddr, nbytes),
            kind=PacketKind.RUNTIME,
            handler_key=int(RtMsgType.RDMA_WRITE))
        yield from rt.wait("wack", op_id, w, deadline_ns=deadline_ns,
                           peer=dst)
        rt._m_writes.inc()
        rt._m_rdma_bytes.inc(nbytes)
        rt._m_write_ns.observe(self.ctx.sim.now - t0)
        return None

    # ----------------------------------------------------------- receiving --
    def recv(self, deadline_ns: Optional[float] = None) -> Generator:
        """Receive the next message (eager or rendezvous); re-stocks the
        free queue (CNI) when the consumed buffer came from it.

        ``deadline_ns`` bounds the wait for an arrival (None takes
        ``SimParams.op_deadline_ns``; 0 waits forever); on expiry a
        :class:`~repro.runtime.RuntimeTimeout` is raised."""
        desc: ReceiveDescriptor = yield from self.ctx.recv(
            deadline_ns=deadline_ns)
        mgr = getattr(self.node.nic, "channel_manager", None)
        if (mgr is not None and desc.vaddr is not None
                and desc.vaddr in self._recv_buffer_set):
            ch = mgr.get(self.node.dsm_channel_id)
            ch.post_free_buffer(desc.vaddr, self.buffer_bytes)
        return desc

    # -------------------------------------------------------------- misc --
    def observe_rtt(self, ns: float) -> None:
        """Record an application-level round-trip sample into the
        ``runtime.msg_rtt_ns`` histogram (pingpong-style timing)."""
        self.rt.observe_rtt(ns)

    def unacked_sends(self) -> int:
        """Packets this node sent that the reliable transport has not
        yet seen acknowledged (always 0 with the transport disabled)."""
        return self.node.nic.reliab.outstanding()

    def touch_send_buffer(self, nbytes: int) -> Generator:
        """Simulate the application writing the message contents (dirties
        host cache lines; the subsequent flush + snoop keep the Message
        Cache copy consistent)."""
        yield from self.ctx.node.cache_write_private(self.send_buffer, nbytes)
        return None
