"""Cluster assembly and experiment execution.

:class:`Cluster` builds the whole simulated system — nodes, fabric,
shared segment, DSM engines, NIC wiring — and runs SPMD application
kernels to completion, returning the paper's metrics
(:class:`~repro.engine.RunStats`).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from ..collectives import (
    COLL_HANDLER_CODE_BYTES,
    CollMsgType,
    make_collective_engine,
)
from ..dsm import DsmEngine, HomePolicy, MsgType, SharedSegment
from ..dsm.eager import EagerDsmEngine
from ..engine import (
    Counters,
    RunStats,
    SimulationError,
    Simulator,
    StuckError,
    Tracer,
)
from ..memory import AddressSpace
from ..network import Network
from ..obs import MetricsRegistry, SpanTracer
from ..params import SimParams, cni_params, standard_interface_params
from .context import Context
from .node import DSM_HANDLER_CODE_BYTES, Node
from .protocol import RT_HANDLER_CODE_BYTES, MessagingEngine, RtMsgType

#: An SPMD application kernel: ``kernel(ctx) -> Generator``.
AppKernel = Callable[[Context], Generator]


class Cluster:
    """A simulated workstation cluster (CNI or standard interface)."""

    def __init__(
        self,
        params: SimParams,
        interface: str = "cni",
        home_scheme: str = "round_robin",
        protocol: str = "lazy",
    ):
        if interface == "standard":
            # The baseline is CNI-feature-free by definition (Section 3).
            params = standard_interface_params(params)
        elif interface == "cni":
            # Keep the caller's feature flags: defaults are full CNI, and
            # ablation experiments turn individual mechanisms off.
            pass
        else:
            raise ValueError(f"unknown interface type {interface!r}")
        if protocol not in ("lazy", "eager"):
            raise ValueError(f"unknown consistency protocol {protocol!r}")
        self.params = params
        self.interface = interface
        self.protocol = protocol
        self.sim = Simulator()
        self.counters = Counters()

        # -- observability substrate (docs/observability.md) --------------
        #: Every metric of this cluster, keyed ``node<i>.<component>...``.
        self.metrics = MetricsRegistry()
        #: Bounded ring for span/point traces; off by default — flip
        #: ``cluster.tracer.enabled = True`` before ``run()`` to record.
        self.tracer = Tracer(enabled=False)
        #: Span source for components; latency histograms under ``spans.*``
        #: are fed even while the ring is disabled.
        self.spans = SpanTracer(self.tracer, clock=lambda: self.sim.now,
                                metrics=self.metrics.scope("spans"))
        eng = self.metrics.scope("engine")
        eng.counter("events_processed", fn=lambda: self.sim.events_processed)
        eng.gauge("event_queue_hwm", fn=lambda: self.sim.queue_len_hwm)
        eng.gauge("sim_time_ns", fn=lambda: self.sim.now)
        # The legacy cluster-wide Counters bag, mirrored under
        # ``cluster.*`` at snapshot time (names are only known at run
        # time, so a probe late-registers them).
        self.metrics.add_probe(self._sync_cluster_counters)

        self.network = Network(self.sim, params)
        # Fabric metrics (net.*, docs/network.md) register only when a
        # topology is explicitly selected: the params.topology=None
        # default must keep the metric snapshot — and therefore every
        # legacy RunStats digest — bit-identical to the pre-topology
        # layer.
        if params.topology is not None:
            self.network.register_metrics(self.metrics.scope("net"))
        # Fault-injection damage per destination node (zero on a clean
        # fabric; registered unconditionally so the catalog is stable).
        net = self.network
        for i in range(params.num_processors):
            fscope = self.metrics.scope(f"node{i}.faults")
            fscope.counter("cells_dropped",
                           fn=lambda i=i: net.fault_cells_dropped(i))
            fscope.counter("cells_corrupted",
                           fn=lambda i=i: net.fault_cells_corrupted(i))
        self.asp = AddressSpace(
            page_size=params.page_size_bytes,
            dsm_pages=params.dsm_address_space_pages,
        )
        self.segment = SharedSegment(self.asp)
        self.homes = HomePolicy(params.num_processors, scheme=home_scheme)

        self.nodes: List[Node] = []
        for i in range(params.num_processors):
            node = Node(self.sim, params, i, self.network, self.counters,
                        interface=interface,
                        metrics=self.metrics.scope(f"node{i}"),
                        spans=self.spans)
            self.nodes.append(node)
        engine_cls = EagerDsmEngine if protocol == "eager" else DsmEngine
        for node in self.nodes:
            engine = engine_cls(node, self.segment, self.homes,
                                params.num_processors)
            node.engine = engine
            # Collective engine (repro.collectives): the DSM barrier and
            # the app-facing collective API both run through it; the DSM
            # engine rides along as the barrier's consistency attachment.
            node.coll = make_collective_engine(
                node, params.num_processors, root=self.homes.barrier_manager)
            node.coll.consistency = engine
            # Messaging engine (docs/runtime.md): rendezvous responder +
            # RDMA window logic.  Built on every platform so the
            # ``runtime.*`` metric catalog is run-independent.
            node.rt = MessagingEngine(node, params.num_processors)
            node.nic.set_protocol_sink(node.dispatch_protocol_packet)
            # Crash-stop plumbing (docs/reliability.md): the runtime's
            # bounded eager-retry policy backs the reliable transport's
            # budget exhaustion, and every engine's blocked waits feed
            # the quiescence watchdog's stuck report.
            node.nic.reliab.set_failure_sink(node.rt.on_delivery_failed)
            self.sim.add_waiter_probe(node.rt.outstanding_waits)
            self.sim.add_waiter_probe(node.coll.outstanding_waits)
            self.sim.add_waiter_probe(node.engine.outstanding_waits)
        self._setup_connections()
        self._ran = False

    def _sync_cluster_counters(self, registry: MetricsRegistry) -> None:
        """Snapshot probe: expose each legacy counter as
        ``cluster.<name>`` (function-sourced, so re-snapshots stay
        current without double counting)."""
        bag = self.counters
        for key in bag.as_dict():
            registry.counter(f"cluster.{key}", fn=lambda key=key: bag.get(key))

    # ----------------------------------------------------------------- wiring --
    def _setup_connections(self) -> None:
        """Connection setup: channels, handler installation, mappings.

        This is the kernel-mediated, off-critical-path phase (Section
        2.1/2.3): open a device channel per node, install the DSM
        protocol's AIH object code, and mirror the DSM mappings onto the
        boards so snooping and virtually-addressed DMA resolve.
        """
        for node in self.nodes:
            if self.interface == "cni":
                # One cluster-wide connection for the single parallel
                # application: every node uses channel id 1 so that any
                # sender's packets match any receiver's demux pattern.
                ch = node.nic.open_channel(owner_app=node.node_id,
                                           channel_id=1)
                node.dsm_channel_id = ch.channel_id
                # The whole address space is granted to the single
                # parallel application (the paper's stated assumption).
                ch.grant_buffer(0, self.asp.dsm_limit)
                per_type = DSM_HANDLER_CODE_BYTES // len(MsgType)
                for mt in MsgType:
                    node.nic.install_protocol_handler(
                        int(mt), node.engine.handle_packet, per_type
                    )
                # Collective AIHs: with the NIC-resident engine these
                # hold the gather/release protocol; with the host engine
                # the same patterns classify the packets but the handler
                # is a bounce-to-host trampoline (the engine prices it).
                per_coll = COLL_HANDLER_CODE_BYTES // len(CollMsgType)
                for cmt in CollMsgType:
                    node.nic.install_collective_handler(
                        int(cmt), node.coll.handle_packet, per_coll
                    )
                # Messaging-runtime AIHs: the rendezvous responder and
                # RDMA window logic run on the NI processor (with AIH
                # ablated away the same patterns bounce to the host).
                per_rt = RT_HANDLER_CODE_BYTES // len(RtMsgType)
                for rmt in RtMsgType:
                    node.nic.install_runtime_handler(
                        int(rmt), node.rt.handle_packet, per_rt
                    )
            else:
                node.dsm_channel_id = 1

    # ----------------------------------------------------------------- memory --
    def alloc_shared(self, shape, dtype=np.float64):
        """Allocate a shared array (before :meth:`run`); mappings are
        mirrored onto every board."""
        alloc = self.segment.alloc(shape, dtype=dtype)
        return alloc

    def finalize_memory(self) -> None:
        """Finalize page homes and install MMU/TLB mappings for
        everything allocated so far."""
        npages = self.segment.pages_allocated
        self.homes.set_page_count(max(npages, 1))
        self.homes.set_allocations(self.segment.extents)
        for node in self.nodes:
            node.engine.init_page_homes()
            node.map_dsm_pages(npages)

    # ------------------------------------------------------------------- run --
    def run(self, kernel: AppKernel, max_events: Optional[int] = None,
            wall_budget_s: Optional[float] = None) -> RunStats:
        """Run ``kernel`` SPMD on every node; return the run's metrics.

        ``wall_budget_s`` bounds the *wall-clock* time the event loop may
        spend (a backstop against livelock under fault plans); when the
        budget expires — or the queue drains — with application threads
        still blocked, the quiescence watchdog raises :class:`StuckError`
        naming every outstanding wait (docs/reliability.md)."""
        if self._ran:
            raise SimulationError("a Cluster instance runs one experiment")
        self._ran = True
        self.finalize_memory()

        run_span = self.spans.begin("cluster", "run")
        procs = []
        for node in self.nodes:
            ctx = Context(node, node.node_id, self.params.num_processors)
            procs.append(self.sim.spawn(kernel(ctx), f"app{node.node_id}"))
        self._schedule_crashes(procs)
        self._start_detectors(procs)
        self.sim.run(max_events=max_events, wall_budget_s=wall_budget_s)
        self.spans.end(run_span)

        unfinished = [p.name for p in procs if not p.finished]
        if unfinished:
            raise StuckError(
                f"application deadlock: {unfinished} never finished "
                f"(t={self.sim.now} ns)",
                self.sim.stuck_report(),
            )

        stats = RunStats()
        stats.elapsed_ns = self.sim.now
        stats.counters = self.counters
        stats.per_processor = [n.account for n in self.nodes]
        stats.metrics = self.metrics.snapshot()
        stats.metric_kinds = self.metrics.kinds()
        return stats

    def _schedule_crashes(self, procs) -> None:
        """Arm the fault plan's ``NodeCrash`` schedules: at ``at_ns`` the
        node's NIC fail-stops (transport timers cancelled, detector
        silenced, cells neither sourced nor sunk) and its application
        thread is killed — crash-stop semantics, no goodbye message."""
        faults = self.network.active_faults
        if faults is None:
            return
        for node_id, at_ns in sorted(faults.crash_times().items()):
            if not 0 <= node_id < len(self.nodes):
                continue
            self.sim.schedule(
                max(at_ns - self.sim.now, 0.0),
                lambda node_id=node_id: self._crash_node(node_id, procs))

    def _crash_node(self, node_id: int, procs) -> None:
        self.nodes[node_id].nic.on_crash()
        procs[node_id].kill()

    def _start_detectors(self, procs) -> None:
        """Arm every node's heartbeat detector, plus a watcher that
        stops them once all application threads are done (finished or
        killed) so the event queue can drain to quiescence."""
        if self.params.heartbeat_interval_ns <= 0:
            return
        for node in self.nodes:
            node.nic.detector.start()

        def _watch():
            for p in procs:
                if not p.finished:
                    yield p
            for node in self.nodes:
                node.nic.detector.stop()

        self.sim.spawn(_watch(), "detector-watch")

    # -------------------------------------------------------------- reporting --
    def message_cache_hit_ratio(self) -> float:
        """Cluster-wide network cache hit ratio (Section 3's metric)."""
        return self.counters.ratio("mc_transmit_hits", "mc_transmit_lookups")
