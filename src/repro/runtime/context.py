"""The application-thread API: compute, shared access, synchronization.

Application kernels are generator functions receiving a :class:`Context`;
every potentially-blocking operation is a ``yield from``.  The context
performs the *execution-driven* part: shared reads and writes move real
numpy data through the global store while the cache model prices every
touched line and the DSM engine intercepts page faults.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine import Category
from ..memory import lines_in_range
from .node import Node

#: A contiguous byte run inside the shared segment: (vaddr, nbytes).
Run = Tuple[int, int]


class Context:
    """Per-(node, application-thread) execution context."""

    def __init__(self, node: Node, rank: int, nprocs: int):
        self.node = node
        self.rank = rank
        self.nprocs = nprocs
        self.params = node.params
        self.engine = node.engine
        self.sim = node.sim

    # ------------------------------------------------------------- computation --
    def compute(self, cycles: float) -> Generator:
        """Charge ``cycles`` of pure computation (plus any host time the
        network stole since the last burst)."""
        if cycles < 0:
            raise ValueError("negative compute cycles")
        ns = self.params.cpu_cycles_ns(cycles)
        stolen = self.node.take_stolen_ns()
        yield ns + stolen
        self.node.account_compute(ns)
        return None

    def idle(self, cycles: float) -> Generator:
        """Charge ``cycles`` of busy-waiting (spin backoff).

        Accounted as *synch delay*: the processor is burning time
        waiting for work/synchronization, not computing."""
        if cycles < 0:
            raise ValueError("negative idle cycles")
        ns = self.params.cpu_cycles_ns(cycles)
        yield ns
        self.node.account_delay(ns)
        return None

    # ------------------------------------------------------------ shared access --
    def access_runs(self, runs: Sequence[Run], is_write: bool) -> Generator:
        """Touch contiguous shared byte runs (the core access primitive).

        Ensures every covered page is accessible (faulting through the
        DSM engine where not), simulates the cache over the exact line
        stream, records written ranges for the write collector, and
        charges the memory time as computation.
        """
        if not runs:
            return None
        line_size = self.params.cache_line_bytes
        page_size = self.params.page_size_bytes
        line_arrays = [
            lines_in_range(vaddr, nbytes, line_size) for vaddr, nbytes in runs
            if nbytes > 0
        ]
        if not line_arrays:
            return None
        lines = np.concatenate(line_arrays)

        # Page-presence check and faults.
        lines_per_page = page_size // line_size
        dsm_base_page = self.engine.segment.asp.dsm_base // page_size
        pages = np.unique(lines // lines_per_page) - dsm_base_page
        for page in pages:
            page = int(page)
            if not 0 <= page < self.engine.segment.npages:
                raise ValueError(f"shared access outside the DSM segment")
            if not self.engine.page_accessible(page, is_write):
                yield from self.engine.fault(page, is_write)

        # Record writes for the interval's write notices / diff sizes.
        if is_write:
            for vaddr, nbytes in runs:
                if nbytes <= 0:
                    continue
                start = vaddr - self.engine.segment.asp.dsm_base
                first_page = start // page_size
                last_page = (start + nbytes - 1) // page_size
                for p in range(first_page, last_page + 1):
                    lo = max(start, p * page_size)
                    hi = min(start + nbytes, (p + 1) * page_size)
                    self.engine.collector.record_write(
                        p, lo - p * page_size, hi - lo
                    )

        # Cache simulation: the exact ordered line stream.
        cost = self.node.cache.access(lines, is_write)
        if cost.writeback_lines.size:
            self.node.memory.record_writebacks(int(cost.writeback_lines.size))
            self.node.bus.cpu_write_traffic(cost.writeback_lines)
        self.node.memory.record_fills(cost.memory_accesses)
        ns = self.params.cpu_cycles_ns(cost.cpu_cycles)
        yield ns
        self.node.account_compute(ns)
        return None

    def read_runs(self, runs: Sequence[Run]) -> Generator:
        """Read contiguous shared runs (cost only; data via SharedArray)."""
        yield from self.access_runs(runs, is_write=False)
        return None

    def write_runs(self, runs: Sequence[Run]) -> Generator:
        """Write contiguous shared runs (cost + write recording)."""
        yield from self.access_runs(runs, is_write=True)
        return None

    # ---------------------------------------------------------- synchronization --
    def acquire(self, lock_id: int) -> Generator:
        """Acquire a distributed lock."""
        yield from self.engine.acquire(lock_id)
        return None

    def release(self, lock_id: int) -> Generator:
        """Release a distributed lock (a release operation: publishes
        this interval's writes)."""
        yield from self.engine.release(lock_id)
        return None

    def barrier(self, barrier_id: int = 0) -> Generator:
        """Cross a global barrier."""
        yield from self.engine.barrier(barrier_id)
        return None

    # ------------------------------------- collectives (docs/collectives.md) --
    def allreduce(self, value, op: str = "sum", coll_id: int = 0) -> Generator:
        """Combine ``value`` (scalar or flat sequence, elementwise)
        across all nodes; every node returns the combined result."""
        result = yield from self.node.coll.allreduce(
            value, op=op, coll_id=coll_id)
        return result

    def reduce(self, value, op: str = "sum", root: Optional[int] = None,
               coll_id: int = 0) -> Generator:
        """Combine ``value`` at the root; the root returns the result,
        everyone else returns ``None`` without blocking."""
        result = yield from self.node.coll.reduce(
            value, op=op, root=root, coll_id=coll_id)
        return result

    def broadcast(self, value=None, root: Optional[int] = None,
                  coll_id: int = 0) -> Generator:
        """Return the root's ``value`` on every node (one-to-all)."""
        result = yield from self.node.coll.broadcast(
            value, root=root, coll_id=coll_id)
        return result

    def multicast(self, value=None, dests=(), src: Optional[int] = None,
                  coll_id: int = 0) -> Generator:
        """One-to-some: destinations return the source's ``value``,
        non-participants fall through with ``None``."""
        result = yield from self.node.coll.multicast(
            value, dests=dests, src=src, coll_id=coll_id)
        return result

    # -------------------------------------------------------------- messaging --
    def send(self, dst: int, vaddr: Optional[int], nbytes: int,
             channel_id: Optional[int] = None,
             cacheable: bool = True, payload=None,
             kind=None, handler_key: int = 0) -> Generator:
        """User-level message send of a registered buffer.

        ``vaddr=None`` sends an immediate/control payload (no buffer to
        flush or DMA); ``kind``/``handler_key`` let the messaging
        runtime stamp protocol packets (docs/runtime.md) — plain
        application sends leave both at their defaults and travel as
        DATA.
        """
        from ..core.adc import TransmitDescriptor

        if vaddr is not None:
            yield from self.node.flush_buffer(vaddr, nbytes)
        t0 = self.sim.now
        done = self.sim.event()
        desc = TransmitDescriptor(
            dst_node=dst,
            vaddr=vaddr,
            length=nbytes,
            handler_key=handler_key,
            cacheable=cacheable,
            payload=payload,
            channel_id=(channel_id if channel_id is not None
                        else self.node.dsm_channel_id),
            completion=done,
            kind=kind,
        )
        yield from self.node.nic.host_send(desc)
        self.node.account_overhead(self.sim.now - t0)
        # The buffer may be DMAed until the board consumes the
        # descriptor; block reuse until then (completion is how the real
        # transmit queue signals it).
        t1 = self.sim.now
        self.node.app_blocked = True
        try:
            yield done
        finally:
            self.node.app_blocked = False
        self.node.account_delay(self.sim.now - t1)
        return None

    def recv(self, deadline_ns: Optional[float] = None) -> Generator:
        """Wait for the next inbound DATA message; returns its descriptor.

        ``deadline_ns`` bounds the wait (None takes
        ``SimParams.op_deadline_ns``; 0 waits forever); expiry raises
        :class:`~repro.runtime.RuntimeTimeout`."""
        desc = yield from self.node.wait_for_message(deadline_ns=deadline_ns)
        return desc

    # ------------------------------------------------------- failure detection --
    def suspected_peers(self) -> List[int]:
        """Ranks the local NIC's heartbeat failure detector currently
        suspects crashed (empty when heartbeats are off)."""
        return self.node.nic.detector.suspected_peers()

    def peer_suspected(self, rank: int) -> bool:
        """Whether the local failure detector suspects ``rank`` crashed."""
        return self.node.nic.detector.is_suspected(rank)
