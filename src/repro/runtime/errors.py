"""Typed failure exceptions of the messaging runtime.

The crash-stop fault-tolerance contract (docs/reliability.md): a
blocking runtime operation either completes, or raises one of these —
it never hangs.  ``RuntimeTimeout`` is the generic deadline expiry;
``PeerDead`` is its subclass raised when the failure detector already
suspects the peer the operation was waiting on, so ``except
RuntimeTimeout`` catches both while ``except PeerDead`` isolates the
diagnosed crash.
"""

from __future__ import annotations

__all__ = ["MessagingError", "PeerDead", "RuntimeTimeout"]


class MessagingError(RuntimeError):
    """Base of every typed messaging-runtime failure."""


class RuntimeTimeout(MessagingError):
    """A blocking runtime operation passed its deadline.

    Attributes: ``op`` (the wait kind, e.g. ``"cts"``/``"recv"``),
    ``peer`` (the rank waited on, or ``None``), ``deadline_ns``.
    """

    def __init__(self, op: str, peer=None, deadline_ns: float = 0.0):
        self.op = op
        self.peer = peer
        self.deadline_ns = deadline_ns
        where = f" on rank {peer}" if peer is not None else ""
        super().__init__(
            f"{op} deadline expired after {deadline_ns:.0f} ns{where}")


class PeerDead(RuntimeTimeout):
    """A deadline expired *and* the failure detector suspects the peer —
    the operation was waiting on a crashed (or crash-suspected) rank."""

    def __init__(self, op: str, peer, deadline_ns: float = 0.0):
        RuntimeTimeout.__init__(self, op, peer, deadline_ns)
        self.args = (
            f"{op} waiting on suspected-dead rank {peer} "
            f"(deadline {deadline_ns:.0f} ns)",)
