"""Tests for the cluster invariant checker."""

import pytest

from repro.dsm import Violation, assert_healthy, check_cluster
from repro.dsm.page import PageState
from repro.params import SimParams
from repro.runtime import Cluster


def run_small(iface="cni"):
    params = SimParams().replace(num_processors=3, dsm_address_space_pages=32)
    cluster = Cluster(params, interface=iface)
    arr = cluster.alloc_shared((3, 512))
    base = arr.base_vaddr

    def kernel(ctx):
        r = ctx.rank
        yield from ctx.acquire(1)
        yield from ctx.write_runs([(base + r * 4096, 4096)])
        arr.data[r] = r
        yield from ctx.release(1)
        yield from ctx.barrier()
        nb = (r + 1) % 3
        yield from ctx.read_runs([(base + nb * 4096, 64)])
        yield from ctx.barrier()

    cluster.run(kernel)
    return cluster


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_healthy_after_clean_run(iface):
    cluster = run_small(iface)
    assert check_cluster(cluster) == []
    assert_healthy(cluster)


def test_detects_leaked_waiter():
    cluster = run_small()
    eng = cluster.nodes[1].engine
    eng._register_wait(("page", 99))
    violations = check_cluster(cluster)
    assert any(v.kind == "leaked-waiter" for v in violations)
    with pytest.raises(AssertionError, match="leaked-waiter"):
        assert_healthy(cluster)


def test_detects_held_lock():
    cluster = run_small()
    cluster.nodes[0].engine.local_locks.state(7).held = True
    kinds = {v.kind for v in check_cluster(cluster)}
    assert "locks-held-at-exit" in kinds


def test_detects_double_hold():
    cluster = run_small()
    cluster.nodes[0].engine.local_locks.state(7).held = True
    cluster.nodes[1].engine.local_locks.state(7).held = True
    kinds = {v.kind for v in check_cluster(cluster, quiescent=False)}
    assert "lock-double-hold" in kinds


def test_detects_vc_future():
    cluster = run_small()
    cluster.nodes[2].engine.vc.v[0] += 5
    kinds = {v.kind for v in check_cluster(cluster, quiescent=False)}
    assert "vc-future" in kinds


def test_detects_writable_without_twin():
    cluster = run_small()
    meta = cluster.nodes[0].engine.pages[0]
    meta.state = PageState.WRITABLE
    meta.twin_live = False
    kinds = {v.kind for v in check_cluster(cluster, quiescent=False)}
    assert "writable-no-twin" in kinds


def test_detects_unpublished_writes():
    cluster = run_small()
    cluster.nodes[1].engine.collector.record_write(0, 0, 10)
    kinds = {v.kind for v in check_cluster(cluster)}
    assert "unpublished-writes" in kinds
    # non-quiescent checks allow in-flight intervals
    assert "unpublished-writes" not in {
        v.kind for v in check_cluster(cluster, quiescent=False)
    }


def test_violation_str():
    v = Violation(node=2, kind="x", detail="y")
    assert "node 2" in str(v)
