"""Unit + property tests for modified-range tracking."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dsm import RangeSet


def test_empty():
    rs = RangeSet()
    assert not rs
    assert rs.byte_count == 0
    assert rs.range_count == 0


def test_single_range():
    rs = RangeSet()
    rs.add(10, 5)
    assert rs.byte_count == 5
    assert list(rs) == [(10, 15)]
    assert rs.contains(10) and rs.contains(14) and not rs.contains(15)


def test_zero_length_ignored():
    rs = RangeSet()
    rs.add(10, 0)
    rs.add(10, -5)
    assert not rs


def test_disjoint_ranges():
    rs = RangeSet()
    rs.add(0, 4)
    rs.add(10, 4)
    assert rs.byte_count == 8
    assert rs.range_count == 2
    assert list(rs) == [(0, 4), (10, 14)]


def test_overlap_merges():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(5, 10)
    assert list(rs) == [(0, 15)]


def test_adjacent_merges():
    rs = RangeSet()
    rs.add(0, 5)
    rs.add(5, 5)
    assert list(rs) == [(0, 10)]
    assert rs.range_count == 1


def test_bridge_merges_three():
    rs = RangeSet()
    rs.add(0, 4)
    rs.add(8, 4)
    rs.add(3, 6)  # bridges both
    assert list(rs) == [(0, 12)]


def test_clamp():
    rs = RangeSet()
    rs.add(0, 100)
    rs.add(200, 50)
    rs.clamp(120)
    assert list(rs) == [(0, 100)]
    rs.clamp(50)
    assert list(rs) == [(0, 50)]


def test_copy_independent():
    rs = RangeSet()
    rs.add(0, 5)
    c = rs.copy()
    c.add(100, 5)
    assert rs.byte_count == 5 and c.byte_count == 10


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 50)),
        min_size=1, max_size=40,
    )
)
def test_matches_naive_set_semantics(ops):
    """RangeSet equals the set-of-bytes union."""
    rs = RangeSet()
    naive = set()
    for start, length in ops:
        rs.add(start, length)
        naive.update(range(start, start + length))
    assert rs.byte_count == len(naive)
    covered = set()
    prev_end = -1
    for s, e in rs:
        assert s < e
        assert s > prev_end, "ranges must be disjoint, sorted, non-adjacent"
        prev_end = e
        covered.update(range(s, e))
    assert covered == naive
