"""Integration tests of the LRC engine through the full runtime stack.

These run real multi-node clusters (CNI and standard) and check protocol
semantics: coherence of observed values, invalidation laziness, lock
mutual exclusion/ordering, barrier synchrony, diff vs full-page policy.
"""

import numpy as np
import pytest

from repro.params import SimParams
from repro.runtime import Cluster


def make_cluster(nprocs=4, iface="cni", **over):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=64, **over
    )
    return Cluster(params, interface=iface)


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_neighbour_exchange_sees_fresh_values(iface):
    cluster = make_cluster(4, iface)
    arr = cluster.alloc_shared((4, 512))
    base = arr.base_vaddr
    row = 512 * 8
    seen = {}

    def kernel(ctx):
        r = ctx.rank
        yield from ctx.write_runs([(base + r * row, row)])
        arr.data[r, :] = 10 * (r + 1)
        yield from ctx.barrier()
        nb = (r + 1) % ctx.nprocs
        yield from ctx.read_runs([(base + nb * row, row)])
        seen[r] = float(arr.data[nb, 0])
        yield from ctx.barrier()

    cluster.run(kernel)
    for r in range(4):
        assert seen[r] == 10 * (((r + 1) % 4) + 1)


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_lock_mutual_exclusion_and_atomicity(iface):
    cluster = make_cluster(4, iface)
    arr = cluster.alloc_shared((8,))
    base = arr.base_vaddr
    trace = []

    def kernel(ctx):
        for _ in range(3):
            yield from ctx.acquire(0)
            trace.append(("enter", ctx.rank, ctx.sim.now))
            yield from ctx.read_runs([(base, 8)])
            v = float(arr.data[0])
            yield from ctx.compute(500)
            yield from ctx.write_runs([(base, 8)])
            arr.data[0] = v + 1
            trace.append(("exit", ctx.rank, ctx.sim.now))
            yield from ctx.release(0)
        yield from ctx.barrier()

    cluster.run(kernel)
    assert arr.data[0] == 12  # 4 procs x 3 increments, no lost updates
    # critical sections never overlap
    events = sorted(trace, key=lambda e: e[2])
    depth = 0
    for kind, rank, t in events:
        depth += 1 if kind == "enter" else -1
        assert 0 <= depth <= 1


def test_lock_grant_carries_notices_lazily():
    """A third node that never synchronizes on the lock keeps reading
    its stale copy (lazy invalidation), while the lock chain sees fresh
    values."""
    cluster = make_cluster(3, "cni")
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr
    observed = {}

    def kernel(ctx):
        r = ctx.rank
        if r == 0:
            yield from ctx.acquire(5)
            yield from ctx.write_runs([(base, 8)])
            arr.data[0] = 42.0
            yield from ctx.release(5)
            yield from ctx.barrier(1)
        elif r == 1:
            # reads BEFORE acquiring: no ordering with r0's write; then
            # acquires and must see the write.
            yield from ctx.read_runs([(base, 8)])
            yield from ctx.acquire(5)
            yield from ctx.read_runs([(base, 8)])
            observed["r1_after_acquire"] = float(arr.data[0])
            yield from ctx.release(5)
            yield from ctx.barrier(1)
        else:
            # never touches the lock; no reason to see an invalidation
            yield from ctx.read_runs([(base, 8)])
            n_faults_before = ctx.node.counters  # cluster-global; skip
            yield from ctx.read_runs([(base, 8)])
            yield from ctx.barrier(1)

    cluster.run(kernel)
    assert observed["r1_after_acquire"] == 42.0


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_barrier_synchrony(iface):
    cluster = make_cluster(4, iface)
    times = {}

    def kernel(ctx):
        yield from ctx.compute(1000 * (ctx.rank + 1))  # skewed arrivals
        yield from ctx.barrier()
        times[ctx.rank] = ctx.sim.now

    cluster.run(kernel)
    latest_departure = max(times.values())
    earliest_departure = min(times.values())
    # all depart after the slowest arrival (compute of rank 3)
    slowest_arrival = 4000 * SimParams().cpu_cycle_ns
    assert earliest_departure >= slowest_arrival


def test_full_page_vs_diff_fetch_policy():
    """Rewriting most of a page migrates it whole; touching a corner of
    it moves diffs."""
    # Case 1: full rewrite -> page fetch
    c1 = make_cluster(2, "cni")
    a1 = c1.alloc_shared((512,))
    b1 = a1.base_vaddr

    def whole(ctx):
        if ctx.rank == 0:
            yield from ctx.write_runs([(b1, 4096)])
            a1.data[:] = 7.0
        yield from ctx.barrier()
        if ctx.rank == 1:
            yield from ctx.read_runs([(b1, 4096)])
        yield from ctx.barrier()

    s1 = c1.run(whole)
    # rank1 faults twice: cold (full fetch) happens at first access...
    # here rank1 only reads after the barrier; the write notice makes it
    # fetch the whole page.
    assert s1.counters["dsm_diff_fetches"] == 0
    assert s1.counters["dsm_page_fetches"] >= 1

    # Case 2: small corner write after both have copies -> diff fetch
    c2 = make_cluster(2, "cni")
    a2 = c2.alloc_shared((512,))
    b2 = a2.base_vaddr

    def corner(ctx):
        # both warm up a full copy first
        yield from ctx.read_runs([(b2, 4096)])
        yield from ctx.barrier()
        if ctx.rank == 0:
            yield from ctx.write_runs([(b2, 64)])
            a2.data[:8] = 3.0
        yield from ctx.barrier()
        if ctx.rank == 1:
            yield from ctx.read_runs([(b2, 64)])
            assert a2.data[0] == 3.0
        yield from ctx.barrier()

    s2 = c2.run(corner)
    assert s2.counters["dsm_diff_fetches"] >= 1


def test_concurrent_writers_exchange_diffs_not_pages():
    cluster = make_cluster(2, "cni")
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        r = ctx.rank
        yield from ctx.read_runs([(base, 4096)])  # both get full copies
        yield from ctx.barrier()
        yield from ctx.write_runs([(base + r * 2048, 256)])
        arr.data[r * 256:(r * 256) + 32] = r + 1.0
        yield from ctx.barrier()
        other = 1 - r
        yield from ctx.read_runs([(base + other * 2048, 256)])
        assert arr.data[other * 256] == other + 1.0
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert stats.counters["dsm_diff_fetches"] >= 2


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_page_migration_chain(iface):
    """A page hopping 0 -> 1 -> 2 -> 3, each hop reading the previous
    writer's value (exercises source chasing and receive caching)."""
    cluster = make_cluster(4, iface)
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        r = ctx.rank
        for step in range(4):
            if step == r:
                yield from ctx.write_runs([(base, 4096)])
                arr.data[:] = r + 1.0
            yield from ctx.barrier()
        yield from ctx.read_runs([(base, 8)])
        assert arr.data[0] == 4.0
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert stats.counters["dsm_pages_served"] >= 3


def test_cni_beats_standard_on_identical_workload():
    """The paper's headline invariant at this scale: same program, same
    inputs, CNI finishes no later than the standard interface."""
    results = {}
    for iface in ("cni", "standard"):
        cluster = make_cluster(4, iface)
        arr = cluster.alloc_shared((4, 512))
        base = arr.base_vaddr
        row = 4096

        def kernel(ctx, base=base, arr=arr):
            r = ctx.rank
            for _ in range(3):
                yield from ctx.write_runs([(base + r * row, row)])
                arr.data[r, :] += 1.0
                yield from ctx.barrier()
                nb = (r + 1) % ctx.nprocs
                yield from ctx.read_runs([(base + nb * row, row)])
                yield from ctx.barrier()

        results[iface] = cluster.run(kernel).elapsed_ns
    assert results["cni"] < results["standard"]


def test_message_cache_hits_on_repeated_page_serves():
    """Steady-state transmit caching: the same page served repeatedly by
    the same node stops DMAing after the first send."""
    cluster = make_cluster(2, "cni")
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        r = ctx.rank
        for it in range(5):
            if r == 0:
                yield from ctx.write_runs([(base, 4096)])
                arr.data[:] = it
            yield from ctx.barrier()
            if r == 1:
                yield from ctx.read_runs([(base, 4096)])
            yield from ctx.barrier()

    stats = cluster.run(kernel)
    # page 0 is written by node 0 every iteration; snooping keeps the
    # board copy consistent, so serves after the first are MC hits.
    assert stats.network_cache_hit_ratio > 0.5


def test_snooping_ablation_degrades_hit_ratio():
    def run(snoop: bool):
        params = SimParams().replace(
            num_processors=2, dsm_address_space_pages=64, snoop_enabled=snoop
        )
        cluster = Cluster(params, interface="cni")
        arr = cluster.alloc_shared((512,))
        base = arr.base_vaddr

        def kernel(ctx):
            r = ctx.rank
            for it in range(5):
                if r == 0:
                    yield from ctx.write_runs([(base, 4096)])
                    arr.data[:] = it
                yield from ctx.barrier()
                if r == 1:
                    yield from ctx.read_runs([(base, 4096)])
                yield from ctx.barrier()

        return cluster.run(kernel).network_cache_hit_ratio

    assert run(True) > run(False)
