"""Unit tests for page state machines and the shared segment."""

import numpy as np
import pytest

from repro.dsm import NodePageTable, PageState, SharedSegment
from repro.memory import AddressSpace


def table(npages=8, self_id=0, nprocs=4):
    return NodePageTable(npages, lambda p: p % nprocs, self_id)


def test_initial_state():
    t = table()
    assert t[0].state == PageState.INVALID
    assert t[5].source == 1  # home of page 5 with 4 procs


def test_own_notice_is_ignored():
    t = table(self_id=0)
    t[0].state = PageState.VALID_RO
    assert not t.apply_notice(0, proc=0, seq=1, modified_bytes=10)
    assert t[0].state == PageState.VALID_RO
    assert not t[0].pending_diffs


def test_foreign_notice_makes_copy_stale():
    t = table(self_id=0)
    t[2].state = PageState.VALID_RO
    t[2].ever_valid = True
    went_stale = t.apply_notice(2, proc=1, seq=1, modified_bytes=100)
    assert went_stale
    assert t[2].pending_diffs == {(1, 1): 100}
    assert t[2].source == 1
    # the copy itself survives (reconstructible via diffs)
    assert t[2].state == PageState.VALID_RO


def test_second_notice_not_reported_stale_again():
    t = table(self_id=0)
    t[2].state = PageState.VALID_RO
    assert t.apply_notice(2, proc=1, seq=1, modified_bytes=10)
    assert not t.apply_notice(2, proc=2, seq=1, modified_bytes=10)
    assert len(t[2].pending_diffs) == 2


def test_notice_on_invalid_page_accumulates():
    t = table(self_id=0)
    assert not t.apply_notice(3, proc=1, seq=1, modified_bytes=10)
    assert t[3].state == PageState.INVALID
    assert t[3].pending_diffs


def test_install_full_copy_subsumes_pending():
    t = table(self_id=0)
    t.apply_notice(3, proc=1, seq=1, modified_bytes=10)
    t.install_full_copy(3)
    assert t[3].state == PageState.VALID_RO
    assert t[3].ever_valid
    assert not t[3].pending_diffs


def test_apply_diffs_clears_selected():
    t = table(self_id=0)
    t[2].state = PageState.VALID_RO
    t.apply_notice(2, proc=1, seq=1, modified_bytes=10)
    t.apply_notice(2, proc=2, seq=1, modified_bytes=10)
    t.apply_diffs(2, [(1, 1)])
    assert t[2].pending_diffs == {(2, 1): 10}
    t.apply_diffs(2, [(2, 1), (9, 9)])  # unknown keys are fine
    assert not t[2].pending_diffs


def test_make_writable_and_downgrade():
    t = table(self_id=0)
    t[1].state = PageState.VALID_RO
    t.make_writable(1)
    assert t[1].state == PageState.WRITABLE
    assert t[1].twin_live
    downgraded = t.end_interval_downgrade()
    assert downgraded == [1]
    assert t[1].state == PageState.VALID_RO
    assert not t[1].twin_live


def test_make_writable_requires_valid_copy():
    t = table(self_id=0)
    with pytest.raises(ValueError):
        t.make_writable(0)


def test_pages_in_state():
    t = table()
    t[1].state = PageState.VALID_RO
    t[4].state = PageState.VALID_RO
    assert t.pages_in_state(PageState.VALID_RO) == [1, 4]


# ----------------------------------------------------------- shared segment --

def segment(pages=16, page_size=4096):
    return SharedSegment(AddressSpace(page_size=page_size, dsm_pages=pages))


def test_alloc_page_aligned():
    seg = segment()
    a = seg.alloc((512,))  # exactly one page of float64
    b = seg.alloc((10,))
    assert a.first_page == 0 and a.n_pages == 1
    assert b.first_page == 1  # next allocation starts on a fresh page
    assert seg.pages_allocated == 2


def test_alloc_multi_page():
    seg = segment()
    a = seg.alloc((3, 512))
    assert a.n_pages == 3
    assert a.data.shape == (3, 512)
    assert a.data.dtype == np.float64


def test_alloc_exhaustion():
    seg = segment(pages=2)
    seg.alloc((512,))
    seg.alloc((512,))
    with pytest.raises(MemoryError):
        seg.alloc((1,))


def test_vaddr_roundtrip():
    seg = segment()
    a = seg.alloc((512,))
    assert a.base_vaddr == seg.page_vaddr(a.first_page)
    assert a.byte_offset_to_page(0) == a.first_page
    with pytest.raises(ValueError):
        a.byte_offset_to_page(4096)


def test_alloc_dtype():
    seg = segment()
    a = seg.alloc((100,), dtype=np.int32)
    assert a.data.dtype == np.int32
    assert a.n_pages == 1
