"""Randomized stress tests of the full DSM stack.

Hypothesis drives random-but-well-synchronized SPMD programs through
real clusters and checks global invariants: termination (no protocol
deadlock), no lost updates, protocol-state hygiene, and bit-exact
determinism of the simulation itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import assert_healthy
from repro.params import SimParams
from repro.runtime import Cluster

BUCKETS = 4
SLOTS = 64  # doubles per bucket


def build(nprocs, iface):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=32
    )
    cluster = Cluster(params, interface=iface)
    arr = cluster.alloc_shared((BUCKETS, SLOTS))
    return cluster, arr


def run_program(nprocs, iface, script):
    """script[round][rank] = list of (bucket, slot) increments."""
    cluster, arr = build(nprocs, iface)
    base = arr.base_vaddr

    def kernel(ctx):
        for rnd in script:
            ops = rnd[ctx.rank]
            for bucket, slot in ops:
                yield from ctx.acquire(bucket)
                off = (bucket * SLOTS + slot) * 8
                yield from ctx.read_runs([(base + off, 8)])
                v = arr.data[bucket, slot]
                yield from ctx.write_runs([(base + off, 8)])
                arr.data[bucket, slot] = v + 1
                yield from ctx.release(bucket)
            yield from ctx.barrier()

    stats = cluster.run(kernel)
    return cluster, arr, stats


@st.composite
def programs(draw):
    nprocs = draw(st.sampled_from([2, 3, 4]))
    n_rounds = draw(st.integers(1, 3))
    script = []
    for _ in range(n_rounds):
        rnd = []
        for _rank in range(nprocs):
            n_ops = draw(st.integers(0, 4))
            ops = [
                (draw(st.integers(0, BUCKETS - 1)),
                 draw(st.integers(0, SLOTS - 1)))
                for _ in range(n_ops)
            ]
            rnd.append(ops)
        script.append(rnd)
    return nprocs, script


@given(programs(), st.sampled_from(["cni", "standard"]))
@settings(max_examples=25, deadline=None)
def test_no_lost_updates_and_termination(prog, iface):
    nprocs, script = prog
    cluster, arr, stats = run_program(nprocs, iface, script)

    expected = np.zeros((BUCKETS, SLOTS))
    for rnd in script:
        for ops in rnd:
            for bucket, slot in ops:
                expected[bucket, slot] += 1
    assert np.array_equal(arr.data, expected)

    # full protocol hygiene after the run (invariant checker)
    assert_healthy(cluster)


@given(programs())
@settings(max_examples=10, deadline=None)
def test_simulation_is_deterministic(prog):
    nprocs, script = prog
    a = run_program(nprocs, "cni", script)
    b = run_program(nprocs, "cni", script)
    assert a[2].elapsed_ns == b[2].elapsed_ns
    assert a[2].counters.as_dict() == b[2].counters.as_dict()


@given(programs())
@settings(max_examples=8, deadline=None)
def test_vc_consistency_after_run(prog):
    """After the final barrier, everyone agrees on everyone's intervals."""
    nprocs, script = prog
    cluster, _, _ = run_program(nprocs, "cni", prog[1])
    vcs = [node.engine.vc.as_list() for node in cluster.nodes]
    # own components must be globally maximal knowledge
    for proc in range(nprocs):
        own = cluster.nodes[proc].engine.vc[proc]
        for other in vcs:
            assert other[proc] == own


def test_interleaved_barrier_ids():
    cluster, arr = build(3, "cni")

    def kernel(ctx):
        for _ in range(3):
            yield from ctx.barrier(0)
            yield from ctx.barrier(1)

    cluster.run(kernel)  # completes without mixing episodes
