"""Tests for the eager-RC protocol variant."""

import numpy as np
import pytest

from repro.dsm import assert_healthy
from repro.params import SimParams
from repro.runtime import Cluster


def make_cluster(nprocs=4, iface="cni", proto="eager"):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=64
    )
    return Cluster(params, interface=iface, protocol=proto)


def neighbour_kernel(arr, base):
    def kernel(ctx):
        r = ctx.rank
        for it in range(3):
            yield from ctx.write_runs([(base + r * 4096, 4096)])
            arr.data[r] = it * 10 + r
            yield from ctx.barrier()
            nb = (r + 1) % ctx.nprocs
            yield from ctx.read_runs([(base + nb * 4096, 64)])
            assert arr.data[nb, 0] == it * 10 + nb
            yield from ctx.barrier()
    return kernel


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        make_cluster(proto="psychic")


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_eager_coherence(iface):
    cluster = make_cluster(4, iface)
    arr = cluster.alloc_shared((4, 512))
    cluster.run(neighbour_kernel(arr, arr.base_vaddr))
    assert_healthy(cluster)


def test_eager_broadcasts_at_release():
    cluster = make_cluster(4)
    arr = cluster.alloc_shared((4, 512))
    stats = cluster.run(neighbour_kernel(arr, arr.base_vaddr))
    # every writing release broadcast to the other 3 nodes
    assert stats.counters["dsm_eager_invalidations"] > 0
    assert stats.counters["dsm_eager_invalidations"] % 3 == 0


def test_eager_sends_more_messages_than_lazy():
    def run(proto):
        cluster = make_cluster(4, proto=proto)
        arr = cluster.alloc_shared((4, 512))
        return cluster.run(neighbour_kernel(arr, arr.base_vaddr))

    lazy = run("lazy")
    eager = run("eager")
    assert eager.counters["nic_packets_sent"] > lazy.counters["nic_packets_sent"]
    # and the extra traffic costs time (the paper's justification)
    assert eager.elapsed_ns >= lazy.elapsed_ns


def test_eager_lock_grants_carry_no_intervals():
    cluster = make_cluster(2)
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr
    seen = {}

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.acquire(3)
            yield from ctx.write_runs([(base, 64)])
            arr.data[0] = 9.0
            yield from ctx.release(3)
            yield from ctx.barrier()
        else:
            yield from ctx.barrier()
            yield from ctx.acquire(3)
            yield from ctx.read_runs([(base, 64)])
            seen["v"] = float(arr.data[0])
            yield from ctx.release(3)

    cluster.run(kernel)
    assert seen["v"] == 9.0  # invalidation arrived eagerly, fetch worked


def test_eager_single_node_no_broadcast():
    cluster = make_cluster(1)
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        yield from ctx.write_runs([(base, 64)])
        arr.data[0] = 1.0
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert stats.counters["dsm_eager_invalidations"] == 0
