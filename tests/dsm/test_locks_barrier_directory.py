"""Unit tests for lock tables, barrier manager and home policy."""

import pytest

from repro.collectives import CollectiveError
from repro.dsm import (
    BarrierManager,
    HomePolicy,
    Interval,
    LocalLockTable,
    LockManagerTable,
    WriteNotice,
)


def iv(proc, seq):
    return Interval(proc=proc, seq=seq, notices=())


# ---------------------------------------------------------------- lock tables --

def test_manager_record_get_or_create():
    t = LockManagerTable()
    r1 = t.record(5)
    r2 = t.record(5)
    assert r1 is r2
    assert r1.last_owner is None


def test_local_state_defaults():
    t = LocalLockTable()
    st = t.state(3)
    assert not st.held and st.released
    assert not st.acquiring and not st.cached_ownership
    assert st.pending_requester is None


def test_held_locks():
    t = LocalLockTable()
    t.state(1).held = True
    t.state(2)
    t.state(7).held = True
    assert t.held_locks() == [1, 7]


# ------------------------------------------------------------------- barrier --

def test_barrier_gathers_and_completes():
    mgr = BarrierManager(3)
    mgr.arrive(0, 0, [iv(0, 1)])
    assert not mgr.is_complete(0)
    mgr.arrive(0, 1, [])
    mgr.arrive(0, 2, [iv(2, 1)])
    assert mgr.is_complete(0)
    ep = mgr.complete(0)
    assert {(i.proc, i.seq) for i in ep.intervals} == {(0, 1), (2, 1)}
    assert ep.episode == 1


def test_barrier_double_arrival_rejected():
    mgr = BarrierManager(2)
    mgr.arrive(0, 0, [])
    with pytest.raises(CollectiveError):
        mgr.arrive(0, 0, [])


def test_barrier_unknown_participant_rejected():
    mgr = BarrierManager(2)
    with pytest.raises(CollectiveError):
        mgr.arrive(0, 2, [])
    with pytest.raises(CollectiveError):
        mgr.arrive(0, -1, [])
    # CollectiveError subclasses ValueError: legacy handlers still catch.
    assert issubclass(CollectiveError, ValueError)


def test_barrier_premature_complete_rejected():
    mgr = BarrierManager(2)
    mgr.arrive(0, 0, [])
    with pytest.raises(RuntimeError):
        mgr.complete(0)


def test_barrier_episodes_increment():
    mgr = BarrierManager(1)
    mgr.arrive(0, 0, [])
    assert mgr.complete(0).episode == 1
    mgr.arrive(0, 0, [])
    assert mgr.complete(0).episode == 2
    assert mgr.crossings == 2


def test_barrier_ids_independent():
    mgr = BarrierManager(2)
    mgr.arrive(0, 0, [])
    mgr.arrive(1, 0, [])
    mgr.arrive(1, 1, [])
    assert mgr.is_complete(1) and not mgr.is_complete(0)


def test_barrier_validation():
    with pytest.raises(CollectiveError):
        BarrierManager(0)


# ---------------------------------------------------------------- home policy --

def test_round_robin_homes():
    h = HomePolicy(4)
    assert [h.page_home(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]
    assert h.lock_home(5) == 1
    assert h.barrier_manager == 0


def test_node0_scheme():
    h = HomePolicy(4, scheme="node0")
    assert all(h.page_home(p) == 0 for p in range(10))
    assert h.lock_home(7) == 0


def test_block_scheme():
    h = HomePolicy(4, scheme="block")
    h.set_page_count(100)
    assert h.page_home(0) == 0
    assert h.page_home(99) == 3
    homes = [h.page_home(p) for p in range(100)]
    assert homes == sorted(homes)


def test_bulk_table_agrees_with_per_page_lookup():
    """page_homes (the cluster's bulk path) must agree with page_home
    page-for-page across schemes, allocation extents and table sizes."""
    for nprocs in (1, 3, 4):
        for scheme in ("round_robin", "block", "node0"):
            for npages in (1, 7, 64, 257):
                h = HomePolicy(nprocs, scheme=scheme)
                assert h.page_homes(npages) == \
                    [h.page_home(p) for p in range(npages)]
                h.set_page_count(npages)
                assert h.page_homes(npages) == \
                    [h.page_home(p) for p in range(npages)]
                h.set_allocations([(0, 5), (10, 3), (40, 20)])
                assert h.page_homes(npages) == \
                    [h.page_home(p) for p in range(npages)]


def test_bulk_table_cache_invalidates_on_allocation_change():
    h = HomePolicy(4, scheme="block")
    h.set_page_count(64)
    before = list(h.page_homes(64))
    h.set_allocations([(0, 64)])
    after = h.page_homes(64)
    assert after == [h.page_home(p) for p in range(64)]
    assert before != after or h.page_homes(64) is after


def test_policy_validation():
    with pytest.raises(ValueError):
        HomePolicy(0)
    with pytest.raises(ValueError):
        HomePolicy(4, scheme="bogus")
    h = HomePolicy(4)
    with pytest.raises(ValueError):
        h.page_home(-1)
    with pytest.raises(ValueError):
        h.lock_home(-1)


def test_block_scheme_respects_allocations():
    h = HomePolicy(4, scheme="block")
    h.set_page_count(1000)
    # two allocations: pages [0,16) and [16,32)
    h.set_allocations([(0, 16), (16, 16)])
    # each allocation is divided among the 4 nodes independently
    assert [h.page_home(p) for p in (0, 4, 8, 12)] == [0, 1, 2, 3]
    assert [h.page_home(p) for p in (16, 20, 24, 28)] == [0, 1, 2, 3]
    # a page outside any allocation falls back to the global split
    assert h.page_home(999) == 3


def test_block_scheme_without_allocations_uses_page_count():
    h = HomePolicy(2, scheme="block")
    h.set_page_count(10)
    assert h.page_home(0) == 0
    assert h.page_home(9) == 1


def test_set_allocations_ignores_empty_extents():
    h = HomePolicy(2, scheme="block")
    h.set_allocations([(0, 0), (4, 4)])
    h.set_page_count(100)
    assert h.page_home(4) == 0
    assert h.page_home(7) == 1
