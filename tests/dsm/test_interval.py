"""Unit tests for intervals, write notices, the log and the collector."""

import pytest

from repro.dsm import (
    Interval,
    IntervalLog,
    NOTICE_WIRE_BYTES,
    WriteCollector,
    WriteNotice,
)


def notice(page=1, proc=0, seq=1, nbytes=64):
    return WriteNotice(page=page, proc=proc, seq=seq, modified_bytes=nbytes)


def interval(proc, seq, pages=(1,)):
    return Interval(
        proc=proc, seq=seq,
        notices=tuple(notice(page=p, proc=proc, seq=seq) for p in pages),
    )


def test_notice_validation():
    with pytest.raises(ValueError):
        WriteNotice(page=-1, proc=0, seq=1, modified_bytes=0)
    with pytest.raises(ValueError):
        WriteNotice(page=0, proc=0, seq=0, modified_bytes=0)
    with pytest.raises(ValueError):
        WriteNotice(page=0, proc=0, seq=1, modified_bytes=-1)


def test_interval_notice_ownership():
    with pytest.raises(ValueError):
        Interval(proc=0, seq=2, notices=(notice(proc=1, seq=2),))
    with pytest.raises(ValueError):
        Interval(proc=0, seq=2, notices=(notice(proc=0, seq=1),))


def test_interval_wire_bytes():
    iv = interval(0, 1, pages=(1, 2, 3))
    assert iv.wire_bytes == 12 + 3 * NOTICE_WIRE_BYTES


def test_log_records_in_order():
    log = IntervalLog(2)
    assert log.record(interval(0, 1))
    assert log.record(interval(0, 2))
    assert not log.record(interval(0, 2))  # duplicate
    assert not log.record(interval(0, 1))  # old
    assert log.known_seq(0) == 2
    assert log.known_seq(1) == 0


def test_log_rejects_gaps():
    log = IntervalLog(2)
    log.record(interval(0, 1))
    with pytest.raises(ValueError):
        log.record(interval(0, 3))
    with pytest.raises(ValueError):
        IntervalLog(2).record(interval(0, 2))  # first must be seq 1


def test_missing_for():
    log = IntervalLog(3)
    for s in (1, 2, 3):
        log.record(interval(0, s))
    log.record(interval(2, 1))
    missing = log.missing_for([1, 0, 0])
    assert [(iv.proc, iv.seq) for iv in missing] == [(0, 2), (0, 3), (2, 1)]
    assert log.missing_for([3, 0, 1]) == []


def test_intervals_of():
    log = IntervalLog(2)
    log.record(interval(1, 1))
    assert [iv.seq for iv in log.intervals_of(1)] == [1]
    assert log.intervals_of(0) == []


def test_collector_records_and_drains():
    c = WriteCollector(page_size=4096)
    c.record_write(3, 0, 100)
    c.record_write(3, 50, 100)  # overlaps
    c.record_write(7, 4000, 96)
    assert c.dirty_pages == [3, 7]
    assert c.modified_bytes(3) == 150
    assert c.modified_bytes(7) == 96
    assert c.modified_bytes(99) == 0
    assert bool(c)
    out = c.drain()
    assert out == {3: 150, 7: 96}
    assert not c
    assert c.drain() == {}


def test_collector_clamps_to_page():
    c = WriteCollector(page_size=4096)
    c.record_write(0, 4000, 500)  # spills past the page end
    assert c.modified_bytes(0) == 96


def test_collector_offset_validation():
    c = WriteCollector(page_size=4096)
    with pytest.raises(ValueError):
        c.record_write(0, 4096, 1)
    with pytest.raises(ValueError):
        c.record_write(0, -1, 1)
