"""Unit + property tests for vector clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm import VectorClock


def test_construction():
    vc = VectorClock(4)
    assert vc.nprocs == 4
    assert vc.as_list() == [0, 0, 0, 0]
    assert VectorClock(values=[1, 2]).as_list() == [1, 2]
    with pytest.raises(ValueError):
        VectorClock(0)


def test_tick():
    vc = VectorClock(3)
    assert vc.tick(1) == 1
    assert vc.tick(1) == 2
    assert vc[1] == 2 and vc[0] == 0


def test_merge_is_componentwise_max():
    a = VectorClock(values=[3, 0, 5])
    b = VectorClock(values=[1, 4, 5])
    a.merge(b)
    assert a.as_list() == [3, 4, 5]


def test_dominates_and_concurrent():
    a = VectorClock(values=[2, 2])
    b = VectorClock(values=[1, 2])
    c = VectorClock(values=[3, 0])
    assert a.dominates(b) and not b.dominates(a)
    assert a.concurrent_with(c)
    assert a.dominates(a.copy())


def test_covers():
    vc = VectorClock(values=[0, 3])
    assert vc.covers(1, 3)
    assert vc.covers(1, 1)
    assert not vc.covers(1, 4)
    assert not vc.covers(0, 1)


def test_width_mismatch():
    with pytest.raises(ValueError):
        VectorClock(2).merge(VectorClock(3))


def test_eq_and_copy_independence():
    a = VectorClock(values=[1, 2])
    b = a.copy()
    assert a == b
    b.tick(0)
    assert a != b


def test_unhashable():
    with pytest.raises(TypeError):
        hash(VectorClock(2))


def test_wire_bytes():
    assert VectorClock(8).wire_bytes == 64


vecs = st.lists(st.integers(0, 50), min_size=3, max_size=3)


@given(a=vecs, b=vecs, c=vecs)
def test_merge_is_lub_property(a, b, c):
    """merge(a,b) is the least upper bound: dominates both, and any
    common dominator dominates it."""
    va, vb = VectorClock(values=a), VectorClock(values=b)
    m = va.copy()
    m.merge(vb)
    assert m.dominates(va) and m.dominates(vb)
    vc = VectorClock(values=c)
    if vc.dominates(va) and vc.dominates(vb):
        assert vc.dominates(m)


@given(a=vecs, b=vecs)
def test_partial_order_antisymmetry(a, b):
    va, vb = VectorClock(values=a), VectorClock(values=b)
    if va.dominates(vb) and vb.dominates(va):
        assert va == vb
