"""Tests for the messaging runtime's protocol layer (docs/runtime.md):
eager/rendezvous dispatch, one-sided RDMA, edge cases, determinism."""

import pytest

from repro.apps import (
    HaloConfig,
    PingPongConfig,
    TransposeConfig,
    run_pingpong,
)
from repro.engine import SimulationError
from repro.faults import CellLoss, FaultPlan
from repro.harness import RunSpec, run_map
from repro.obs import aggregate_nodes
from repro.params import SimParams
from repro.runtime import Cluster, MessagingService


def make_cluster(iface, nprocs=2, **over):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=16, **over
    )
    return Cluster(params, interface=iface)


# ------------------------------------------------------- protocol dispatch --

def _pingpong_counts(message_bytes, threshold, rounds=2):
    stats, _ = run_pingpong(
        SimParams().replace(num_processors=2,
                            rendezvous_threshold=threshold),
        "cni", PingPongConfig(rounds=rounds, message_bytes=message_bytes))
    agg = aggregate_nodes(stats.metrics)
    return agg["runtime.eager_sends"], agg["runtime.rendezvous_sends"]


def test_threshold_boundary_is_inclusive():
    """size == threshold is still eager; threshold + 1 goes rendezvous."""
    eager, rdv = _pingpong_counts(2048, threshold=2048)
    assert (eager, rdv) == (4, 0)
    eager, rdv = _pingpong_counts(2049, threshold=2048)
    assert (eager, rdv) == (0, 4)


def test_zero_threshold_forces_rendezvous():
    eager, rdv = _pingpong_counts(64, threshold=0)
    assert (eager, rdv) == (0, 4)


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_rendezvous_delivers_large_payload(iface):
    """A 12 KB message (3 chunks) arrives once, intact, in order."""
    cluster = make_cluster(iface)
    got = []

    def kernel(ctx):
        svc = MessagingService(ctx)
        if ctx.rank == 0:
            yield from svc.send(1, 12288, payload=("big", 1))
        else:
            desc = yield from svc.recv()
            got.append(desc)
        yield from ctx.barrier(0)

    stats = cluster.run(kernel)
    (desc,) = got
    assert desc.length == 12288
    assert desc.payload == ("big", 1)
    agg = aggregate_nodes(stats.metrics)
    assert agg["runtime.rendezvous_sends"] == 1
    assert agg["runtime.rts_sent"] == 1
    assert agg["runtime.cts_sent"] == 1
    assert agg["runtime.rdv_chunks"] == 3


def test_rendezvous_send_not_bounded_by_buffer_bytes():
    """Eager is capped by buffer_bytes; rendezvous is not."""
    cluster = make_cluster("cni")

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=1024)
        if ctx.rank == 0:
            with pytest.raises(ValueError):
                yield from svc.send_eager(1, 2048)
            yield from svc.send(1, 65536)  # rendezvous: fine
        else:
            desc = yield from svc.recv()
            assert desc.length == 65536
        yield from ctx.barrier(0)

    cluster.run(kernel)


# ---------------------------------------------------------------- buffering --

def test_receive_buffer_exhaustion_drops_and_recovers():
    """With one posted buffer and a busy receiver, extra eager arrivals
    drop on the free queue (counted), and a recv re-posts the buffer."""
    cluster = make_cluster("cni")
    got = []

    def kernel(ctx):
        svc = MessagingService(ctx, n_recv_buffers=1, buffer_bytes=4096)
        if ctx.rank == 0:
            for i in range(3):
                yield from svc.send(1, 4096, payload=i)
            yield from ctx.compute(50_000_000)
            yield from svc.send(1, 4096, payload=3)
        else:
            yield from ctx.compute(5_000_000)
            desc = yield from svc.recv()
            got.append(desc.payload)
            desc = yield from svc.recv()
            got.append(desc.payload)

    stats = cluster.run(kernel)
    # First arrival took the only buffer; arrivals 2 and 3 found the
    # free queue empty and were dropped.
    assert stats.counters["nic_no_free_buffer"] == 2
    assert got == [0, 3]


def test_rendezvous_immune_to_free_queue_exhaustion():
    """Rendezvous data bypasses the free queue (engine-allocated landing
    buffer), so a busy receiver with one posted buffer loses nothing."""
    cluster = make_cluster("cni")
    got = []

    def kernel(ctx):
        svc = MessagingService(ctx, n_recv_buffers=1, buffer_bytes=4096)
        if ctx.rank == 0:
            for i in range(3):
                yield from svc.send(1, 8192, payload=i)
        else:
            yield from ctx.compute(5_000_000)
            for _ in range(3):
                desc = yield from svc.recv()
                got.append(desc.payload)
        yield from ctx.barrier(0)

    stats = cluster.run(kernel)
    assert got == [0, 1, 2]
    assert stats.counters["nic_no_free_buffer"] == 0


# -------------------------------------------------------------- reliability --

def test_unacked_sends_drain_under_loss():
    """With the reliable transport on and a lossy fabric, every node's
    retransmission window is empty once the run completes."""
    # Deterministic sparse loss: every 200th cell.  A random rate would
    # occasionally kill the same retransmitted train 10 times in a row
    # and trip DeliveryFailed; nth loss spreads drops across the run.
    plan = FaultPlan(seed=7, schedules=(CellLoss(nth=200),))
    cluster = make_cluster("cni", reliable_transport=True, fault_plan=plan)
    leftover = {}

    def kernel(ctx):
        svc = MessagingService(ctx)
        peer = 1 - ctx.rank
        for r in range(4):
            if ctx.rank == 0:
                yield from svc.send(peer, 6144, payload=r)
                desc = yield from svc.recv()
                assert desc.payload == r
            else:
                desc = yield from svc.recv()
                assert desc.payload == r
                yield from svc.send(peer, 6144, payload=r)
        yield from ctx.barrier(0)
        # Barrier traffic is reliable too; drain anything still in
        # flight before sampling.
        while svc.unacked_sends():
            yield from ctx.idle(1000)
        leftover[ctx.rank] = svc.unacked_sends()

    stats = cluster.run(kernel)
    assert leftover == {0: 0, 1: 0}
    # The plan actually did damage, or this test proves nothing.
    agg = aggregate_nodes(stats.metrics)
    assert agg["faults.cells_dropped"] > 0


# ------------------------------------------------------------------- RDMA --

def test_remote_read_and_write_round_trip():
    cluster = make_cluster("cni")
    seen = {}

    def kernel(ctx):
        svc = MessagingService(ctx)
        window = svc.expose(4096)
        yield from ctx.barrier(0)
        if ctx.rank == 0:
            got = yield from svc.remote_read(1, window, 4096)
            seen["read_bytes"] = got
            yield from svc.remote_write(1, window, 2048)
        yield from ctx.barrier(1)

    stats = cluster.run(kernel)
    assert seen["read_bytes"] == 4096
    agg = aggregate_nodes(stats.metrics)
    assert agg["runtime.remote_reads"] == 1
    assert agg["runtime.remote_writes"] == 1
    assert agg["runtime.rdma_bytes"] == 4096 + 2048


def test_remote_read_mcache_advantage_on_cni():
    """Repeated reads of an unmodified window: the CNI's reply path hits
    the target's Message Cache; the standard interface has no cache."""
    def hit_ratio(iface):
        stats, _ = run_pingpong(
            SimParams().replace(num_processors=2), iface,
            PingPongConfig(rounds=6, message_bytes=2048, mode="read"))
        lookups = stats.counters.get("mc_transmit_lookups")
        return (stats.counters.get("mc_transmit_hits") / lookups
                if lookups else 0.0)

    assert hit_ratio("cni") > hit_ratio("standard")
    assert hit_ratio("standard") == 0.0


def test_unregistered_window_faults_loudly():
    """A one-sided access outside any exposed window is a simulation
    error on the target, not a silent wild DMA."""
    cluster = make_cluster("cni")

    def kernel(ctx):
        svc = MessagingService(ctx)
        window = svc.expose(4096)
        yield from ctx.barrier(0)
        if ctx.rank == 0:
            # One byte past the end of the registered range.
            yield from svc.remote_read(1, window + 1, 4096)
        yield from ctx.barrier(1)

    with pytest.raises(SimulationError, match="remote_read"):
        cluster.run(kernel)


# ------------------------------------------------------------- determinism --

def test_messaging_workloads_digest_deterministic_across_jobs():
    base = SimParams().replace(num_processors=4)
    specs = [
        RunSpec("pingpong", base.replace(num_processors=2), "cni",
                PingPongConfig(rounds=3, message_bytes=6144)),
        RunSpec("halo", base, "cni", HaloConfig(iters=2, halo_bytes=1024)),
        RunSpec("transpose", base, "standard",
                TransposeConfig(rounds=1, block_bytes=8192)),
    ]
    serial = run_map(specs, jobs=1, record=False)
    parallel = run_map(specs, jobs=2, record=False)
    assert [s.digest() for s in serial] == [s.digest() for s in parallel]
