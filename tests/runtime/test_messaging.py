"""Integration tests for user-level messaging over the NICs."""

import pytest

from repro.params import SimParams
from repro.runtime import Cluster, MessagingService


def make_cluster(iface, **over):
    params = SimParams().replace(
        num_processors=2, dsm_address_space_pages=16, **over
    )
    return Cluster(params, interface=iface)


@pytest.mark.parametrize("iface", ["cni", "standard"])
def test_ping_pong_delivers_payload(iface):
    cluster = make_cluster(iface)
    got = {}

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=4096)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(1024)
            yield from svc.send(1, 1024, payload={"msg": "ping"})
            desc = yield from svc.recv()
            got["reply"] = desc.payload
        else:
            desc = yield from svc.recv()
            got["request"] = desc.payload
            yield from svc.touch_send_buffer(64)
            yield from svc.send(0, 64, payload={"msg": "pong"})

    cluster.run(kernel)
    assert got["request"] == {"msg": "ping"}
    assert got["reply"] == {"msg": "pong"}


def test_cni_ping_latency_beats_standard():
    def one_way_ns(iface):
        cluster = make_cluster(iface)
        t = {}

        def kernel(ctx):
            svc = MessagingService(ctx, buffer_bytes=4096)
            if ctx.rank == 0:
                yield from svc.touch_send_buffer(4096)
                # warm the Message Cache with a first send
                yield from svc.send(1, 4096)
                yield from svc.send(1, 4096)
            else:
                yield from svc.recv()
                t["start"] = ctx.sim.now  # not exact; use counters below
                yield from svc.recv()
                t["end"] = ctx.sim.now

        cluster.run(kernel)
        return t["end"] - t["start"]

    assert one_way_ns("cni") < one_way_ns("standard")


def test_send_larger_than_buffer_rejected():
    cluster = make_cluster("cni")

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=1024)
        if ctx.rank == 0:
            with pytest.raises(ValueError):
                yield from svc.send(1, 2048)
            yield from svc.send(1, 512)
        else:
            yield from svc.recv()

    cluster.run(kernel)


def test_message_cache_hit_on_resend_cni():
    cluster = make_cluster("cni")

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=4096)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(4096)
            for _ in range(4):
                yield from svc.send(1, 4096)
        else:
            for _ in range(4):
                yield from svc.recv()

    stats = cluster.run(kernel)
    # 4 sends of the same unmodified buffer: first misses, rest hit
    assert stats.counters["mc_transmit_lookups"] == 4
    assert stats.counters["mc_transmit_hits"] == 3


def test_modifying_buffer_between_sends_stays_hit_with_snooping():
    """The snooper absorbs the CPU's writes (via the flush), so resends
    of a *modified* buffer still hit the Message Cache."""
    cluster = make_cluster("cni")

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=4096)
        if ctx.rank == 0:
            for _ in range(3):
                yield from svc.touch_send_buffer(4096)
                yield from svc.send(1, 4096)
        else:
            for _ in range(3):
                yield from svc.recv()

    stats = cluster.run(kernel)
    assert stats.counters["mc_transmit_hits"] == 2


def test_modifying_buffer_without_snooping_misses():
    cluster = make_cluster("cni", snoop_enabled=False)

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=4096)
        if ctx.rank == 0:
            for _ in range(3):
                yield from svc.touch_send_buffer(4096)
                yield from svc.send(1, 4096)
        else:
            for _ in range(3):
                yield from svc.recv()

    stats = cluster.run(kernel)
    # every flush invalidates the board copy: no steady-state hits
    assert stats.counters["mc_transmit_hits"] == 0
