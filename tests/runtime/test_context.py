"""Unit tests for the application Context."""

import numpy as np
import pytest

from repro.engine import Category
from repro.params import SimParams
from repro.runtime import Cluster


def cluster_and_array(nprocs=1, iface="cni"):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=32
    )
    cluster = Cluster(params, interface=iface)
    arr = cluster.alloc_shared((4, 512))
    return cluster, arr


def test_compute_charges_exact_time():
    cluster, _ = cluster_and_array()

    def kernel(ctx):
        t0 = ctx.sim.now
        yield from ctx.compute(166e6)  # one second of cycles
        assert ctx.sim.now - t0 == pytest.approx(1e9)

    cluster.run(kernel)
    acc = cluster.nodes[0].account
    assert acc.ns[Category.COMPUTATION] == pytest.approx(1e9)


def test_compute_rejects_negative():
    cluster, _ = cluster_and_array()

    def kernel(ctx):
        with pytest.raises(ValueError):
            yield from ctx.compute(-1)
        yield from ctx.compute(0)

    cluster.run(kernel)


def test_access_runs_touches_cache():
    cluster, arr = cluster_and_array()
    node = cluster.nodes[0]

    def kernel(ctx):
        yield from ctx.read_runs([(arr.base_vaddr, 4096)])
        cold = node.cache.stats_memory
        assert cold == 128  # every line missed once
        yield from ctx.read_runs([(arr.base_vaddr, 4096)])
        assert node.cache.stats_memory == cold  # all hits now

    cluster.run(kernel)


def test_write_runs_record_into_collector():
    cluster, arr = cluster_and_array()
    node = cluster.nodes[0]

    def kernel(ctx):
        yield from ctx.write_runs([(arr.base_vaddr + 100, 50)])
        assert node.engine.collector.modified_bytes(0) == 50

    cluster.run(kernel)


def test_write_spanning_pages_records_both():
    cluster, arr = cluster_and_array()
    node = cluster.nodes[0]

    def kernel(ctx):
        # 200 bytes straddling the page boundary at 4096
        yield from ctx.write_runs([(arr.base_vaddr + 4000, 200)])
        assert node.engine.collector.modified_bytes(0) == 96
        assert node.engine.collector.modified_bytes(1) == 104

    cluster.run(kernel)


def test_access_outside_segment_rejected():
    cluster, arr = cluster_and_array()

    def kernel(ctx):
        with pytest.raises(ValueError):
            yield from ctx.read_runs([(0, 64)])  # private segment
        yield from ctx.compute(0)

    cluster.run(kernel)


def test_empty_runs_are_noops():
    cluster, arr = cluster_and_array()

    def kernel(ctx):
        t0 = ctx.sim.now
        yield from ctx.read_runs([])
        yield from ctx.write_runs([(arr.base_vaddr, 0)])
        assert ctx.sim.now == t0

    cluster.run(kernel)


def test_read_faults_count_once_per_page():
    cluster, arr = cluster_and_array(nprocs=2)
    counts = {}

    def kernel(ctx):
        if ctx.rank == 1:
            # pages 0..3 are round-robin homed; node 1 owns 1 and 3
            yield from ctx.read_runs([(arr.base_vaddr, 4 * 4096)])
            counts["faults"] = ctx.node.counters["dsm_faults"]
            # re-read: no new faults
            yield from ctx.read_runs([(arr.base_vaddr, 4 * 4096)])
            counts["faults2"] = ctx.node.counters["dsm_faults"]
        yield from ctx.barrier()

    cluster.run(kernel)
    assert counts["faults"] == 2  # pages 0 and 2 fetched from node 0
    assert counts["faults2"] == counts["faults"]
