"""Tests for cluster assembly and run mechanics."""

import pytest

from repro.engine import SimulationError
from repro.params import SimParams
from repro.runtime import Cluster


def params(n=2):
    return SimParams().replace(num_processors=n, dsm_address_space_pages=16)


def test_bad_interface_rejected():
    with pytest.raises(ValueError):
        Cluster(params(), interface="myrinet")


def test_standard_interface_forces_features_off():
    cluster = Cluster(params(), interface="standard")
    assert not cluster.params.use_message_cache
    assert not cluster.params.use_adc
    assert not cluster.params.use_aih


def test_cni_keeps_ablation_flags():
    p = params().replace(receive_caching=False)
    cluster = Cluster(p, interface="cni")
    assert not cluster.params.receive_caching
    assert cluster.params.use_message_cache  # untouched


def test_cluster_runs_once():
    cluster = Cluster(params(), interface="cni")

    def kernel(ctx):
        yield from ctx.compute(10)

    cluster.run(kernel)
    with pytest.raises(SimulationError):
        cluster.run(kernel)


def test_deadlock_reported_with_names():
    cluster = Cluster(params(), interface="cni")

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.barrier()  # rank 1 never arrives
        else:
            yield from ctx.compute(1)

    with pytest.raises(SimulationError, match="app0"):
        cluster.run(kernel)


def test_max_events_bounds_runaway():
    cluster = Cluster(params(), interface="cni")

    def kernel(ctx):
        while True:
            yield from ctx.compute(10)

    with pytest.raises(SimulationError):
        cluster.run(kernel, max_events=500)


def test_home_schemes():
    for scheme in ("round_robin", "block", "node0"):
        cluster = Cluster(params(), interface="cni", home_scheme=scheme)
        assert cluster.homes.scheme == scheme
    with pytest.raises(ValueError):
        Cluster(params(), interface="cni", home_scheme="chaotic")


def test_run_stats_shape():
    cluster = Cluster(params(3), interface="cni")

    def kernel(ctx):
        yield from ctx.compute(100)
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert len(stats.per_processor) == 3
    assert stats.elapsed_ns > 0
    assert cluster.message_cache_hit_ratio() == stats.network_cache_hit_ratio


def test_dsm_channel_setup_cni():
    cluster = Cluster(params(), interface="cni")
    for node in cluster.nodes:
        assert node.dsm_channel_id == 1
        assert node.nic.pathfinder.pattern_count > 0
        assert node.nic.handlers.used_bytes > 0


def test_alloc_shared_exhaustion():
    cluster = Cluster(params(), interface="cni")
    with pytest.raises(MemoryError):
        cluster.alloc_shared((1024 * 1024,))  # 8 MB > 16 pages
