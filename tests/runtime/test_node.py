"""Unit tests for Node accounting and memory operations."""

import numpy as np
import pytest

from repro.engine import Category
from repro.params import SimParams
from repro.runtime import Cluster


def one_node_cluster(iface="cni"):
    params = SimParams().replace(num_processors=1, dsm_address_space_pages=16)
    return Cluster(params, interface=iface)


def test_interface_validation():
    from repro.engine import Simulator, Counters
    from repro.network import Network
    from repro.runtime import Node

    sim = Simulator()
    params = SimParams().replace(num_processors=1)
    net = Network(sim, params)
    with pytest.raises(ValueError):
        Node(sim, params, 0, net, Counters(), interface="bogus")


def test_accounting_categories():
    cluster = one_node_cluster()
    node = cluster.nodes[0]
    node.account_compute(100.0)
    node.account_overhead(50.0)
    node.account_delay(25.0)
    assert node.account.ns[Category.COMPUTATION] == 100.0
    assert node.account.ns[Category.SYNCH_OVERHEAD] == 50.0
    assert node.account.ns[Category.SYNCH_DELAY] == 25.0


def test_steal_accumulates_and_drains():
    cluster = one_node_cluster()
    node = cluster.nodes[0]
    node.steal_host_time(10.0, Category.SYNCH_OVERHEAD)
    node.steal_host_time(5.0, Category.SYNCH_OVERHEAD)
    assert node.account.ns[Category.SYNCH_OVERHEAD] == 15.0
    assert node.take_stolen_ns() == 15.0
    assert node.take_stolen_ns() == 0.0


def test_stolen_time_inflates_compute():
    cluster = one_node_cluster()
    node = cluster.nodes[0]

    def kernel(ctx):
        node.steal_host_time(1000.0, Category.SYNCH_OVERHEAD)
        t0 = ctx.sim.now
        yield from ctx.compute(166)  # 1000 ns of work at 166 MHz
        assert ctx.sim.now - t0 == pytest.approx(2000.0, rel=1e-6)

    cluster.run(kernel)
    # but only the real computation is accounted as computation
    assert node.account.ns[Category.COMPUTATION] == pytest.approx(1000.0, rel=1e-6)


def test_flush_page_writes_back_and_snoops():
    cluster = one_node_cluster()
    node = cluster.nodes[0]
    arr = cluster.alloc_shared((512,))
    seen = []
    node.bus.add_snooper(lambda nid, lines: seen.append(lines.size))

    def kernel(ctx):
        yield from ctx.write_runs([(arr.base_vaddr, 4096)])
        yield from node.flush_page(0)
        # second flush: nothing dirty
        t0 = ctx.sim.now
        yield from node.flush_page(0)
        assert ctx.sim.now == t0

    cluster.run(kernel)
    assert sum(seen) >= 128  # all 128 lines of the page reached the bus


def test_private_buffer_allocation_registers_mappings():
    cluster = one_node_cluster()
    node = cluster.nodes[0]
    vaddr = node.alloc_private_buffer(8192)
    assert vaddr % node.params.page_size_bytes == 0
    vpage = vaddr // node.params.page_size_bytes
    assert vpage in node.tlb
    assert (vpage + 1) in node.tlb  # 8 KB = two pages
    other = node.alloc_private_buffer(100)
    assert other != vaddr


def test_drop_page_from_caches_clears_mc():
    cluster = one_node_cluster("cni")
    node = cluster.nodes[0]
    cluster.alloc_shared((512,))
    cluster.finalize_memory()
    mc = node.nic.message_cache
    vpage = node.params.page_size_bytes and (
        cluster.segment.page_vaddr(0) // node.params.page_size_bytes
    )
    mc.insert(vpage)
    assert mc.contains(vpage)
    node.drop_page_from_caches(0)
    assert not mc.contains(vpage)


def test_mc_receive_insert_respects_ablation():
    params = SimParams().replace(
        num_processors=1, dsm_address_space_pages=16, receive_caching=False
    )
    cluster = Cluster(params, interface="cni")
    node = cluster.nodes[0]
    cluster.alloc_shared((512,))
    node.mc_receive_insert(0)
    assert node.nic.message_cache.occupancy == 0


def test_standard_node_has_no_message_cache():
    cluster = one_node_cluster("standard")
    node = cluster.nodes[0]
    assert not hasattr(node.nic, "message_cache")
    node.mc_invalidate(0)  # harmless no-op
