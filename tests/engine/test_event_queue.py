"""Unit tests for the pending-event set."""

import pytest

from repro.engine import EmptyQueueError, EventQueue


def test_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(5.0, lambda: fired.append("b"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(9.0, lambda: fired.append("c"))
    while q:
        _, cb = q.pop()
        cb()
    assert fired == ["a", "b", "c"]


def test_stable_order_for_simultaneous_events():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.push(3.0, lambda i=i: fired.append(i))
    while q:
        q.pop()[1]()
    assert fired == list(range(10))


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    fired = []
    q.push(1.0, lambda: fired.append("later"), priority=1)
    q.push(1.0, lambda: fired.append("first"), priority=0)
    while q:
        q.pop()[1]()
    assert fired == ["first", "later"]


def test_cancelled_events_do_not_fire():
    q = EventQueue()
    fired = []
    h = q.push(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    h.cancel()
    while q:
        q.pop()[1]()
    assert fired == ["kept"]


def test_peek_time_skips_cancelled():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.push(4.0, lambda: None)
    h.cancel()
    assert q.peek_time() == 4.0


def test_empty_queue_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()
    with pytest.raises(IndexError):
        q.peek_time()


def test_empty_queue_error_names_the_operation():
    q = EventQueue()
    with pytest.raises(EmptyQueueError, match=r"EventQueue\.pop\(\)"):
        q.pop()
    with pytest.raises(EmptyQueueError, match=r"EventQueue\.peek_time\(\)"):
        q.peek_time()


def test_empty_queue_error_is_an_index_error():
    # The simulator's drain loop catches IndexError as end-of-simulation;
    # the richer error must stay compatible with it.
    assert issubclass(EmptyQueueError, IndexError)


def test_all_cancelled_queue_raises_like_empty():
    q = EventQueue()
    q.push(1.0, lambda: None).cancel()
    q.push(2.0, lambda: None).cancel()
    with pytest.raises(EmptyQueueError, match="empty event queue"):
        q.pop()


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(float("nan"), lambda: None)


def test_len_and_bool():
    q = EventQueue()
    assert not q
    q.push(1.0, lambda: None)
    assert q and len(q) == 1


def test_cancel_idempotent():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    h.cancel()
    h.cancel()
    assert h.cancelled
