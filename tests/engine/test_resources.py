"""Unit tests for Resource, Mailbox and Gate."""

import pytest

from repro.engine import Gate, Mailbox, Resource, Simulator


def test_resource_mutual_exclusion_and_fifo():
    sim = Simulator()
    bus = Resource(sim, "bus")
    log = []

    def user(tag, hold):
        yield from bus.acquire()
        log.append(("acq", tag, sim.now))
        yield hold
        bus.release()
        log.append(("rel", tag, sim.now))

    sim.spawn(user("a", 10.0), "a")
    sim.spawn(user("b", 5.0), "b")
    sim.spawn(user("c", 1.0), "c")
    sim.run()
    assert log == [
        ("acq", "a", 0.0),
        ("rel", "a", 10.0),
        ("acq", "b", 10.0),
        ("rel", "b", 15.0),
        ("acq", "c", 15.0),
        ("rel", "c", 16.0),
    ]
    assert bus.acquisitions == 3
    assert bus.total_hold_ns == 16.0
    assert not bus.busy


def test_resource_held_convenience():
    sim = Simulator()
    r = Resource(sim, "r")

    def proc():
        yield from r.held(30.0)
        return sim.now

    assert sim.run_process(proc()) == 30.0
    assert not r.busy


def test_release_of_free_resource_raises():
    sim = Simulator()
    r = Resource(sim, "r")
    with pytest.raises(RuntimeError):
        r.release()


def test_mailbox_put_then_get():
    sim = Simulator()
    mb = Mailbox(sim, "mb")
    mb.put("x")

    def getter():
        v = yield from mb.get()
        return (v, sim.now)

    assert sim.run_process(getter()) == ("x", 0.0)


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    mb = Mailbox(sim, "mb")

    def getter():
        v = yield from mb.get()
        return (v, sim.now)

    def putter():
        yield 33.0
        mb.put("late")

    sim.spawn(putter(), "putter")
    assert sim.run_process(getter(), "getter") == ("late", 33.0)


def test_mailbox_fifo_across_getters():
    sim = Simulator()
    mb = Mailbox(sim, "mb")
    got = []

    def getter(tag):
        v = yield from mb.get()
        got.append((tag, v))

    sim.spawn(getter("g1"), "g1")
    sim.spawn(getter("g2"), "g2")

    def putter():
        yield 5.0
        mb.put(1)
        mb.put(2)

    sim.spawn(putter(), "putter")
    sim.run()
    assert got == [("g1", 1), ("g2", 2)]


def test_mailbox_try_get_polling():
    sim = Simulator()
    mb = Mailbox(sim, "mb")
    ok, item = mb.try_get()
    assert not ok and item is None
    mb.put(9)
    ok, item = mb.try_get()
    assert ok and item == 9
    assert len(mb) == 0
    assert mb.put_count == 1 and mb.got_count == 1


def test_mailbox_peek():
    sim = Simulator()
    mb = Mailbox(sim)
    assert mb.peek() is None
    mb.put("head")
    mb.put("tail")
    assert mb.peek() == "head"
    assert len(mb) == 2


def test_gate_broadcast_and_rearm():
    sim = Simulator()
    g = Gate(sim, "irq")
    woke = []

    def waiter(tag):
        v = yield from g.wait()
        woke.append((tag, v, sim.now))
        v = yield from g.wait()
        woke.append((tag, v, sim.now))

    sim.spawn(waiter("a"), "a")
    sim.spawn(waiter("b"), "b")

    def driver():
        yield 10.0
        assert g.notify("first") == 2
        yield 10.0
        assert g.notify("second") == 2

    sim.spawn(driver(), "driver")
    sim.run()
    assert woke == [
        ("a", "first", 10.0),
        ("b", "first", 10.0),
        ("a", "second", 20.0),
        ("b", "second", 20.0),
    ]
    assert g.notifications == 2


def test_gate_notify_with_no_waiters():
    sim = Simulator()
    g = Gate(sim)
    assert g.notify() == 0
