"""Unit tests for the coroutine kernel."""

import pytest

from repro.engine import Event, Interrupt, Process, SimulationError, Simulator


def test_delay_advances_time():
    sim = Simulator()

    def proc():
        yield 100.0
        assert sim.now == 100.0
        yield 50
        return sim.now

    assert sim.run_process(proc()) == 150.0


def test_zero_delay_allowed():
    sim = Simulator()

    def proc():
        yield 0.0
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_delay_raises_inside_process():
    sim = Simulator()

    def proc():
        with pytest.raises(SimulationError):
            yield -1.0
        return "survived"

    assert sim.run_process(proc()) == "survived"


def test_event_wait_and_trigger_value():
    sim = Simulator()
    ev = sim.event()
    log = []

    def waiter():
        v = yield ev
        log.append((sim.now, v))
        return v

    def firer():
        yield 40.0
        ev.trigger("payload")

    sim.spawn(firer(), "firer")
    result = sim.run_process(waiter(), "waiter")
    assert result == "payload"
    assert log == [(40.0, "payload")]


def test_event_already_triggered_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(7)

    def proc():
        v = yield ev
        return (sim.now, v)

    assert sim.run_process(proc()) == (0.0, 7)


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_timeout_event():
    sim = Simulator()

    def proc():
        v = yield sim.timeout(25.0, "tick")
        return (sim.now, v)

    assert sim.run_process(proc()) == (25.0, "tick")


def test_join_process_gets_return_value():
    sim = Simulator()

    def child():
        yield 10.0
        return 42

    def parent():
        c = sim.spawn(child(), "child")
        v = yield c
        return (sim.now, v)

    assert sim.run_process(parent()) == (10.0, 42)


def test_join_finished_process():
    sim = Simulator()

    def child():
        yield 1.0
        return "done"

    def parent():
        c = sim.spawn(child(), "child")
        yield 100.0
        v = yield c  # already finished
        return v

    assert sim.run_process(parent()) == "done"


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield 5.0
        return "inner-result"

    def outer():
        v = yield from inner()
        yield 5.0
        return (v, sim.now)

    assert sim.run_process(outer()) == ("inner-result", 10.0)


def test_deadlock_detected():
    sim = Simulator()
    ev = sim.event()

    def proc():
        yield ev  # nobody will trigger

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(proc())


def test_yield_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not a valid thing"

    with pytest.raises(SimulationError):
        sim.run_process(proc())


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield 1000.0
        except Interrupt as i:
            return ("interrupted", sim.now, i.cause)
        return "slept"

    def poker(target):
        yield 10.0
        target.interrupt("wake up")

    target = sim.spawn(sleeper(), "sleeper")
    sim.spawn(poker(target), "poker")
    sim.run()
    assert target.result == ("interrupted", 10.0, "wake up")


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield 1.0
        return "ok"

    p = sim.spawn(quick(), "quick")
    sim.run()
    p.interrupt()  # should not raise
    sim.run()
    assert p.result == "ok"


def test_simultaneous_events_run_in_spawn_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield 10.0
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(tag), tag)
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield 100.0
        yield 100.0

    sim.spawn(proc(), "p")
    t = sim.run(until=150.0)
    assert t == 150.0
    # finishing the run completes the process
    sim.run()
    assert sim.now == 200.0


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_many_processes_determinism():
    def build():
        sim = Simulator()
        log = []

        def proc(i):
            yield float(i % 7)
            log.append(i)
            yield float(i % 3)
            log.append(-i)

        for i in range(50):
            sim.spawn(proc(i), f"p{i}")
        sim.run()
        return log

    assert build() == build()


def test_exception_in_process_propagates_to_run():
    sim = Simulator()

    def broken():
        yield 5.0
        raise RuntimeError("app bug")

    sim.spawn(broken(), "broken")
    with pytest.raises(RuntimeError, match="app bug"):
        sim.run()


def test_exception_leaves_clock_at_failure_time():
    sim = Simulator()

    def broken():
        yield 7.0
        raise RuntimeError("boom")

    sim.spawn(broken(), "broken")
    try:
        sim.run()
    except RuntimeError:
        pass
    assert sim.now == 7.0
