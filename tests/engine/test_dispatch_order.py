"""Regression pins for the optimized dispatch loop.

``Simulator.run`` pops the event heap directly instead of going through
``EventQueue.peek_time``/``pop``.  These tests pin the visible contract
of that fast path against a straight-line reference implementation:
exact pop order under randomized (seeded) schedules, cancellation-heavy
queues, same-instant priority ties, and the historical ``until``-clamp
corner cases.
"""

import random

from repro.engine import EventQueue, Simulator


def reference_order(entries):
    """Expected fire order: sort by (time, priority, seq), drop cancelled.

    This is the EventQueue ordering contract stated independently of the
    heap: a total order over (time, priority, insertion sequence).
    """
    live = [(t, prio, seq) for (t, prio, seq, cancelled) in entries
            if not cancelled]
    return [seq for (_t, _prio, seq) in sorted(live)]


def test_randomized_schedule_pops_in_reference_order():
    rng = random.Random(0xC41)
    for trial in range(5):
        q = EventQueue()
        entries = []
        handles = []
        for seq in range(300):
            t = rng.choice([0.0, 1.0, 2.5, 2.5, 7.0, rng.uniform(0, 10)])
            prio = rng.choice([0, 0, 1])
            h = q.push(t, (lambda s=seq: s), priority=prio)
            handles.append(h)
            entries.append([t, prio, seq, False])
        for i in rng.sample(range(300), 120):  # cancellation-heavy
            handles[i].cancel()
            entries[i][3] = True
        got = []
        while True:
            try:
                _t, cb = q.pop()
            except IndexError:
                break
            got.append(cb())
        assert got == reference_order(entries), f"trial {trial} diverged"


def test_simulator_loop_matches_queue_pop_order():
    """The inline heap loop in Simulator.run dispatches exactly the
    sequence EventQueue.pop would have produced."""
    def build(seed, out):
        rng = random.Random(seed)
        sim = Simulator()
        handles = []
        for seq in range(200):
            t = rng.choice([0.0, 3.0, 3.0, rng.uniform(0, 20)])
            prio = rng.choice([0, 1])
            handles.append(sim._queue.push(
                t, (lambda s=seq: out.append(s)), priority=prio))
        for i in rng.sample(range(200), 80):
            handles[i].cancel()
        return sim

    for seed in (1, 2, 3):
        # Reference: drain the same schedule through the public pop API.
        reference = []
        ref = build(seed, reference)
        while True:
            try:
                _t, cb = ref._queue.pop()
            except IndexError:
                break
            cb()
        fired = []
        sim = build(seed, fired)
        sim.run()
        assert fired == reference
        assert sim.events_processed == len(reference)


def test_same_instant_priority_orders_before_sequence():
    sim = Simulator()
    order = []
    # Scheduled later but priority 0 beats the earlier-scheduled
    # priority-1 (call_soon) entry at the same instant.
    sim._queue.push(5.0, lambda: order.append("soon"), priority=1)
    sim._queue.push(5.0, lambda: order.append("timer"), priority=0)
    sim._queue.push(5.0, lambda: order.append("soon2"), priority=1)
    sim.run()
    assert order == ["timer", "soon", "soon2"]


def test_cancellation_storm_inside_callbacks():
    """Callbacks cancelling not-yet-fired events mid-run never fire them
    and never disturb the order of the survivors."""
    sim = Simulator()
    order = []
    handles = {}

    def fire(name):
        order.append(name)
        victim = handles.get(f"victim-of-{name}")
        if victim is not None:
            victim.cancel()

    handles["a"] = sim.schedule(1.0, lambda: fire("a"))
    handles["victim-of-a"] = sim.schedule(2.0, lambda: fire("b"))
    handles["c"] = sim.schedule(3.0, lambda: fire("c"))
    handles["victim-of-c"] = sim.schedule(4.0, lambda: fire("d"))
    handles["e"] = sim.schedule(5.0, lambda: fire("e"))
    assert sim.run() == 5.0
    assert order == ["a", "c", "e"]
    assert sim.events_processed == 3


def test_until_clamps_when_queue_is_empty():
    sim = Simulator()
    assert sim.run(until=100.0) == 100.0


def test_until_clamps_when_events_lie_beyond():
    sim = Simulator()
    fired = []
    sim.schedule(250.0, lambda: fired.append(1))
    assert sim.run(until=100.0) == 100.0
    assert fired == []


def test_all_cancelled_queue_does_not_clamp_to_until():
    """Historical corner: a queue holding only cancelled entries drains
    mid-skim and the clock stays put (the empty-at-entry path clamps,
    this one never did — digests depend on the distinction)."""
    sim = Simulator()
    sim.schedule(10.0, lambda: None).cancel()
    sim.schedule(20.0, lambda: None).cancel()
    assert sim.run(until=100.0) == 0.0
    assert sim.events_processed == 0


def test_max_events_stops_without_consuming_the_next_event():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]
    # The remaining events are untouched and fire on the next run.
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.events_processed == 5


def test_hwm_accumulates_across_runs():
    sim = Simulator()
    for i in range(8):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.queue_len_hwm == 8
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.queue_len_hwm == 8  # smaller second run never lowers it
