"""Unit tests for the tracer."""

import pytest

from repro.engine import Tracer


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.emit(1.0, "x", "kind")
    assert len(t) == 0


def test_enabled_tracer_records():
    t = Tracer(enabled=True)
    t.emit(1.0, "nic0", "send", {"bytes": 4096})
    t.emit(2.0, "nic1", "recv")
    assert len(t) == 2
    assert t.records()[0].detail == {"bytes": 4096}


def test_filtering():
    t = Tracer(enabled=True)
    t.emit(1.0, "a", "send")
    t.emit(2.0, "b", "send")
    t.emit(3.0, "a", "recv")
    assert len(t.records(kind="send")) == 2
    assert len(t.records(source="a")) == 2
    assert len(t.records(kind="recv", source="a")) == 1


def test_ring_bounds_and_drop_count():
    t = Tracer(capacity=3, enabled=True)
    for i in range(5):
        t.emit(float(i), "s", "k", i)
    assert len(t) == 3
    assert t.dropped == 2
    assert [r.detail for r in t.records()] == [2, 3, 4]


def test_drop_invariant_emitted_equals_len_plus_dropped():
    t = Tracer(capacity=4, enabled=True)
    emitted = 0
    for i in range(11):
        t.emit(float(i), "s", "k")
        emitted += 1
        assert emitted == len(t) + t.dropped
    assert t.capacity == 4
    assert t.dropped == 7


def test_disabled_emits_are_not_counted_as_dropped():
    t = Tracer(capacity=2, enabled=False)
    for i in range(5):
        t.emit(float(i), "s", "k")
    assert len(t) == 0 and t.dropped == 0


def test_clear():
    t = Tracer(capacity=2, enabled=True)
    t.emit(0.0, "s", "k")
    t.emit(0.0, "s", "k")
    t.emit(0.0, "s", "k")
    t.clear()
    assert len(t) == 0 and t.dropped == 0


def test_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
