"""Unit tests for time accounting and counters."""

import pytest

from repro.engine import Category, Counters, RunStats, TimeAccount


def test_time_account_accumulates():
    acc = TimeAccount()
    acc.add(Category.COMPUTATION, 100.0)
    acc.add(Category.COMPUTATION, 50.0)
    acc.add(Category.SYNCH_DELAY, 25.0)
    assert acc.ns[Category.COMPUTATION] == 150.0
    assert acc.total_ns == 175.0


def test_time_account_rejects_negative():
    acc = TimeAccount()
    with pytest.raises(ValueError):
        acc.add(Category.SYNCH_OVERHEAD, -1.0)


def test_cycles_conversion():
    acc = TimeAccount()
    acc.add(Category.COMPUTATION, 1e9)  # one second
    assert acc.cycles(Category.COMPUTATION, 166e6) == pytest.approx(166e6)


def test_merge():
    a, b = TimeAccount(), TimeAccount()
    a.add(Category.SYNCH_DELAY, 10)
    b.add(Category.SYNCH_DELAY, 5)
    b.add(Category.COMPUTATION, 1)
    a.merge(b)
    assert a.ns[Category.SYNCH_DELAY] == 15
    assert a.ns[Category.COMPUTATION] == 1


def test_as_dict_keys():
    assert set(TimeAccount().as_dict()) == {
        "computation",
        "synch_overhead",
        "synch_delay",
    }


def test_counters_basic():
    c = Counters()
    c.inc("sends")
    c.inc("sends", 4)
    assert c["sends"] == 5
    assert c["never"] == 0
    assert c.get("never", 7) == 7
    assert c.as_dict() == {"sends": 5}


def test_counters_ratio():
    c = Counters()
    assert c.ratio("hits", "total") == 0.0
    c.inc("total", 4)
    c.inc("hits", 3)
    assert c.ratio("hits", "total") == 0.75


def test_run_stats_hit_ratio_and_table():
    rs = RunStats()
    rs.counters.inc("mc_transmit_lookups", 10)
    rs.counters.inc("mc_transmit_hits", 9)
    assert rs.network_cache_hit_ratio == 0.9

    acc = TimeAccount()
    acc.add(Category.COMPUTATION, 1e9)
    acc.add(Category.SYNCH_OVERHEAD, 0.5e9)
    acc.add(Category.SYNCH_DELAY, 0.25e9)
    rs.per_processor.append(acc)
    table = rs.overhead_table(100e6)
    assert table["computation"] == pytest.approx(1e8)
    assert table["synch_overhead"] == pytest.approx(0.5e8)
    assert table["synch_delay"] == pytest.approx(0.25e8)
    assert table["total"] == pytest.approx(1.75e8)


def test_run_stats_category_total_over_processors():
    rs = RunStats()
    for _ in range(3):
        acc = TimeAccount()
        acc.add(Category.SYNCH_DELAY, 10.0)
        rs.per_processor.append(acc)
    assert rs.category_total_ns(Category.SYNCH_DELAY) == 30.0
