"""CI gate: docs/observability.md's metric catalog must match what the
simulator actually registers (both directions — no stale docs, no
undocumented instrumentation).  The logic lives in
tools/check_docs_metrics.py so it can also run standalone."""

import os
import sys

import pytest

TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools")
sys.path.insert(0, TOOLS_DIR)

import check_docs_metrics  # noqa: E402


@pytest.fixture(scope="module")
def verdict():
    return check_docs_metrics.check()


def test_catalog_extraction_finds_the_known_anchors():
    documented = check_docs_metrics.documented_names()
    # spot-check one name per subsystem: if extraction regresses, these
    # vanish long before the full-set comparison gets confusing
    for anchor in ("engine.events_processed", "node0.nic.mcache.hits",
                   "node0.nic.pathfinder.matches", "node0.nic.aih.dispatches",
                   "node0.bus.snooped_writeback_words",
                   "node0.nic.adc.poll_receives", "spans.dma_ns",
                   "cluster.mc_transmit_hits"):
        assert anchor in documented
    assert len(documented) > 40


def test_every_documented_metric_is_registered(verdict):
    stale, _ = verdict
    assert not stale, (
        "docs/observability.md documents metrics the simulator never "
        f"registers: {sorted(stale)}")


def test_every_registered_metric_is_documented(verdict):
    _, undocumented = verdict
    assert not undocumented, (
        "instrumentation registers metrics missing from the "
        f"docs/observability.md catalog: {sorted(undocumented)}")
