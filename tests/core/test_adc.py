"""Unit tests for Application Device Channels."""

import pytest

from repro.core import (
    ChannelError,
    ChannelManager,
    DeviceChannel,
    DualPortedRing,
    TransmitDescriptor,
)
from repro.engine import Simulator


def test_ring_push_pop_order():
    sim = Simulator()
    r = DualPortedRing(sim, 4, "r")
    for i in range(3):
        r.push(i)
    assert [r.pop() for _ in range(3)] == [0, 1, 2]
    assert r.pop() is None


def test_ring_capacity():
    sim = Simulator()
    r = DualPortedRing(sim, 2, "r")
    r.push(1)
    r.push(2)
    assert r.full
    with pytest.raises(ChannelError):
        r.push(3)
    assert not r.try_push(3)
    assert r.full_rejections == 2
    r.pop()
    assert r.try_push(3)


def test_ring_doorbell_rings_on_push():
    sim = Simulator()
    r = DualPortedRing(sim, 4, "r")
    got = []

    def waiter():
        v = yield from r.doorbell.wait()
        got.append(v)

    sim.spawn(waiter(), "w")

    def pusher():
        yield 5.0
        r.push("item")

    sim.spawn(pusher(), "p")
    sim.run()
    assert got == ["item"]


def test_ring_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DualPortedRing(sim, 0, "r")


def test_channel_protection_grant_and_check():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    ch.grant_buffer(0x1000, 0x2000)
    ch.check_buffer(0x1000, 16)       # ok
    ch.check_buffer(0x2FF0, 0x10)     # exactly at the end
    with pytest.raises(ChannelError):
        ch.check_buffer(0x2FF1, 0x10)  # crosses the end
    with pytest.raises(ChannelError):
        ch.check_buffer(0x0FFF, 2)     # starts before
    assert ch.protection_faults == 2


def test_grant_validation():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    with pytest.raises(ValueError):
        ch.grant_buffer(0, 0)


def test_post_transmit_checks_protection():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    ch.grant_buffer(0x1000, 0x1000)
    ch.post_transmit(TransmitDescriptor(dst_node=1, vaddr=0x1000, length=64))
    with pytest.raises(ChannelError):
        ch.post_transmit(TransmitDescriptor(dst_node=1, vaddr=0x9000, length=64))
    assert len(ch.transmit) == 1


def test_post_transmit_without_buffer_skips_check():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    ch.post_transmit(TransmitDescriptor(dst_node=1, vaddr=None, length=16))
    assert len(ch.transmit) == 1


def test_post_free_buffer():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    ch.grant_buffer(0x4000, 0x1000)
    ch.post_free_buffer(0x4000, 4096)
    assert ch.free.pop() == (0x4000, 4096)
    with pytest.raises(ChannelError):
        ch.post_free_buffer(0x0, 64)


def test_poll_receive_empty():
    sim = Simulator()
    ch = DeviceChannel(sim, owner_app=1)
    assert ch.poll_receive() is None


def test_channel_manager_lifecycle():
    sim = Simulator()
    mgr = ChannelManager(sim, max_channels=2)
    a = mgr.open_channel(owner_app=1)
    b = mgr.open_channel(owner_app=2)
    assert a.channel_id != b.channel_id
    assert mgr.get(a.channel_id) is a
    with pytest.raises(ChannelError):
        mgr.open_channel(owner_app=3)
    mgr.close_channel(a.channel_id)
    mgr.open_channel(owner_app=3)  # slot freed
    with pytest.raises(KeyError):
        mgr.close_channel(a.channel_id)


def test_transmit_descriptor_validation():
    with pytest.raises(ValueError):
        TransmitDescriptor(dst_node=0, vaddr=None, length=-1)
