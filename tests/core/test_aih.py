"""Unit tests for the Application Interrupt Handler registry."""

import pytest

from repro.core import HandlerError, HandlerRegistry
from repro.params import SimParams


def make_registry(memory=1024):
    return HandlerRegistry(SimParams(), memory_bytes=memory)


def test_install_and_dispatch():
    reg = make_registry()
    calls = []
    reg.install(1, lambda pkt: calls.append(pkt), code_size=100)
    assert reg.installed(1)
    fn = reg.dispatch(1)
    fn("packet")
    assert calls == ["packet"]
    assert reg.dispatches == 1


def test_swap_in_cost_is_dma_time():
    reg = make_registry(memory=8192)
    params = SimParams()
    cost = reg.install(1, lambda p: None, code_size=4096)
    assert cost == pytest.approx(params.dma_time_ns(4096))


def test_duplicate_key_rejected():
    reg = make_registry()
    reg.install(1, lambda p: None, code_size=10)
    with pytest.raises(HandlerError):
        reg.install(1, lambda p: None, code_size=10)


def test_memory_capacity_enforced():
    reg = make_registry(memory=100)
    reg.install(1, lambda p: None, code_size=60)
    with pytest.raises(HandlerError):
        reg.install(2, lambda p: None, code_size=50)
    assert reg.used_bytes == 60


def test_uninstall_frees_memory():
    reg = make_registry(memory=100)
    reg.install(1, lambda p: None, code_size=60)
    reg.uninstall(1)
    assert reg.used_bytes == 0
    reg.install(2, lambda p: None, code_size=90)
    with pytest.raises(HandlerError):
        reg.uninstall(1)


def test_dispatch_missing_handler():
    reg = make_registry()
    with pytest.raises(HandlerError):
        reg.dispatch(42)


def test_code_size_validation():
    reg = make_registry()
    with pytest.raises(ValueError):
        reg.install(1, lambda p: None, code_size=0)


def test_dispatch_time_positive():
    reg = make_registry()
    assert reg.dispatch_time_ns() > 0


def test_handler_keys_sorted():
    reg = make_registry()
    reg.install(5, lambda p: None, 10)
    reg.install(2, lambda p: None, 10)
    assert reg.handler_keys() == [2, 5]


def test_negative_memory_rejected():
    with pytest.raises(ValueError):
        HandlerRegistry(SimParams(), memory_bytes=-1)
