"""Unit tests for the Application Interrupt Handler registry."""

import pytest

from repro.core import HandlerError, HandlerRegistry
from repro.params import SimParams


def make_registry(memory=1024):
    return HandlerRegistry(SimParams(), memory_bytes=memory)


def test_install_and_dispatch():
    reg = make_registry()
    calls = []
    reg.install(1, lambda pkt: calls.append(pkt), code_size=100)
    assert reg.installed(1)
    fn = reg.dispatch(1)
    fn("packet")
    assert calls == ["packet"]
    assert reg.dispatches == 1


def test_swap_in_cost_is_dma_time():
    reg = make_registry(memory=8192)
    params = SimParams()
    cost = reg.install(1, lambda p: None, code_size=4096)
    assert cost == pytest.approx(params.dma_time_ns(4096))


def test_duplicate_key_rejected():
    reg = make_registry()
    reg.install(1, lambda p: None, code_size=10)
    with pytest.raises(HandlerError):
        reg.install(1, lambda p: None, code_size=10)


def test_memory_capacity_enforced():
    reg = make_registry(memory=100)
    reg.install(1, lambda p: None, code_size=60)
    with pytest.raises(HandlerError):
        reg.install(2, lambda p: None, code_size=50)
    assert reg.used_bytes == 60


def test_uninstall_frees_memory():
    reg = make_registry(memory=100)
    reg.install(1, lambda p: None, code_size=60)
    reg.uninstall(1)
    assert reg.used_bytes == 0
    reg.install(2, lambda p: None, code_size=90)
    with pytest.raises(HandlerError):
        reg.uninstall(1)


def test_dispatch_missing_handler():
    reg = make_registry()
    with pytest.raises(HandlerError):
        reg.dispatch(42)


def test_code_size_validation():
    reg = make_registry()
    with pytest.raises(ValueError):
        reg.install(1, lambda p: None, code_size=0)


def test_dispatch_time_positive():
    reg = make_registry()
    assert reg.dispatch_time_ns() > 0


def test_handler_keys_sorted():
    reg = make_registry()
    reg.install(5, lambda p: None, 10)
    reg.install(2, lambda p: None, 10)
    assert reg.handler_keys() == [2, 5]


def test_negative_memory_rejected():
    with pytest.raises(ValueError):
        HandlerRegistry(SimParams(), memory_bytes=-1)


# -- capacity / eviction cycles -----------------------------------------------

def test_uninstall_reinstall_cycles_under_capacity():
    """Connection churn: swap handlers in and out of a full registry."""
    reg = make_registry(memory=100)
    for key in range(1, 6):
        reg.install(key, lambda p: None, code_size=100)
        assert reg.used_bytes == 100
        with pytest.raises(HandlerError):
            reg.install(99, lambda p: None, code_size=1)
        reg.uninstall(key)
        assert reg.used_bytes == 0
    assert reg.swap_ins == 5
    assert reg.handler_keys() == []


def test_dispatch_after_uninstall_rejected():
    reg = make_registry()
    reg.install(1, lambda p: None, code_size=10)
    reg.uninstall(1)
    assert not reg.installed(1)
    with pytest.raises(HandlerError):
        reg.dispatch(1)


def test_swap_in_cost_accumulates_per_install():
    """Every install pays its own DMA-sized swap-in, including after
    eviction (the cost is not amortized across reinstalls)."""
    params = SimParams()
    reg = make_registry(memory=8192)
    first = reg.install(1, lambda p: None, code_size=2048)
    reg.uninstall(1)
    second = reg.install(1, lambda p: None, code_size=4096)
    assert first == pytest.approx(params.dma_time_ns(2048))
    assert second == pytest.approx(params.dma_time_ns(4096))
    assert reg.swap_ins == 2


# -- metrics accounting --------------------------------------------------------

def test_registry_metrics_track_swap_ins_and_occupancy():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    reg = HandlerRegistry(SimParams(), memory_bytes=1024,
                          metrics=registry.scope("aih"))
    reg.install(1, lambda p: None, code_size=100)
    reg.install(2, lambda p: None, code_size=200)
    reg.dispatch(1)
    snap = registry.snapshot()
    assert snap["aih.swap_ins"] == 2
    assert snap["aih.dispatches"] == 1
    assert snap["aih.handler_bytes_used"] == 300
    reg.uninstall(1)
    assert registry.snapshot()["aih.handler_bytes_used"] == 200


# -- collective handler installation (PATHFINDER mapping) ---------------------

def test_install_collective_handler_classifies_collective_packets():
    from repro.collectives import COLL_HANDLER_CODE_BYTES, CollMsgType
    from repro.core.cni_nic import AIH_TARGET
    from repro.network import PacketKind
    from repro.runtime import Cluster

    cluster = Cluster(SimParams().replace(num_processors=2,
                                          dsm_address_space_pages=16),
                      interface="cni")
    nic = cluster.nodes[0].nic
    for cmt in CollMsgType:
        assert nic.handlers.installed(int(cmt))
        header = bytes([int(PacketKind.COLLECTIVE), 0, 0, 0, 0, 0, 0, 0,
                        (int(cmt) >> 8) & 0xFF, int(cmt) & 0xFF,
                        0, 0, 0, 0, 0, 0])
        assert nic.pathfinder.classify(header) == (AIH_TARGET, int(cmt))
    # the collective handlers share AIH memory with the DSM protocol
    assert nic.handlers.used_bytes >= COLL_HANDLER_CODE_BYTES - len(CollMsgType)
