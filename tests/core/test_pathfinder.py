"""Unit + property tests for the PATHFINDER classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pathfinder, Pattern, PatternElement
from repro.network import Packet, PacketKind


def elem(offset, length, value, mask=None):
    if mask is None:
        mask = (1 << (8 * length)) - 1
    return PatternElement(offset=offset, length=length, mask=mask, value=value)


def header(kind=PacketKind.DATA, src=0, dst=1, chan=5, key=9, size=100):
    return Packet(
        kind=kind, src_node=src, dst_node=dst, channel_id=chan,
        handler_key=key, payload_bytes=size,
    ).header_bytes()


def test_element_validation():
    with pytest.raises(ValueError):
        PatternElement(offset=-1, length=1, mask=0xFF, value=0)
    with pytest.raises(ValueError):
        PatternElement(offset=0, length=0, mask=0, value=0)
    with pytest.raises(ValueError):
        PatternElement(offset=0, length=9, mask=0, value=0)
    with pytest.raises(ValueError):
        PatternElement(offset=0, length=1, mask=0x100, value=0)
    with pytest.raises(ValueError):
        PatternElement(offset=0, length=1, mask=0x0F, value=0x10)  # outside mask


def test_element_matches():
    e = elem(0, 1, int(PacketKind.DATA))
    assert e.matches(header(kind=PacketKind.DATA))
    assert not e.matches(header(kind=PacketKind.DSM_PAGE))


def test_element_beyond_header_never_matches():
    e = elem(100, 2, 0)
    assert not e.matches(header())


def test_masked_match():
    # match only the low nibble of the kind byte
    e = PatternElement(offset=0, length=1, mask=0x0F, value=0x01)
    assert e.matches(header(kind=PacketKind.DATA))  # DATA == 1


def test_pattern_requires_elements():
    with pytest.raises(ValueError):
        Pattern(elements=(), target="x")


def test_classify_single_pattern():
    pf = Pathfinder()
    pf.install(Pattern(elements=(elem(6, 2, 5),), target="chan5"))
    assert pf.classify(header(chan=5)) == "chan5"
    assert pf.classify(header(chan=6)) is None
    assert pf.misses == 1


def test_classify_conjunction():
    pf = Pathfinder()
    pf.install(
        Pattern(
            elements=(elem(0, 1, int(PacketKind.DSM_PAGE)), elem(8, 2, 9)),
            target="aih9",
        )
    )
    assert pf.classify(header(kind=PacketKind.DSM_PAGE, key=9)) == "aih9"
    assert pf.classify(header(kind=PacketKind.DATA, key=9)) is None
    assert pf.classify(header(kind=PacketKind.DSM_PAGE, key=8)) is None


def test_shared_prefix_cells():
    pf = Pathfinder()
    for chan in (1, 2, 3):
        pf.install(
            Pattern(
                elements=(elem(0, 1, int(PacketKind.DATA)), elem(6, 2, chan)),
                target=f"chan{chan}",
            )
        )
    for chan in (1, 2, 3):
        assert pf.classify(header(chan=chan)) == f"chan{chan}"
    # first cell is shared: the root has a single comparison cell
    assert len(pf._root) == 1


def test_priority_earliest_pattern_wins():
    pf = Pathfinder()
    pf.install(Pattern(elements=(elem(6, 2, 5),), target="first"))
    pf.install(
        Pattern(
            elements=(elem(0, 1, int(PacketKind.DATA)), elem(6, 2, 5)),
            target="second",
        )
    )
    assert pf.classify(header(chan=5)) == "first"


def test_duplicate_pattern_rejected():
    pf = Pathfinder()
    pf.install(Pattern(elements=(elem(6, 2, 5),), target="a"))
    with pytest.raises(ValueError):
        pf.install(Pattern(elements=(elem(6, 2, 5),), target="b"))


def test_remove_pattern():
    pf = Pathfinder()
    pid = pf.install(Pattern(elements=(elem(6, 2, 5),), target="a"))
    pf.install(Pattern(elements=(elem(6, 2, 6),), target="b"))
    pf.remove(pid)
    assert pf.classify(header(chan=5)) is None
    assert pf.classify(header(chan=6)) == "b"
    assert pf.pattern_count == 1
    with pytest.raises(KeyError):
        pf.remove(pid)


def test_pattern_memory_exhaustion():
    pf = Pathfinder(max_patterns=2)
    pf.install(Pattern(elements=(elem(6, 2, 1),), target=1))
    pf.install(Pattern(elements=(elem(6, 2, 2),), target=2))
    with pytest.raises(RuntimeError):
        pf.install(Pattern(elements=(elem(6, 2, 3),), target=3))


def test_fragment_table_flow():
    pf = Pathfinder()
    pf.install(Pattern(elements=(elem(6, 2, 5),), target="chan5"))
    target = pf.classify(header(chan=5))
    pf.note_fragmented_packet(vci=5, packet_id=77, target=target)
    assert pf.fragment_table_size == 1
    assert pf.classify_fragment(5, 77) == "chan5"
    assert pf.classify_fragment(5, 78) is None
    pf.end_of_packet(5, 77)
    assert pf.fragment_table_size == 0
    assert pf.classify_fragment(5, 77) is None
    assert pf.fragment_hits == 1


@st.composite
def patterns_and_headers(draw):
    n_patterns = draw(st.integers(1, 6))
    patterns = []
    for i in range(n_patterns):
        n_elems = draw(st.integers(1, 3))
        elems = []
        offsets = draw(
            st.lists(
                st.sampled_from([0, 1, 2, 4, 6, 8]),
                min_size=n_elems, max_size=n_elems, unique=True,
            )
        )
        for off in offsets:
            length = draw(st.sampled_from([1, 2]))
            mask = draw(st.sampled_from([0xFF, 0x0F, 0xF0])) if length == 1 \
                else draw(st.sampled_from([0xFFFF, 0x00FF]))
            value = draw(st.integers(0, (1 << (8 * length)) - 1)) & mask
            elems.append(PatternElement(off, length, mask, value))
        patterns.append(Pattern(elements=tuple(elems), target=i))
    headers = [
        bytes(draw(st.lists(st.integers(0, 255), min_size=16, max_size=16)))
        for _ in range(draw(st.integers(1, 8)))
    ]
    return patterns, headers


@given(patterns_and_headers())
@settings(max_examples=150, deadline=None)
def test_dag_agrees_with_naive_matcher(case):
    """The DAG classifier returns the earliest-installed naive match."""
    patterns, headers = case
    pf = Pathfinder()
    installed = []
    for p in patterns:
        try:
            pf.install(p)
            installed.append(p)
        except ValueError:
            pass  # duplicate pattern in the random draw
    for h in headers:
        expected = None
        for p in installed:  # installation order == priority order
            if p.matches(h):
                expected = p.target
                break
        assert pf.classify(h) == expected
