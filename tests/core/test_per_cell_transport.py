"""Per-cell transport mode: the PATHFINDER fragment table in action."""

import pytest

from repro.params import SimParams
from repro.runtime import Cluster, MessagingService


def make_cluster(iface="cni", **over):
    params = SimParams().replace(
        num_processors=2, dsm_address_space_pages=16,
        per_cell_transport=True, **over,
    )
    return Cluster(params, interface=iface)


def ping(cluster, nbytes=4096):
    got = {}

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=8192)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(nbytes)
            yield from svc.send(1, nbytes, payload="hello")
        else:
            desc = yield from svc.recv()
            got["payload"] = desc.payload
            got["t"] = ctx.sim.now

    stats = cluster.run(kernel)
    return got, stats


def test_per_cell_delivery_works():
    cluster = make_cluster()
    got, stats = ping(cluster)
    assert got["payload"] == "hello"


def test_fragment_table_was_used():
    cluster = make_cluster()
    got, _ = ping(cluster, nbytes=4096)
    pf = cluster.nodes[1].nic.pathfinder
    # 4 KB -> 86 cells: one header classification, 85 table routings
    assert pf.fragment_hits >= 80
    assert pf.fragment_table_size == 0  # retired at end-of-packet


def test_single_cell_message_skips_fragment_table():
    cluster = make_cluster()
    got, _ = ping(cluster, nbytes=16)
    pf = cluster.nodes[1].nic.pathfinder
    assert got["payload"] == "hello"
    assert pf.fragment_hits == 0


def test_dsm_protocol_works_per_cell():
    cluster = make_cluster()
    arr = cluster.alloc_shared((512,))
    base = arr.base_vaddr

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.write_runs([(base, 4096)])
            arr.data[:] = 3.0
        yield from ctx.barrier()
        if ctx.rank == 1:
            yield from ctx.read_runs([(base, 4096)])
            assert arr.data[0] == 3.0
        yield from ctx.barrier()

    stats = cluster.run(kernel)
    assert stats.counters["dsm_pages_installed"] >= 1


def test_per_cell_loss_drops_packet():
    cluster = make_cluster()
    dropped = {"n": 0}

    def lose_first_data_cell(cell, packet):
        # drop exactly one mid-packet cell of the first big packet
        if packet.payload_bytes > 1000 and cell.seq == 3 and dropped["n"] == 0:
            dropped["n"] += 1
            return True
        return False

    cluster.network.cell_loss_injector = lose_first_data_cell
    got = {}

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=8192)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(4096)
            yield from svc.send(1, 4096, payload="lost")
            yield from svc.send(1, 4096, payload="arrives")
        else:
            desc = yield from svc.recv()
            got["payload"] = desc.payload

    cluster.run(kernel)
    assert dropped["n"] == 1
    assert got["payload"] == "arrives"  # the damaged packet was dropped
    assert cluster.nodes[1].nic.reassembler.stats.packets_dropped == 1


def test_per_cell_and_train_latencies_agree():
    """The two transports share fabric timing; end-to-end latency per
    packet differs only by bounded per-fragment bookkeeping."""
    t_cell = ping(make_cluster())[0]["t"]
    params = SimParams().replace(
        num_processors=2, dsm_address_space_pages=16,
    )
    t_train = ping(Cluster(params, interface="cni"))[0]["t"]
    assert t_cell == pytest.approx(t_train, rel=0.05)


def test_standard_interface_per_cell():
    cluster = make_cluster("standard")
    got, _ = ping(cluster)
    assert got["payload"] == "hello"
    assert cluster.nodes[1].nic.interrupts_raised >= 1
