"""NIC-level integration tests: transmit/receive paths over a real
fabric, with a stub host (no DSM engine, no applications)."""

import numpy as np
import pytest

from repro.core import CNIInterface, StandardInterface, TransmitDescriptor
from repro.engine import Category, Counters, Simulator
from repro.memory import BoardTLB, HostMMU, MemoryBus
from repro.network import Network, Packet, PacketKind
from repro.params import SimParams, standard_interface_params


class StubHost:
    """Minimal HostHooks implementation for NIC-only tests."""

    def __init__(self):
        self.stolen = []
        self.delivered = []

    def steal_host_time(self, ns, category):
        self.stolen.append((ns, category))

    def deliver_to_app(self, desc, via_interrupt):
        self.delivered.append((desc, via_interrupt))


def build_pair(iface="cni", **over):
    sim = Simulator()
    if iface == "cni":
        params = SimParams().replace(num_processors=2, **over)
    else:
        params = standard_interface_params(
            SimParams().replace(num_processors=2, **over))
    net = Network(sim, params)
    counters = Counters()
    nodes = []
    for nid in range(2):
        bus = MemoryBus(sim, params, nid)
        host = StubHost()
        mmu = HostMMU(params.page_size_bytes)
        tlb = BoardTLB(mmu)
        if iface == "cni":
            nic = CNIInterface(sim, params, nid, net, bus, counters, host, tlb)
            ch = nic.open_channel(owner_app=nid, channel_id=1)
            ch.grant_buffer(0, 1 << 24)
            # post receive buffers
            for k in range(8):
                vaddr = (1 + k) * params.page_size_bytes
                mmu.map_page(vaddr // params.page_size_bytes)
                tlb.install(vaddr // params.page_size_bytes)
                ch.grant_buffer(vaddr, params.page_size_bytes)
                ch.post_free_buffer(vaddr, params.page_size_bytes)
        else:
            nic = StandardInterface(sim, params, nid, net, bus, counters, host)
        nodes.append((nic, host, bus, mmu, tlb))
    return sim, params, counters, nodes


def send_data(sim, nic, dst, nbytes, vaddr=None, cacheable=True):
    desc = TransmitDescriptor(
        dst_node=dst, vaddr=vaddr, length=nbytes,
        cacheable=cacheable, channel_id=1,
    )

    def proc():
        yield from nic.host_send(desc)

    sim.spawn(proc(), "sender")


def test_cni_small_send_delivers_by_polling_path():
    sim, params, counters, nodes = build_pair("cni")
    nic0, host0 = nodes[0][0], nodes[0][1]
    host1 = nodes[1][1]
    send_data(sim, nic0, 1, 32)  # PIO-sized
    sim.run()
    assert len(host1.delivered) == 1
    desc, via_interrupt = host1.delivered[0]
    assert not via_interrupt
    assert desc.src_node == 0


def test_cni_large_send_uses_free_buffer_and_dma():
    sim, params, counters, nodes = build_pair("cni")
    nic0 = nodes[0][0]
    nic1, host1, bus1 = nodes[1][0], nodes[1][1], nodes[1][2]
    mmu0, tlb0 = nodes[0][3], nodes[0][4]
    vaddr = 64 * params.page_size_bytes
    mmu0.map_page(vaddr // params.page_size_bytes)
    tlb0.install(vaddr // params.page_size_bytes)
    nic0.channel_manager.get(1).grant_buffer(vaddr, params.page_size_bytes)
    send_data(sim, nic0, 1, 4096, vaddr=vaddr)
    sim.run()
    (desc, _), = host1.delivered
    assert desc.vaddr is not None  # landed in a posted buffer
    assert bus1.dma_bytes == 4096  # receive-side DMA happened


def test_cni_transmit_caching_skips_second_dma():
    sim, params, counters, nodes = build_pair("cni")
    nic0, bus0 = nodes[0][0], nodes[0][2]
    mmu0, tlb0 = nodes[0][3], nodes[0][4]
    vaddr = 64 * params.page_size_bytes
    mmu0.map_page(vaddr // params.page_size_bytes)
    tlb0.install(vaddr // params.page_size_bytes)
    nic0.channel_manager.get(1).grant_buffer(vaddr, params.page_size_bytes)
    send_data(sim, nic0, 1, 4096, vaddr=vaddr)
    sim.run()
    first_dma = bus0.dma_bytes
    send_data(sim, nic0, 1, 4096, vaddr=vaddr)
    sim.run()
    assert bus0.dma_bytes == first_dma  # no new transmit DMA
    assert counters["mc_transmit_hits"] >= 1


def test_unclassified_packet_dropped():
    sim, params, counters, nodes = build_pair("cni")
    nic0, nic1 = nodes[0][0], nodes[1][0]
    # unknown channel id: receiver has no pattern for it
    pkt = Packet(kind=PacketKind.DATA, src_node=0, dst_node=1,
                 channel_id=999, payload_bytes=32)
    nic0.board_send(pkt)
    sim.run()
    assert nic1.packets_dropped == 1
    assert counters["nic_classify_misses"] == 1


def test_cell_loss_drops_packet_in_nic():
    sim, params, counters, nodes = build_pair("cni")
    nic0, nic1 = nodes[0][0], nodes[1][0]
    net = nic0.network
    net.loss_injector = lambda train: 1
    send_data(sim, nic0, 1, 32)
    sim.run()
    assert nic1.packets_dropped == 1
    assert nic1.reassembler.stats.packets_dropped == 1


def test_standard_receive_always_interrupts():
    sim, params, counters, nodes = build_pair("standard")
    nic0 = nodes[0][0]
    nic1, host1 = nodes[1][0], nodes[1][1]
    for _ in range(3):
        send_data(sim, nic0, 1, 32)
    sim.run()
    assert nic1.interrupts_raised == 3
    assert len(host1.delivered) == 3
    assert all(via for _, via in host1.delivered)
    # interrupt + kernel work was stolen from the host CPU
    assert sum(ns for ns, _ in host1.stolen) >= 3 * params.interrupt_latency_ns


def test_standard_send_costs_kernel_trap():
    sim, params, counters, nodes = build_pair("standard")
    nic0 = nodes[0][0]
    assert nic0.host_send_cost_ns() == pytest.approx(
        params.cpu_cycles_ns(params.kernel_trap_cycles))


def test_cni_send_costs_user_level_stores():
    sim, params, counters, nodes = build_pair("cni")
    nic0 = nodes[0][0]
    assert nic0.host_send_cost_ns() == pytest.approx(
        params.cpu_cycles_ns(params.adc_enqueue_cycles))
    assert nic0.host_send_cost_ns() < params.cpu_cycles_ns(
        params.kernel_trap_cycles)


def test_no_free_buffer_drops_large_data():
    sim, params, counters, nodes = build_pair("cni")
    nic0 = nodes[0][0]
    nic1 = nodes[1][0]
    # drain node 1's free ring
    ch = nic1.channel_manager.get(1)
    while ch.free.pop() is not None:
        pass
    mmu0, tlb0 = nodes[0][3], nodes[0][4]
    vaddr = 64 * params.page_size_bytes
    mmu0.map_page(vaddr // params.page_size_bytes)
    tlb0.install(vaddr // params.page_size_bytes)
    nic0.channel_manager.get(1).grant_buffer(vaddr, params.page_size_bytes)
    send_data(sim, nic0, 1, 4096, vaddr=vaddr)
    sim.run()
    assert counters["nic_no_free_buffer"] == 1
    assert nic1.packets_dropped == 1


def test_completion_event_fires_after_staging():
    sim, params, counters, nodes = build_pair("cni")
    nic0 = nodes[0][0]
    fired = []
    ev = sim.event()
    ev.wait(lambda v: fired.append(sim.now))
    desc = TransmitDescriptor(dst_node=1, vaddr=None, length=16,
                              channel_id=1, completion=ev)

    def proc():
        yield from nic0.host_send(desc)

    sim.spawn(proc(), "s")
    sim.run()
    assert len(fired) == 1
    assert fired[0] > 0
