"""Unit + property tests for the Message Cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MessageCache
from repro.memory import BoardTLB, HostMMU
from repro.params import SimParams


def make_mc(buffers=4, page=4096):
    params = SimParams().replace(
        message_cache_bytes=buffers * page, page_size_bytes=page
    )
    mmu = HostMMU(page)
    tlb = BoardTLB(mmu)
    return MessageCache(params, tlb), mmu, tlb


def test_capacity():
    mc, _, _ = make_mc(buffers=4)
    assert mc.capacity == 4
    assert mc.occupancy == 0


def test_miss_then_insert_then_hit():
    mc, _, _ = make_mc()
    assert not mc.lookup_transmit(7)
    mc.insert(7)
    assert mc.lookup_transmit(7)
    assert mc.counters["mc_page_lookups"] == 2
    assert mc.counters["mc_page_hits"] == 1
    assert mc.hit_ratio == 0.5


def test_insert_idempotent():
    mc, _, _ = make_mc()
    mc.insert(3)
    mc.insert(3)
    assert mc.occupancy == 1
    assert mc.insertions == 1


def test_eviction_on_capacity():
    mc, _, _ = make_mc(buffers=2)
    mc.insert(1)
    mc.insert(2)
    mc.insert(3)  # evicts one of the first two
    assert mc.occupancy == 2
    assert mc.evictions == 1
    assert mc.contains(3)


def test_clock_approximates_lru():
    mc, _, _ = make_mc(buffers=2)
    mc.insert(1)
    mc.insert(2)
    # reference page 1 so its clock bit is set; 2 becomes the victim
    assert mc.lookup_transmit(1)
    mc.insert(3)
    assert mc.contains(1)
    assert not mc.contains(2)
    assert mc.contains(3)


def test_invalidate():
    mc, _, _ = make_mc()
    mc.insert(5)
    assert mc.invalidate(5)
    assert not mc.contains(5)
    assert not mc.invalidate(5)
    assert mc.invalidations == 1


def test_zero_capacity_cache_is_inert():
    params = SimParams().replace(message_cache_bytes=0)
    mmu = HostMMU(4096)
    mc = MessageCache(params, BoardTLB(mmu))
    mc.insert(1)
    assert not mc.lookup_transmit(1)
    assert mc.occupancy == 0


def test_snoop_updates_cached_page():
    mc, mmu, tlb = make_mc()
    frame = mmu.map_page(9)
    tlb.install(9)
    mc.insert(9)
    absorbed = mc.snoop(np.array([frame]))
    assert absorbed == 1
    assert mc.snoop_updates == 1
    assert mc.contains(9)  # stays valid: that's the whole point


def test_snoop_aborts_for_unmapped_frame():
    mc, mmu, tlb = make_mc()
    assert mc.snoop(np.array([0xDEAD])) == 0
    assert mc.snoop_aborts == 1


def test_snoop_aborts_for_uncached_page():
    mc, mmu, tlb = make_mc()
    frame = mmu.map_page(9)
    tlb.install(9)
    assert mc.snoop(np.array([frame])) == 0
    assert mc.snoop_aborts == 1


def test_snoop_disabled_invalidates():
    mc, mmu, tlb = make_mc()
    frame = mmu.map_page(9)
    tlb.install(9)
    mc.insert(9)
    dropped = mc.snoop_disabled_writeback(np.array([frame]))
    assert dropped == 1
    assert not mc.contains(9)


def test_cached_pages_listing():
    mc, _, _ = make_mc()
    mc.insert(3)
    mc.insert(1)
    assert mc.cached_pages() == [1, 3]


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]),
                  st.integers(0, 9)),
        min_size=1, max_size=200,
    ),
    buffers=st.integers(1, 4),
)
@settings(max_examples=100, deadline=None)
def test_clock_invariants_property(ops, buffers):
    """Occupancy never exceeds capacity; the map and buffers agree."""
    mc, _, _ = make_mc(buffers=buffers)
    for op, page in ops:
        if op == "insert":
            mc.insert(page)
        elif op == "lookup":
            mc.lookup_transmit(page)
        else:
            mc.invalidate(page)
        assert mc.occupancy <= mc.capacity
        # map and buffer array agree
        valid = [b for b in mc._buffers if b.valid]
        assert len(valid) == mc.occupancy
        assert {b.vpage for b in valid} == set(mc._map)
        for b in valid:
            assert mc._map[b.vpage] is b


@given(pages=st.lists(st.integers(0, 100), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_insert_always_caches_the_new_page(pages):
    mc, _, _ = make_mc(buffers=3)
    for p in pages:
        mc.insert(p)
        assert mc.contains(p)
