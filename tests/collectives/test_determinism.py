"""Engine equivalence and executor determinism for collectives.

The issue's contract: NIC and host engines produce *identical collective
results* (the combined values, not the timings), and each engine's runs
produce identical ``RunStats.digest()`` at any ``--jobs`` value.
"""

import pytest

from repro.collectives import CollBenchConfig, run_collective_bench
from repro.harness import RunSpec, run_map
from repro.harness.experiments import collective_latency_experiment
from repro.params import SimParams
from repro.runtime import Cluster

COMBOS = [("nic", "cni"), ("host", "standard"), ("host", "cni")]


def _params(nprocs, engine):
    return SimParams().replace(num_processors=nprocs, collectives=engine,
                               dsm_address_space_pages=16)


def _collect_results(engine, interface, nprocs=3, rounds=3):
    """Every node's view of every collective result, keyed by round."""
    cluster = Cluster(_params(nprocs, engine), interface=interface)
    seen = {}

    def kernel(ctx):
        for r in range(rounds):
            yield from ctx.compute(400 * (1 + (ctx.rank + r) % 3))
            s = yield from ctx.allreduce([float(ctx.rank + r), 1.0])
            m = yield from ctx.allreduce(float(ctx.rank), op="max")
            b = yield from ctx.broadcast(s[0] if ctx.rank == 1 else None,
                                         root=1)
            seen[(ctx.rank, r)] = (s, m, b)
        yield from ctx.barrier()

    cluster.run(kernel)
    return seen


def test_engines_produce_identical_collective_results():
    results = [_collect_results(engine, iface) for engine, iface in COMBOS]
    assert results[0] == results[1] == results[2]
    # and every node agrees within a run
    for (rank, r), vals in results[0].items():
        assert vals == results[0][(0, r)]


@pytest.mark.parametrize("engine,interface", [("nic", "cni"),
                                              ("host", "standard")])
def test_digest_identical_at_any_jobs_value(engine, interface):
    specs = [
        RunSpec("collbench", _params(p, engine), interface,
                CollBenchConfig(op=op, rounds=3))
        for p in (1, 2, 4) for op in ("barrier", "allreduce")
    ]
    serial = run_map(specs, jobs=1, record=False)
    parallel = run_map(specs, jobs=2, record=False)
    assert [s.digest() for s in serial] == [s.digest() for s in parallel]


def test_repeated_runs_are_bit_identical():
    cfg = CollBenchConfig(op="allreduce", rounds=3)
    a = run_collective_bench(_params(3, "nic"), "cni", cfg)[0]
    b = run_collective_bench(_params(3, "nic"), "cni", cfg)[0]
    assert a.digest() == b.digest()
    assert a.elapsed_ns == b.elapsed_ns


def test_collectives_experiment_smoke():
    result = collective_latency_experiment((1, 2), rounds=2, jobs=1)
    assert result.xs == [1.0, 2.0]
    for curve in ("nic_barrier_us", "nic_allreduce_us",
                  "host_barrier_us", "host_allreduce_us"):
        ys = result.get(curve)
        assert len(ys) == 2
        assert all(y >= 0 for y in ys)
    # multi-node collectives cost real time, NIC strictly cheaper here
    assert 0 < result.get("nic_barrier_us")[1] \
        < result.get("host_barrier_us")[1]
