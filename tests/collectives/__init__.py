"""Tests for the collective-operations subsystem (repro.collectives)."""
