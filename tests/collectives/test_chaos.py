"""Chaos tests for collectives: all-reduce on a lossy fabric (``-m chaos``).

The collective bench kernel self-checks every all-reduce result, so a
run that completes proves the reliable transport delivered every
COLL_ARRIVE/COLL_RELEASE exactly once despite injected cell loss.
"""

import pytest

from repro.collectives import CollBenchConfig, run_collective_bench
from repro.faults import CellLoss, FaultPlan
from repro.obs import aggregate_nodes
from repro.params import SimParams

pytestmark = pytest.mark.chaos

LOSSY = FaultPlan(seed=11, schedules=(CellLoss(rate=0.02),))


def lossy_params(engine, **over):
    return SimParams().replace(
        num_processors=3, reliable_transport=True, collectives=engine,
        fault_plan=LOSSY, **over)


@pytest.mark.parametrize("engine,interface", [("nic", "cni"),
                                              ("host", "standard"),
                                              ("host", "cni")])
def test_allreduce_survives_cell_loss(engine, interface):
    cfg = CollBenchConfig(op="allreduce", rounds=8, vector_len=4)
    stats, _ = run_collective_bench(lossy_params(engine), interface, cfg)
    agg = aggregate_nodes(stats.metrics)
    assert agg["faults.cells_dropped"] > 0
    assert agg["nic.reliab.retransmits"] > 0
    # every round's sum was verified inside the kernel; all ops finished
    assert agg["coll.ops_completed"] == 3 * 8


def test_lossy_run_is_deterministic():
    cfg = CollBenchConfig(op="allreduce", rounds=6)
    first, _ = run_collective_bench(lossy_params("nic"), "cni", cfg)
    second, _ = run_collective_bench(lossy_params("nic"), "cni", cfg)
    assert first.digest() == second.digest()
