"""Collective-engine unit/behaviour tests: op semantics, platform
selection, typed errors, and the zero-host-interrupt claim."""

import pytest

from repro.collectives import (
    CollArrive,
    CollectiveError,
    HostCollectiveEngine,
    NicCollectiveEngine,
    combine,
    reduce_values,
    resolve_engine_kind,
    value_wire_bytes,
)
from repro.obs import aggregate_nodes
from repro.params import SimParams, standard_interface_params
from repro.runtime import Cluster

#: (engine, interface) platforms every behaviour test runs on; the
#: (host, cni) row exercises the bounce-to-host trampoline path.
PLATFORMS = [("nic", "cni"), ("host", "standard"), ("host", "cni")]


def make_cluster(nprocs=3, engine=None, interface="cni", **over):
    params = SimParams().replace(
        num_processors=nprocs, collectives=engine,
        dsm_address_space_pages=16, **over)
    return Cluster(params, interface=interface)


# ---------------------------------------------------------------- ops --

def test_combine_and_reduce_values():
    assert combine("sum", 2, 3) == 5
    assert combine("max", [1, 9], [5, 2]) == [5, 9]
    assert reduce_values("prod", {0: 2, 1: 3, 2: 4}) == 24
    assert reduce_values("min", {1: [4, 5], 0: [2, 9]}) == [2, 5]
    with pytest.raises(CollectiveError):
        combine("mean", 1, 2)
    with pytest.raises(CollectiveError):
        combine("sum", [1, 2], [1])
    with pytest.raises(CollectiveError):
        reduce_values("sum", {})
    assert value_wire_bytes(None) == 0
    assert value_wire_bytes(1.0) == 8
    assert value_wire_bytes([1, 2, 3]) == 24


# ------------------------------------------------------- op semantics --

@pytest.mark.parametrize("engine,interface", PLATFORMS)
def test_allreduce_every_node_gets_combined_value(engine, interface):
    cluster = make_cluster(3, engine, interface)
    got = {}

    def kernel(ctx):
        result = yield from ctx.allreduce([float(ctx.rank), 1.0], op="sum")
        got[ctx.rank] = result

    cluster.run(kernel)
    assert got == {0: [3.0, 3.0], 1: [3.0, 3.0], 2: [3.0, 3.0]}


@pytest.mark.parametrize("engine,interface", PLATFORMS)
def test_reduce_only_root_gets_result(engine, interface):
    cluster = make_cluster(3, engine, interface)
    got = {}

    def kernel(ctx):
        result = yield from ctx.reduce(ctx.rank + 1, op="prod", root=1)
        got[ctx.rank] = result
        yield from ctx.barrier()  # drain in-flight releases before exit

    cluster.run(kernel)
    assert got == {0: None, 1: 6, 2: None}


@pytest.mark.parametrize("engine,interface", PLATFORMS)
def test_broadcast_delivers_root_value(engine, interface):
    cluster = make_cluster(3, engine, interface)
    got = {}

    def kernel(ctx):
        value = 42.0 if ctx.rank == 2 else None
        result = yield from ctx.broadcast(value, root=2)
        got[ctx.rank] = result

    cluster.run(kernel)
    assert got == {0: 42.0, 1: 42.0, 2: 42.0}


@pytest.mark.parametrize("engine,interface", PLATFORMS)
def test_multicast_hits_only_destinations(engine, interface):
    cluster = make_cluster(4, engine, interface)
    got = {}

    def kernel(ctx):
        value = [7.0] if ctx.rank == 0 else None
        result = yield from ctx.multicast(value, dests=(1, 3), src=0)
        got[ctx.rank] = result
        yield from ctx.barrier()

    cluster.run(kernel)
    assert got == {0: [7.0], 1: [7.0], 2: None, 3: [7.0]}


@pytest.mark.parametrize("engine,interface", PLATFORMS)
def test_mixed_collectives_and_dsm_barriers_interleave(engine, interface):
    cluster = make_cluster(2, engine, interface)
    got = {}

    def kernel(ctx):
        yield from ctx.barrier()
        s = yield from ctx.allreduce(ctx.rank + 1.0)
        b = yield from ctx.broadcast(s * 10 if ctx.rank == 0 else None,
                                     root=0)
        yield from ctx.barrier(1)
        m = yield from ctx.reduce(b, op="max", root=0)
        got[ctx.rank] = (s, b, m)
        yield from ctx.barrier()

    cluster.run(kernel)
    assert got == {0: (3.0, 30.0, 30.0), 1: (3.0, 30.0, None)}


# ------------------------------------------------- engine resolution --

def test_engine_resolution_follows_platform():
    p = SimParams()
    assert resolve_engine_kind(p, "cni") == "nic"
    assert resolve_engine_kind(standard_interface_params(p),
                               "standard") == "host"
    assert resolve_engine_kind(p.replace(use_aih=False), "cni") == "host"
    assert resolve_engine_kind(p.replace(collectives="host"), "cni") == "host"


def test_forced_nic_engine_requires_cni_with_aih():
    with pytest.raises(CollectiveError):
        make_cluster(2, engine="nic", interface="standard")
    with pytest.raises(CollectiveError):
        make_cluster(2, engine="nic", interface="cni", use_aih=False)


def test_invalid_collectives_param_rejected():
    with pytest.raises(ValueError):
        SimParams().replace(collectives="board")


def test_cluster_engines_match_selection():
    assert isinstance(make_cluster(2).nodes[0].coll, NicCollectiveEngine)
    assert isinstance(make_cluster(2, interface="standard").nodes[0].coll,
                      HostCollectiveEngine)
    assert isinstance(make_cluster(2, engine="host").nodes[0].coll,
                      HostCollectiveEngine)


# ------------------------------------------------------- typed errors --

def test_duplicate_arrival_raises_collective_error():
    coll = make_cluster(2).nodes[0].coll
    msg = CollArrive(0, "barrier", 0, 1, "sum", None, 0)
    coll._arrive_logic(msg)
    with pytest.raises(CollectiveError):
        coll._arrive_logic(CollArrive(0, "barrier", 0, 1, "sum", None, 0))


def test_unknown_participant_raises_collective_error():
    coll = make_cluster(2).nodes[0].coll
    with pytest.raises(CollectiveError):
        coll._arrive_logic(CollArrive(0, "barrier", 0, 5, "sum", None, 0))


def test_mixed_op_episode_raises_collective_error():
    coll = make_cluster(3).nodes[0].coll
    coll._arrive_logic(CollArrive(0, "allreduce", 0, 1, "sum", 1.0, 8))
    with pytest.raises(CollectiveError):
        coll._arrive_logic(CollArrive(0, "allreduce", 0, 2, "max", 1.0, 8))


def test_unknown_reducer_rejected():
    cluster = make_cluster(2)

    def kernel(ctx):
        with pytest.raises(CollectiveError):
            yield from ctx.allreduce(1.0, op="median")
        yield from ctx.barrier()

    cluster.run(kernel)


# --------------------------------------------- zero host interrupts --

def barrier_kernel(rounds=4):
    def kernel(ctx):
        for r in range(rounds):
            yield from ctx.compute(500 * (1 + ctx.rank))
            yield from ctx.allreduce(float(ctx.rank))
            yield from ctx.barrier()
    return kernel


def test_nic_engine_runs_collectives_without_host_steps():
    cluster = make_cluster(4)
    stats = cluster.run(barrier_kernel())
    agg = aggregate_nodes(stats.metrics)
    assert agg["coll.host_steps"] == 0
    assert agg["coll.host_interrupts"] == 0
    assert agg["coll.nic_steps"] > 0
    assert agg["nic.aih.dispatches"] > 0
    assert agg["coll.ops_completed"] == 4 * 8  # 4 nodes x (4+4) ops


def test_host_engine_takes_host_steps_on_standard_interface():
    cluster = make_cluster(4, interface="standard")
    stats = cluster.run(barrier_kernel())
    agg = aggregate_nodes(stats.metrics)
    assert agg["coll.nic_steps"] == 0
    assert agg["coll.host_steps"] > 0
    assert agg["coll.host_interrupts"] > 0
    # the standard NIC interrupted the host for every protocol packet
    assert agg["nic.rx.host_interrupts"] >= agg["coll.host_interrupts"]


def test_host_engine_on_cni_bounces_to_host():
    cluster = make_cluster(4, engine="host", interface="cni")
    stats = cluster.run(barrier_kernel())
    agg = aggregate_nodes(stats.metrics)
    assert agg["coll.nic_steps"] == 0
    assert agg["coll.host_steps"] > 0
    # AIH trampolines still dispatched on the board
    assert agg["nic.aih.dispatches"] > 0
