"""Unit + property tests for packets, headers and cells."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import (
    FLAG_CACHEABLE,
    HEADER_BYTES,
    AtmCell,
    CellTrain,
    Packet,
    PacketKind,
    parse_header,
)


def make_packet(**kw):
    defaults = dict(
        kind=PacketKind.DATA, src_node=1, dst_node=2, channel_id=3,
        handler_key=4, payload_bytes=100,
    )
    defaults.update(kw)
    return Packet(**defaults)


def test_header_is_16_bytes():
    assert len(make_packet().header_bytes()) == HEADER_BYTES


def test_header_roundtrip():
    p = make_packet(cacheable=True, payload_bytes=4096)
    h = parse_header(p.header_bytes())
    assert h["kind"] == PacketKind.DATA
    assert h["src_node"] == 1
    assert h["dst_node"] == 2
    assert h["channel_id"] == 3
    assert h["handler_key"] == 4
    assert h["payload_bytes"] == 4096
    assert h["cacheable"] is True
    assert h["flags"] & FLAG_CACHEABLE


@given(
    kind=st.sampled_from(list(PacketKind)),
    src=st.integers(0, 0xFFFF),
    dst=st.integers(0, 0xFFFF),
    chan=st.integers(0, 0xFFFF),
    key=st.integers(0, 0xFFFF),
    size=st.integers(0, 2 ** 31),
    cacheable=st.booleans(),
)
def test_header_roundtrip_property(kind, src, dst, chan, key, size, cacheable):
    p = Packet(
        kind=kind, src_node=src, dst_node=dst, channel_id=chan,
        handler_key=key, payload_bytes=size, cacheable=cacheable,
    )
    h = parse_header(p.header_bytes())
    assert (h["kind"], h["src_node"], h["dst_node"]) == (kind, src, dst)
    assert (h["channel_id"], h["handler_key"]) == (chan, key)
    assert h["payload_bytes"] == size
    assert h["cacheable"] == cacheable


def test_packet_ids_are_unique():
    assert make_packet().packet_id != make_packet().packet_id


def test_packet_field_validation():
    with pytest.raises(ValueError):
        make_packet(payload_bytes=-1)
    with pytest.raises(ValueError):
        make_packet(src_node=70000)
    with pytest.raises(ValueError):
        make_packet(channel_id=-1)


def test_wire_bytes_includes_header():
    assert make_packet(payload_bytes=100).wire_bytes == 116


def test_parse_header_length_check():
    with pytest.raises(ValueError):
        parse_header(b"short")


def test_cell_train_validation():
    p = make_packet()
    with pytest.raises(ValueError):
        CellTrain(p, 0)
    with pytest.raises(ValueError):
        CellTrain(p, 2, lost_cells=3)
    t = CellTrain(p, 2, lost_cells=1)
    assert not t.intact
    assert CellTrain(p, 2).intact


def test_atm_cell_validation():
    with pytest.raises(ValueError):
        AtmCell(vci=1, packet_id=1, seq=0, eop=True, payload_len=-1)
