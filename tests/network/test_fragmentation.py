"""Unit + property tests for AAL5 segmentation and reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import CellTrain, Packet, PacketKind, Reassembler, Segmenter
from repro.params import SimParams


def packet(size, **kw):
    return Packet(
        kind=PacketKind.DATA, src_node=0, dst_node=1, channel_id=7,
        payload_bytes=size, **kw,
    )


def test_cell_count_page():
    seg = Segmenter(SimParams())
    # 4096 payload + 16 header + 8 trailer = 4120 -> 86 cells of 48 B
    assert seg.cell_count(packet(4096)) == 86


def test_segment_cell_payloads_sum():
    params = SimParams()
    seg = Segmenter(params)
    p = packet(1000)
    cells = seg.segment(p)
    assert sum(c.payload_len for c in cells) == p.wire_bytes + 8
    assert cells[-1].eop and not any(c.eop for c in cells[:-1])
    assert [c.seq for c in cells] == list(range(len(cells)))
    assert all(c.vci == 7 for c in cells)


def test_unrestricted_single_cell():
    seg = Segmenter(SimParams().replace(unrestricted_cell_size=True))
    cells = seg.segment(packet(10 ** 6))
    assert len(cells) == 1 and cells[0].eop


def test_sar_time_scales_with_cells():
    params = SimParams()
    seg = Segmenter(params)
    one = seg.sar_time_ns(1)
    assert seg.sar_time_ns(86) == pytest.approx(86 * one)
    assert one == pytest.approx(params.ni_cycles_ns(params.ni_cell_sar_cycles))


def test_train_reassembly_ok():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(4096)
    out = rea.accept_train(seg.make_train(p))
    assert out is p
    assert rea.stats.packets_ok == 1
    assert rea.stats.cells_consumed == 86


def test_train_with_loss_dropped():
    params = SimParams()
    rea = Reassembler(params)
    p = packet(4096)
    out = rea.accept_train(CellTrain(p, 86, lost_cells=1))
    assert out is None
    assert rea.stats.packets_dropped == 1


def test_cell_by_cell_reassembly():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(500)
    cells = seg.segment(p)
    for c in cells[:-1]:
        assert rea.accept_cell(c, p) is None
    assert rea.accept_cell(cells[-1], p) is p
    assert rea.pending_packets() == 0


def test_cell_loss_detected_at_eop():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(500)
    cells = seg.segment(p)
    assert len(cells) > 2
    for c in cells[1:-1]:  # drop cell 0
        rea.accept_cell(c, p)
    assert rea.accept_cell(cells[-1], p) is None
    assert rea.stats.packets_dropped == 1


def test_reordered_cells_dropped():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(200)
    cells = seg.segment(p)
    assert len(cells) >= 3
    order = [cells[1], cells[0]] + cells[2:]
    result = None
    for c in order:
        result = rea.accept_cell(c, p)
    assert result is None
    assert rea.stats.packets_dropped == 1


def test_interleaved_packets_reassemble_independently():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p1, p2 = packet(200), packet(200)
    c1, c2 = seg.segment(p1), seg.segment(p2)
    got = []
    for a, b in zip(c1, c2):
        for c, p in ((a, p1), (b, p2)):
            r = rea.accept_cell(c, p)
            if r is not None:
                got.append(r)
    assert got == [p1, p2]


def test_stale_partial_evicted_after_timeout():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p1, p2 = packet(500), packet(500)
    # p1's tail is lost in transit: its head sits in the reassembly map.
    rea.accept_cell(seg.segment(p1)[0], p1, now=0.0)
    assert rea.pending_packets() == 1
    # Much later, p2 flows through cleanly and ages the stale partial out.
    late = params.reassembly_timeout_ns + 1.0
    for c in seg.segment(p2):
        out = rea.accept_cell(c, p2, now=late)
    assert out is p2
    assert rea.pending_packets() == 0
    assert rea.stats.partials_evicted == 1
    assert rea.stats.packets_dropped == 1


def test_capacity_eviction_drops_oldest_partial():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params, max_partials=2)
    packets = [packet(500) for _ in range(3)]
    for p in packets:
        rea.accept_cell(seg.segment(p)[0], p)  # three open partials
    assert rea.pending_packets() == 2
    assert rea.stats.partials_evicted == 1
    # the survivors are the two newest; the oldest can no longer complete
    for c in seg.segment(packets[2])[1:]:
        out = rea.accept_cell(c, packets[2])
    assert out is packets[2]


def test_abort_discards_partial():
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(500)
    cells = seg.segment(p)
    rea.accept_cell(cells[0], p)
    assert rea.abort(p.channel_id, p.packet_id)
    assert not rea.abort(p.channel_id, p.packet_id)  # already gone
    assert rea.pending_packets() == 0
    assert rea.stats.partials_evicted == 1


def test_corrupt_cell_fails_crc_at_eop():
    import dataclasses

    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(500)
    cells = seg.segment(p)
    cells[1] = dataclasses.replace(cells[1], corrupt=True)
    result = None
    for c in cells:
        result = rea.accept_cell(c, p)
    assert result is None
    assert rea.stats.packets_dropped == 1


def test_corrupt_train_dropped():
    params = SimParams()
    rea = Reassembler(params)
    out = rea.accept_train(CellTrain(packet(4096), 86, corrupted_cells=1))
    assert out is None
    assert rea.stats.packets_dropped == 1


@given(size=st.integers(0, 20000))
@settings(max_examples=60, deadline=None)
def test_segment_reassemble_roundtrip_property(size):
    params = SimParams()
    seg, rea = Segmenter(params), Reassembler(params)
    p = packet(size)
    cells = seg.segment(p)
    assert len(cells) == seg.cell_count(p)
    result = None
    for c in cells:
        result = rea.accept_cell(c, p)
    assert result is p


@given(size=st.integers(0, 20000))
@settings(max_examples=30, deadline=None)
def test_unrestricted_never_more_cells_property(size):
    base = SimParams()
    unres = base.replace(unrestricted_cell_size=True)
    p = packet(size)
    assert Segmenter(unres).cell_count(p) <= Segmenter(base).cell_count(p)
    assert Segmenter(unres).cell_count(p) == 1
