"""The deprecated ``Network.loss_injector`` / ``cell_loss_injector`` shims.

Both must (a) warn with ``DeprecationWarning`` on assignment, (b) stay
readable through their property getters, and (c) route through the same
:class:`~repro.faults.ActiveFaultPlan` evaluator as a modern
:class:`~repro.faults.FaultPlan`, so damage shows up in the plan's
per-destination counters exactly like plan-inflicted damage does.
"""

import warnings

import pytest

from repro.engine import Simulator
from repro.faults import ActiveFaultPlan, CellLoss, FaultPlan
from repro.network import Network, Packet, PacketKind, Segmenter
from repro.params import SimParams


def make_net(**over):
    sim = Simulator()
    params = SimParams().replace(num_processors=4, **over)
    return sim, params, Network(sim, params)


def packet(src=0, dst=1, size=400):
    return Packet(kind=PacketKind.DATA, src_node=src, dst_node=dst,
                  channel_id=1, payload_bytes=size)


def test_train_injector_setter_warns():
    _sim, _params, net = make_net()
    with pytest.warns(DeprecationWarning, match="loss_injector is deprecated"):
        net.loss_injector = lambda train: 1
    assert net.loss_injector is not None


def test_cell_injector_setter_warns():
    _sim, _params, net = make_net()
    with pytest.warns(DeprecationWarning,
                      match="cell_loss_injector is deprecated"):
        net.cell_loss_injector = lambda cell, pkt: False
    assert net.cell_loss_injector is not None


def test_getters_do_not_warn():
    _sim, _params, net = make_net()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert net.loss_injector is None
        assert net.cell_loss_injector is None


def test_train_injector_routes_through_fault_evaluator():
    sim, params, net = make_net()
    assert net.active_faults is None  # clean fabric until the shim attaches
    with pytest.deprecated_call():
        net.loss_injector = lambda train: 2
    # The shim materialized the same runtime evaluator a FaultPlan gets.
    assert isinstance(net.active_faults, ActiveFaultPlan)
    seg = Segmenter(params)
    net.send_train(seg.make_train(packet(0, 1)))
    sim.run()
    ok, train = net.rx_queues[1].try_get()
    assert ok and train.lost_cells == 2
    # Damage is counted by the evaluator, same as plan-inflicted damage.
    assert net.active_faults.cells_dropped[1] == 2
    assert net.fault_cells_dropped(1) == 2


def test_cell_injector_routes_through_fault_evaluator():
    sim, params, net = make_net()
    with pytest.deprecated_call():
        net.cell_loss_injector = lambda cell, pkt: cell.seq == 0
    assert isinstance(net.active_faults, ActiveFaultPlan)
    p = packet(0, 1)
    seg = Segmenter(params)
    cells = seg.segment(p)
    net.send_cells(cells, p)
    sim.run()
    delivered = []
    while True:
        ok, item = net.rx_queues[1].try_get()
        if not ok:
            break
        delivered.append(item)
    assert len(delivered) == len(cells) - 1
    assert net.active_faults.cells_dropped[1] == 1
    assert net.fault_cells_dropped(1) == 1


def test_shim_damage_matches_equivalent_fault_plan():
    """A legacy drop-one-cell-per-train injector and a modern
    ``CellLoss(nth=...)`` plan inflict identical damage on one train."""
    p = packet(0, 1, size=400)

    sim_a, params_a, net_a = make_net()
    with pytest.deprecated_call():
        net_a.loss_injector = lambda train: 1
    net_a.send_train(Segmenter(params_a).make_train(p))
    sim_a.run()
    _ok, legacy_train = net_a.rx_queues[1].try_get()

    n_cells = legacy_train.n_cells
    plan = FaultPlan(schedules=(CellLoss(nth=n_cells),))
    sim_b = Simulator()
    params_b = SimParams().replace(num_processors=4, fault_plan=plan)
    net_b = Network(sim_b, params_b)
    net_b.send_train(Segmenter(params_b).make_train(packet(0, 1, size=400)))
    sim_b.run()
    _ok, plan_train = net_b.rx_queues[1].try_get()

    assert legacy_train.lost_cells == plan_train.lost_cells == 1
    assert net_a.fault_cells_dropped(1) == net_b.fault_cells_dropped(1) == 1
