"""Unit + property tests for the banyan switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Simulator
from repro.network import BanyanFabric, SingleSwitch
from repro.params import SimParams


def test_fabric_geometry():
    f = BanyanFabric(32)
    assert f.stages == 5
    with pytest.raises(ValueError):
        BanyanFabric(12)
    with pytest.raises(ValueError):
        BanyanFabric(1)


def test_path_length_equals_stages():
    f = BanyanFabric(32)
    assert len(f.path(0, 31)) == 5


def test_path_unique_per_pair():
    f = BanyanFabric(16)
    # a banyan has exactly one path; calling twice must agree
    assert f.path(3, 9) == f.path(3, 9)


def test_final_hop_reaches_destination():
    f = BanyanFabric(32)
    for inp in range(32):
        for outp in range(0, 32, 7):
            stage, wire = f.path(inp, outp)[-1]
            assert stage == f.stages - 1
            assert wire == outp


def test_port_range_checked():
    f = BanyanFabric(8)
    with pytest.raises(ValueError):
        f.path(8, 0)
    with pytest.raises(ValueError):
        f.path(0, -1)


def test_distinct_inputs_same_output_conflict():
    f = BanyanFabric(8)
    # everything converges on the final link into the output port
    assert f.conflicts([(0, 5), (1, 5)]) >= 1


def test_permutation_identity_is_conflict_free():
    f = BanyanFabric(8)
    flows = [(i, i) for i in range(8)]
    assert f.conflicts(flows) == 0


def test_banyan_is_internally_blocking():
    # The defining property: some permutation with distinct outputs still
    # collides internally.  Find one by search to avoid hardcoding wiring.
    f = BanyanFabric(8)
    import itertools

    found = False
    for perm in itertools.permutations(range(8)):
        if f.conflicts(list(enumerate(perm))) > 0:
            found = True
            break
    assert found


@given(
    inp=st.integers(0, 31),
    outp=st.integers(0, 31),
)
def test_path_wires_in_range_property(inp, outp):
    f = BanyanFabric(32)
    for stage, wire in f.path(inp, outp):
        assert 0 <= stage < 5
        assert 0 <= wire < 32


def test_transit_uncontended_latency():
    sim = Simulator()
    params = SimParams()
    sw = SingleSwitch(sim, params)

    def proc():
        yield from sw.transit(0, 1, 10, 480)
        return sim.now

    t = sim.run_process(proc())
    assert t == pytest.approx(500.0 + params.train_wire_time_ns(480))
    assert sw.trains_switched == 1
    assert sw.cells_switched == 10


def test_transit_output_port_contention():
    sim = Simulator()
    params = SimParams()
    sw = SingleSwitch(sim, params)
    done = []

    def proc(tag, inport):
        yield from sw.transit(inport, 5, 10, 480)
        done.append((tag, sim.now))

    sim.spawn(proc("a", 0), "a")
    sim.spawn(proc("b", 1), "b")
    sim.run()
    serialize = params.train_wire_time_ns(480)
    assert done[0] == ("a", pytest.approx(500.0 + serialize))
    assert done[1] == ("b", pytest.approx(500.0 + 2 * serialize))


def test_transit_different_ports_parallel():
    sim = Simulator()
    params = SimParams()
    sw = SingleSwitch(sim, params)
    done = []

    def proc(tag, outport):
        yield from sw.transit(0, outport, 10, 480)
        done.append((tag, sim.now))

    sim.spawn(proc("a", 5), "a")
    sim.spawn(proc("b", 6), "b")
    sim.run()
    assert done[0][1] == pytest.approx(done[1][1])


def test_transit_validates_train():
    sim = Simulator()
    sw = SingleSwitch(sim, SimParams())

    def proc():
        yield from sw.transit(0, 1, 0, 0)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_unrestricted_serialization_by_bytes():
    sim = Simulator()
    params = SimParams().replace(unrestricted_cell_size=True)
    sw = SingleSwitch(sim, params)

    def proc():
        yield from sw.transit(0, 1, 1, 4096)
        return sim.now

    t = sim.run_process(proc())
    expected = 500.0 + params.train_wire_time_ns(4096)
    assert t == pytest.approx(expected)
    # bytes still take wire time: far more than a single 53-byte slot
    assert params.train_wire_time_ns(4096) > 50 * 1e9 / 622e6
