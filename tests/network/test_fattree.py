"""Fat-tree fabric: up/down routing, path uniqueness, congestion."""

import pytest

from repro.engine import Simulator
from repro.network import (
    CellTrain,
    FatTreeTopology,
    Network,
    Packet,
    PacketKind,
    TopologyError,
    parse_topology,
)
from repro.params import SimParams


def make_topo(k=4, nprocs=None):
    sim = Simulator()
    params = SimParams().replace(
        num_processors=nprocs or (k ** 3 // 4),
        topology=f"fattree:k={k}")
    net = Network(sim, params)
    return sim, params, net.topology, net


def train(params, src, dst, size=400):
    p = Packet(kind=PacketKind.DATA, src_node=src, dst_node=dst,
               channel_id=1, payload_bytes=size)
    return CellTrain(p, params.cells_for_packet(p.wire_bytes))


def test_network_builds_fattree():
    _sim, _params, topo, _net = make_topo(k=4)
    assert isinstance(topo, FatTreeTopology)
    assert topo.capacity == 16
    assert topo.describe() == "fattree:k=4"


def test_route_hop_counts_by_distance():
    _sim, _params, topo, _net = make_topo(k=4)
    # same edge switch (hosts 0,1 share edge 0 of pod 0): 2 host links
    assert len(topo.route(0, 1)) == 2
    # same pod, different edge: up to an agg and back down
    assert len(topo.route(0, 2)) == 4
    # different pods: edge -> agg -> core -> agg -> edge
    assert len(topo.route(0, 15)) == 6


def test_route_deterministic_and_unique_per_pair():
    _sim, _params, topo, _net = make_topo(k=4)
    for src in range(16):
        for dst in range(16):
            if src == dst:
                continue
            assert topo.route(src, dst) == topo.route(src, dst)


def test_down_path_is_destination_rooted():
    """Up/down uniqueness: once a train reaches the core, the way down
    to a given destination is the same no matter where it came from."""
    _sim, _params, topo, _net = make_topo(k=4)
    dst = 13
    suffixes = set()
    for src in range(16):
        if src == dst or src // 4 == dst // 4:
            continue  # inter-pod routes only (they transit a core)
        path = topo.route(src, dst)
        # core link + agg->edge + edge->host: the destination-rooted tail
        suffixes.add(tuple(path[-3:]))
    assert len(suffixes) == 1


def test_every_pair_delivers():
    sim, params, _topo, net = make_topo(k=2)  # 2 hosts, minimal tree
    net.send_train(train(params, 0, 1))
    sim.run()
    ok, t = net.rx_queues[1].try_get()
    assert ok and t.n_cells >= 1


def test_same_edge_latency_is_min_transit():
    sim, params, _topo, net = make_topo(k=4)
    done = []

    def proc():
        yield from net.transfer_and_wait(train(params, 0, 1))
        done.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    assert done[0] == pytest.approx(net.min_transit_ns(
        train(params, 0, 1).packet.wire_bytes))


def test_inter_pod_costs_more_than_same_edge():
    _sim, params, topo, _net = make_topo(k=4)
    wire_bytes = 448

    def timed(src, dst):
        sim = Simulator()
        p = SimParams().replace(num_processors=16, topology="fattree:k=4")
        net = Network(sim, p)
        out = []

        def proc():
            yield from net.transfer_and_wait(train(p, src, dst))
            out.append(sim.now)

        sim.spawn(proc(), "p")
        sim.run()
        return out[0]

    assert timed(0, 15) > timed(0, 1)


def test_output_queue_congestion_serializes():
    """Two trains converging on one host link queue FIFO: the second
    finishes one serialization later than the first."""
    sim, params, topo, net = make_topo(k=4)
    done = []

    def proc(tag, src, dst):
        yield from net.transfer_and_wait(train(params, src, dst))
        done.append((tag, sim.now))

    # hosts 4 and 5 sit under one edge switch and both target host 6 in
    # the next edge over: their host up-links run in parallel, then both
    # need the same edge->agg link at the same instant
    sim.spawn(proc("a", 4, 6), "a")
    sim.spawn(proc("b", 5, 6), "b")
    sim.run()
    assert topo.link_waits >= 1
    times = dict(done)
    assert times["a"] != times["b"]
    shared = topo.links["p1.e0.up.a0"]
    wire_bytes = train(params, 4, 6).packet.wire_bytes
    # the loser trails by exactly the winner's hold on the shared link:
    # propagation + serialization (FIFO output queueing, nothing else)
    gap = abs(times["a"] - times["b"])
    assert gap == pytest.approx(
        shared.latency_ns + shared.serialize_ns(wire_bytes))


def test_capacity_enforced():
    with pytest.raises(ValueError, match="does not fit"):
        SimParams().replace(num_processors=3, topology="fattree:k=2")
    sim = Simulator()
    spec = parse_topology("fattree:k=2")
    params = SimParams().replace(num_processors=2)
    topo = FatTreeTopology(sim, params, spec)
    with pytest.raises(TopologyError, match="attachment points"):
        topo.check_nodes(3)


def test_net_metrics_count_traffic():
    sim, params, topo, net = make_topo(k=4)
    net.send_train(train(params, 0, 15))
    sim.run()
    assert topo.crossings == 5   # edge, agg, core, agg, edge
    assert topo.link_hops == 6
