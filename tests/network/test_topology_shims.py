"""Deprecation shims of the topology redesign, and banyan equivalence.

Mirrors the ActiveFaultPlan shim pattern (test_legacy_injectors.py):
each legacy entry point must (a) warn with ``DeprecationWarning``,
(b) delegate to the modern implementation with identical behaviour, and
(c) leave the modern path warning-free.
"""

import warnings

import pytest

from repro.engine import Simulator
from repro.network import (
    BanyanSwitch,
    BanyanTopology,
    CellTrain,
    Network,
    Packet,
    PacketKind,
    SingleSwitch,
    TopologyError,
)
from repro.params import SimParams


def train(params, src=0, dst=1, size=400):
    p = Packet(kind=PacketKind.DATA, src_node=src, dst_node=dst,
               channel_id=1, payload_bytes=size)
    return CellTrain(p, params.cells_for_packet(p.wire_bytes))


# -- direct BanyanSwitch construction ------------------------------------------

def test_banyan_switch_construction_warns():
    sim = Simulator()
    with pytest.warns(DeprecationWarning,
                      match="BanyanSwitch construction is deprecated"):
        BanyanSwitch(sim, SimParams())


def test_banyan_switch_delegates_to_single_switch():
    """The shim IS the modern switch: same class hierarchy, same timing."""
    params = SimParams()

    def transit_time(sw_cls, sim):
        sw = sw_cls(sim, params)

        def proc():
            yield from sw.transit(0, 1, 10, 480)
            return sim.now

        return sim.run_process(proc())

    with pytest.deprecated_call():
        legacy = transit_time(BanyanSwitch, Simulator())
    modern = transit_time(SingleSwitch, Simulator())
    assert legacy == modern
    assert issubclass(BanyanSwitch, SingleSwitch)


def test_single_switch_does_not_warn():
    sim = Simulator()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        SingleSwitch(sim, SimParams())


# -- Network.switch ------------------------------------------------------------

def test_network_switch_property_warns_and_delegates():
    sim = Simulator()
    net = Network(sim, SimParams().replace(num_processors=4))
    with pytest.warns(DeprecationWarning, match="Network.switch is deprecated"):
        sw = net.switch
    assert sw is net.topology.switch
    assert isinstance(sw, SingleSwitch)


def test_network_switch_raises_on_multi_hop_fabric():
    sim = Simulator()
    net = Network(sim, SimParams().replace(num_processors=4,
                                           topology="torus:2x2"))
    with pytest.deprecated_call():
        with pytest.raises(TopologyError, match="no single switch"):
            net.switch


def test_network_topology_access_does_not_warn():
    sim = Simulator()
    net = Network(sim, SimParams().replace(num_processors=4))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert isinstance(net.topology, BanyanTopology)
        net.min_transit_ns(480)


# -- legacy construction path stays bit-identical ------------------------------

def test_default_fabric_is_banyan_with_legacy_rejection():
    sim = Simulator()
    with pytest.raises(ValueError, match="exceed the 32-port switch"):
        Network(sim, SimParams().replace(num_processors=33,
                                         switch_ports=32))


def test_default_and_explicit_banyan_time_identically():
    """topology=None (legacy) and topology='banyan:32' are the same
    machine: every transfer lands at the same nanosecond."""

    def run_once(**over):
        sim = Simulator()
        params = SimParams().replace(num_processors=4, **over)
        net = Network(sim, params)
        out = []

        def proc():
            yield from net.transfer_and_wait(train(params))
            out.append(sim.now)

        sim.spawn(proc(), "p")
        sim.run()
        return out[0]

    assert run_once() == run_once(topology="banyan:32")


def test_workload_timing_unchanged_on_default_fabric():
    """A full workload on topology=None digests identically to the same
    run on an explicit banyan:32 in everything but the metric catalog
    (net.* registers only when a topology is selected)."""
    from repro.apps import JacobiConfig, run

    cfg = JacobiConfig(n=16, iterations=2)
    a, _ = run("jacobi", SimParams().replace(num_processors=4), "cni", cfg)
    b, _ = run("jacobi",
               SimParams().replace(num_processors=4, topology="banyan:32"),
               "cni", cfg)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.counters.as_dict() == b.counters.as_dict()
    assert not any(k.startswith("net.") for k in a.metrics)
    net_keys = {k for k in b.metrics if k.startswith("net.")}
    assert {"net.trains_delivered", "net.crossings", "net.hol_blocks",
            "net.link_waits", "net.link_hops", "net.adaptive_detours",
            "net.max_link_queue", "net.cells_delivered"} == net_keys
