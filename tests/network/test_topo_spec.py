"""The topology grammar: parse, canonicalize, capacity, rejection."""

import pytest

from repro.network import TopologyError, TopologySpec, parse_topology
from repro.network.spec import DEFAULT_BANYAN_PORTS


def test_none_means_default_banyan():
    spec = parse_topology(None)
    assert spec.kind == "banyan"
    assert spec.ports == DEFAULT_BANYAN_PORTS == 32
    assert spec.capacity == 32


@pytest.mark.parametrize("text,kind,capacity", [
    ("banyan", "banyan", 32),
    ("banyan:8", "banyan", 8),
    ("banyan:128", "banyan", 128),
    ("fattree:k=2", "fattree", 2),
    ("fattree:k=4", "fattree", 16),
    ("fattree:k=8", "fattree", 128),
    ("torus:2x2", "torus", 4),
    ("torus:4x4x4", "torus", 64),
    ("torus:3x5", "torus", 15),
    ("torus:4x4x4:adaptive", "torus", 64),
])
def test_parse_kinds_and_capacity(text, kind, capacity):
    spec = parse_topology(text)
    assert spec.kind == kind
    assert spec.capacity == capacity


@pytest.mark.parametrize("text", [
    "banyan:32", "banyan:4", "fattree:k=4", "fattree:k=8",
    "torus:4x4", "torus:2x3x4", "torus:4x4x4:adaptive",
])
def test_canonical_round_trips(text):
    spec = parse_topology(text)
    assert parse_topology(spec.canonical()) == spec


def test_canonical_normalizes_defaults():
    # bare "banyan" and default routing render explicitly / minimally
    assert parse_topology("banyan").canonical() == "banyan:32"
    assert parse_topology("torus:2x2:dor").canonical() == "torus:2x2"
    assert parse_topology("torus:2x2:adaptive").canonical() == \
        "torus:2x2:adaptive"


def test_torus_routing_default_is_dor():
    assert parse_topology("torus:2x2").routing == "dor"
    assert parse_topology("torus:2x2:adaptive").routing == "adaptive"


@pytest.mark.parametrize("bad", [
    "", "  ", "hypercube:5", "banyan:12", "banyan:0", "banyan:x",
    "fattree", "fattree:4", "fattree:k=3", "fattree:k=0", "fattree:k=x",
    "torus:", "torus:4", "torus:4x4x4x4", "torus:0x4", "torus:axb",
    "torus:1x1", "torus:2x2:fancy",
])
def test_malformed_specs_rejected(bad):
    with pytest.raises(TopologyError):
        parse_topology(bad)


def test_non_string_rejected():
    with pytest.raises(TopologyError, match="must be a string"):
        parse_topology(32)


def test_topology_error_is_value_error():
    # callers that catch ValueError (params.validate, serde) keep working
    assert issubclass(TopologyError, ValueError)


def test_spec_is_frozen_pure_data():
    spec = TopologySpec("torus", dims=(4, 4), routing="dor")
    with pytest.raises(Exception):
        spec.kind = "banyan"
