"""Torus fabric: dimension-order routing, wraparound, adaptive escape."""

import pytest

from repro.engine import Simulator
from repro.network import (
    CellTrain,
    Network,
    Packet,
    PacketKind,
    TorusTopology,
)
from repro.params import SimParams


def make_net(spec="torus:4x4", nprocs=None):
    sim = Simulator()
    from repro.network import parse_topology

    cap = parse_topology(spec).capacity
    params = SimParams().replace(num_processors=nprocs or cap,
                                 topology=spec)
    net = Network(sim, params)
    return sim, params, net.topology, net


def train(params, src, dst, size=400):
    p = Packet(kind=PacketKind.DATA, src_node=src, dst_node=dst,
               channel_id=1, payload_bytes=size)
    return CellTrain(p, params.cells_for_packet(p.wire_bytes))


def test_network_builds_torus():
    _sim, _params, topo, _net = make_net("torus:4x4x4")
    assert isinstance(topo, TorusTopology)
    assert topo.capacity == 64
    assert topo.dims == (4, 4, 4)
    assert topo.describe() == "torus:4x4x4"


def test_coords_round_trip():
    _sim, _params, topo, _net = make_net("torus:4x4x4")
    for n in range(64):
        assert topo._node(topo._coords(n)) == n


def test_dor_route_is_minimal():
    _sim, _params, topo, _net = make_net("torus:4x4")
    # node 0=(0,0) to node 10=(2,2): 2 x-steps then 2 y-steps
    path = topo.route(0, 10)
    assert len(path) == 4
    # dimension order: all d0 moves strictly before any d1 move
    dims = [name.split(".")[1][1] for name in path]
    assert dims == sorted(dims)


def test_dor_takes_shorter_wrap_direction():
    _sim, _params, topo, _net = make_net("torus:4x4")
    # (0,0) -> (3,0) is one hop backwards around the ring, not three
    path = topo.route(0, 3)
    assert path == ["n0.d0-"]
    # ties (distance 2 on a 4-ring) break positive, deterministically
    path = topo.route(0, 2)
    assert path == ["n0.d0+", "n1.d0+"]


def test_route_hop_count_matches_manhattan_distance():
    _sim, _params, topo, _net = make_net("torus:4x4x4")

    def ring_dist(a, b, size):
        fwd = (b - a) % size
        return min(fwd, size - fwd)

    for src in (0, 17, 42):
        for dst in (5, 33, 63):
            if src == dst:
                continue
            sc, dc = topo._coords(src), topo._coords(dst)
            expect = sum(ring_dist(a, b, s)
                         for a, b, s in zip(sc, dc, topo.dims))
            assert len(topo.route(src, dst)) == expect


def test_delivery_and_hop_timing():
    sim, params, topo, net = make_net("torus:2x2")
    done = []

    def proc():
        yield from net.transfer_and_wait(train(params, 0, 1))
        done.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    # single hop: 2 host wires + router crossing + link wire + serialize
    assert done[0] == pytest.approx(net.min_transit_ns(
        train(params, 0, 1).packet.wire_bytes))
    assert topo.crossings == 1
    assert topo.link_hops == 1


def test_adaptive_routes_around_blocked_link():
    """DOR insists on the x-first link even when it is held; adaptive
    detours through the free y-dimension and arrives sooner."""

    def run_once(spec):
        sim, params, topo, net = make_net(spec)
        # Park a hog on node 0's x+ link for a long time.
        hog_link = topo.links["n0.d0+"].res

        def hog():
            yield from hog_link.acquire()
            yield 1_000_000.0
            hog_link.release()

        arrival = []

        def sender():
            yield 10.0  # let the hog grab the link first
            yield from net.transfer_and_wait(train(params, 0, 5))
            arrival.append(sim.now)

        sim.spawn(hog(), "hog")
        sim.spawn(sender(), "sender")
        sim.run()
        return arrival[0], topo

    # 0=(0,0) -> 5=(1,1) on a 4x4 torus: one x-step and one y-step.
    t_dor, topo_dor = run_once("torus:4x4")
    t_adaptive, topo_adaptive = run_once("torus:4x4:adaptive")
    # DOR sat out the hog's million-ns hold; adaptive went y-first.
    assert t_dor > 1_000_000.0
    assert t_adaptive < 1_000_000.0
    assert topo_adaptive.adaptive_detours >= 1
    assert topo_dor.adaptive_detours == 0
    assert topo_dor.link_waits >= 1


def test_adaptive_matches_dor_on_idle_fabric():
    """With nothing queued, adaptive's tie-break IS dimension order, so
    both modes deliver at identical times (same digest guarantee)."""

    def run_once(spec):
        sim, params, _topo, net = make_net(spec)
        out = []

        def proc():
            yield from net.transfer_and_wait(train(params, 3, 12))
            out.append(sim.now)

        sim.spawn(proc(), "p")
        sim.run()
        return out[0]

    assert run_once("torus:4x4") == run_once("torus:4x4:adaptive")


def test_capacity_enforced():
    with pytest.raises(ValueError, match="does not fit"):
        SimParams().replace(num_processors=5, topology="torus:2x2")


def test_degenerate_dimension_has_no_links():
    _sim, _params, topo, _net = make_net("torus:4x1")
    assert topo.capacity == 4
    assert all(".d1" not in name for name in topo.links)
    assert topo.route(0, 2) == ["n0.d0+", "n1.d0+"]
