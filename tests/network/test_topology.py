"""Unit tests for the Network fabric."""

import pytest

from repro.engine import Simulator
from repro.faults import CellLoss, FaultPlan
from repro.network import CellTrain, Network, Packet, PacketKind, Segmenter
from repro.params import SimParams


def make_net(nprocs=4, **over):
    sim = Simulator()
    params = SimParams().replace(num_processors=nprocs, **over)
    return sim, params, Network(sim, params)


def packet(src, dst, size=100):
    return Packet(
        kind=PacketKind.DATA, src_node=src, dst_node=dst, channel_id=1,
        payload_bytes=size,
    )


def test_too_many_nodes_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, SimParams().replace(num_processors=33))


def test_delivery_to_rx_queue():
    sim, params, net = make_net()
    p = packet(0, 1)
    seg = Segmenter(params)
    net.send_train(seg.make_train(p))
    sim.run()
    ok, train = net.rx_queues[1].try_get()
    assert ok and train.packet is p
    assert net.trains_delivered == 1


def test_delivery_latency_matches_min_transit():
    sim, params, net = make_net()
    p = packet(0, 1, size=4096)
    seg = Segmenter(params)
    got = []

    def receiver():
        train = yield from net.rx_queues[1].get()
        got.append((train, sim.now))

    sim.spawn(receiver(), "rx")
    net.send_train(seg.make_train(p))
    sim.run()
    (train, t), = got
    assert t == pytest.approx(net.min_transit_ns(p.wire_bytes))


def test_min_transit_components():
    sim, params, net = make_net()
    expected = 2 * 150.0 + 500.0 + params.train_wire_time_ns(116)
    assert net.min_transit_ns(116) == pytest.approx(expected)


def test_loopback_rejected():
    sim, params, net = make_net()
    seg = Segmenter(params)

    def proc():
        yield from net.transfer_and_wait(seg.make_train(packet(2, 2)))

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_loss_injection():
    # Drop exactly the last cell of the train: nth = the train's cell
    # count, deterministic per the plan's schedule position.
    p = packet(0, 1, size=4096)
    n_cells = SimParams().cells_for_packet(p.wire_bytes)
    plan = FaultPlan(seed=0, schedules=(CellLoss(nth=n_cells),))
    sim, params, net = make_net(fault_plan=plan)
    seg = Segmenter(params)
    net.send_train(seg.make_train(p))
    sim.run()
    ok, train = net.rx_queues[1].try_get()
    assert ok and not train.intact
    assert train.lost_cells == 1


def test_concurrent_transfers_to_distinct_nodes():
    sim, params, net = make_net()
    seg = Segmenter(params)
    net.send_train(seg.make_train(packet(0, 1)))
    net.send_train(seg.make_train(packet(2, 3)))
    sim.run()
    assert net.rx_queues[1].try_get()[0]
    assert net.rx_queues[3].try_get()[0]


def test_unrestricted_page_transfer_is_faster():
    _, base_params, base_net = make_net()
    _, unres_params, unres_net = make_net(unrestricted_cell_size=True)
    assert unres_net.min_transit_ns(4096 + 16) < base_net.min_transit_ns(4096 + 16)
