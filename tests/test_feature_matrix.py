"""Cross-feature matrix: every interface x protocol x transport combo
runs every application correctly at a small scale.

This is the net that catches interactions no single-feature test sees
(e.g. eager RC over per-cell transport on the standard interface).
"""

import numpy as np
import pytest

from repro.apps import (
    CholeskyConfig,
    JacobiConfig,
    WaterConfig,
    band_cholesky_reference,
    jacobi_reference,
    run_cholesky,
    run_jacobi,
    run_water,
    synthetic_fem_spd,
    water_reference,
)
from repro.apps.water import POS, VEL
from repro.params import SimParams

COMBOS = [
    ("cni", "lazy", False),
    ("cni", "eager", False),
    ("cni", "lazy", True),
    ("standard", "lazy", False),
    ("standard", "eager", False),
    ("standard", "lazy", True),
]


def params(per_cell):
    return SimParams().replace(
        num_processors=3, per_cell_transport=per_cell
    )


def run_with_protocol(runner, p, iface, proto, cfg):
    # run_* helpers build the cluster themselves; protocol is threaded
    # through by monkey-patching the Cluster default would be invasive —
    # instead use the kernel-level builders for the protocol dimension.
    from repro.runtime import Cluster

    if runner is run_jacobi:
        from repro.apps.jacobi import build_jacobi, jacobi_kernel, dsm_pages_needed

        p2 = p.replace(dsm_address_space_pages=max(
            p.dsm_address_space_pages, dsm_pages_needed(cfg, p)))
        cluster = Cluster(p2, interface=iface, home_scheme="block",
                          protocol=proto)
        grids = build_jacobi(cluster, cfg)
        stats = cluster.run(lambda ctx: jacobi_kernel(ctx, cfg, grids))
        return stats, grids[cfg.iterations % 2].data.copy(), cluster
    if runner is run_water:
        from repro.apps.water import build_water, water_kernel, dsm_pages_needed

        p2 = p.replace(dsm_address_space_pages=max(
            p.dsm_address_space_pages, dsm_pages_needed(cfg, p)))
        cluster = Cluster(p2, interface=iface, protocol=proto)
        mol, staging = build_water(cluster, cfg, p2.num_processors)
        stats = cluster.run(
            lambda ctx: water_kernel(ctx, cfg, mol, staging))
        return stats, mol.data.copy(), cluster
    from repro.apps.cholesky import CholeskyShared, cholesky_kernel, dsm_pages_needed

    p2 = p.replace(dsm_address_space_pages=max(
        p.dsm_address_space_pages, dsm_pages_needed(cfg, p)))
    cluster = Cluster(p2, interface=iface, protocol=proto)
    sh = CholeskyShared(cluster, cfg)
    stats = cluster.run(lambda ctx: cholesky_kernel(ctx, cfg, sh))
    return stats, sh.bands.data.copy(), cluster


@pytest.mark.parametrize("iface,proto,per_cell", COMBOS)
def test_jacobi_matrix(iface, proto, per_cell):
    cfg = JacobiConfig(n=24, iterations=2)
    stats, grid, cluster = run_with_protocol(
        run_jacobi, params(per_cell), iface, proto, cfg)
    assert np.allclose(grid, jacobi_reference(cfg))
    from repro.dsm import assert_healthy
    assert_healthy(cluster)


@pytest.mark.parametrize("iface,proto,per_cell", COMBOS)
def test_water_matrix(iface, proto, per_cell):
    cfg = WaterConfig(n_molecules=9, steps=1)
    stats, recs, cluster = run_with_protocol(
        run_water, params(per_cell), iface, proto, cfg)
    ref = water_reference(cfg)
    assert np.allclose(recs[:, POS], ref[:, POS])
    assert np.allclose(recs[:, VEL], ref[:, VEL])
    from repro.dsm import assert_healthy
    assert_healthy(cluster)


@pytest.mark.parametrize("iface,proto,per_cell", COMBOS)
def test_cholesky_matrix(iface, proto, per_cell):
    m = synthetic_fem_spd(32, 5, seed=11)
    cfg = CholeskyConfig(matrix=m, supernode=4)
    stats, bands, cluster = run_with_protocol(
        run_cholesky, params(per_cell), iface, proto, cfg)
    assert np.allclose(bands, band_cholesky_reference(m))
    from repro.dsm import assert_healthy
    assert_healthy(cluster)
